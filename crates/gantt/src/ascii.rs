//! ASCII renderer for power-aware Gantt charts.
//!
//! Renders the time view (resource rows with task bins) and the power
//! view (a character-cell plot of the power profile with `P_max` /
//! `P_min` rules) for terminals and logs. This is the textual
//! counterpart of the paper's Figs. 2, 5, 7 and 9–11.

use crate::chart::GanttChart;
use pas_graph::units::{Power, Time};
use std::fmt::Write as _;

/// Rendering options for [`render_ascii`].
#[derive(Debug, Clone)]
pub struct AsciiOptions {
    /// Seconds represented by one character column.
    pub secs_per_col: i64,
    /// Number of character rows in the power view.
    pub power_rows: usize,
    /// Draw the time view?
    pub time_view: bool,
    /// Draw the power view?
    pub power_view: bool,
    /// Show the metrics legend line?
    pub legend: bool,
}

impl Default for AsciiOptions {
    fn default() -> Self {
        AsciiOptions {
            secs_per_col: 1,
            power_rows: 12,
            time_view: true,
            power_view: true,
            legend: true,
        }
    }
}

/// Renders `chart` as plain text.
///
/// # Panics
/// Panics if `secs_per_col < 1` or `power_rows == 0`.
///
/// # Examples
/// ```
/// use pas_core::example::paper_example;
/// use pas_gantt::{render_ascii, AsciiOptions, GanttChart};
/// use pas_sched::PowerAwareScheduler;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (mut problem, _) = paper_example();
/// let outcome = PowerAwareScheduler::default().schedule(&mut problem)?;
/// let chart = GanttChart::new(&problem, &outcome.schedule);
/// let text = render_ascii(&chart, &AsciiOptions::default());
/// assert!(text.contains("Pmax"));
/// # Ok(())
/// # }
/// ```
pub fn render_ascii(chart: &GanttChart, options: &AsciiOptions) -> String {
    assert!(options.secs_per_col >= 1, "secs_per_col must be >= 1");
    assert!(options.power_rows > 0, "power_rows must be > 0");

    let mut out = String::new();
    let horizon = chart.finish_time().as_secs().max(1);
    let cols = div_ceil(horizon, options.secs_per_col) as usize;
    let label_width = chart
        .rows()
        .iter()
        .map(|r| r.name.len())
        .chain(std::iter::once("Pmax".len()))
        .max()
        .unwrap_or(4)
        .max(4);

    let _ = writeln!(out, "== {} ==", chart.title());

    if options.time_view {
        let _ = writeln!(
            out,
            "{}",
            time_axis(label_width, cols, options.secs_per_col)
        );
        for row in chart.rows() {
            let mut cells = vec![' '; cols];
            for bin in &row.bins {
                let s = (bin.start.as_secs() / options.secs_per_col) as usize;
                let e = (div_ceil(bin.end.as_secs(), options.secs_per_col) as usize).min(cols);
                if s >= cols {
                    continue;
                }
                for (offset, cell) in cells[s..e].iter_mut().enumerate() {
                    *cell = if offset == 0 { '[' } else { '=' };
                }
                if e > s + 1 {
                    cells[e - 1] = ']';
                }
                // Overlay the task name inside the bin where it fits.
                let name: Vec<char> = bin.name.chars().collect();
                for (k, &ch) in name.iter().enumerate() {
                    let idx = s + 1 + k;
                    if idx + 1 < e {
                        cells[idx] = ch;
                    }
                }
            }
            let line: String = cells.into_iter().collect();
            let _ = writeln!(out, "{:>label_width$} |{line}|", row.name);
        }
        let _ = writeln!(out);
    }

    if options.power_view {
        let peak = chart
            .profile()
            .peak()
            .max(chart.p_max())
            .max(chart.p_min())
            .as_milliwatts()
            .max(1);
        let step = div_ceil(peak, options.power_rows as i64);
        for row_idx in (1..=options.power_rows).rev() {
            let level = Power::from_watts_milli(step * row_idx as i64);
            let mut cells = String::with_capacity(cols);
            for col in 0..cols {
                let t = Time::from_secs(col as i64 * options.secs_per_col);
                let p = chart.profile().power_at(t);
                // Cells above the P_min line are battery-funded
                // ("costly") energy and render differently, so the
                // free/costly split of §4.3 is visible in text too.
                cells.push(if p >= level {
                    if level > chart.p_min() && chart.p_min() > Power::ZERO {
                        '%'
                    } else {
                        '#'
                    }
                } else {
                    ' '
                });
            }
            let marker = if crosses(level, chart.p_max(), step) {
                " < Pmax"
            } else if crosses(level, chart.p_min(), step) {
                " < Pmin"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "{:>label_width$} |{cells}|{marker}",
                format!("{level}")
            );
        }
        let _ = writeln!(
            out,
            "{}",
            time_axis(label_width, cols, options.secs_per_col)
        );
    }

    if options.legend {
        let _ = writeln!(
            out,
            "tau={} Ec={} rho={} spikes={} gaps={}",
            chart.finish_time(),
            chart.energy_cost(),
            chart.utilization(),
            chart.spikes().len(),
            chart.gaps().len()
        );
    }
    out
}

/// `true` when `level` is the first rendered row at or above `mark`
/// (so the annotation lands on exactly one row).
fn crosses(level: Power, mark: Power, step: i64) -> bool {
    if mark == Power::MAX || mark == Power::ZERO {
        return false;
    }
    let l = level.as_milliwatts();
    let m = mark.as_milliwatts();
    l >= m && l - m < step
}

fn time_axis(label_width: usize, cols: usize, secs_per_col: i64) -> String {
    let mut axis = vec![' '; cols];
    let mut labels = format!("{:>label_width$} +", "");
    for (col, slot) in axis.iter_mut().enumerate() {
        let t = col as i64 * secs_per_col;
        *slot = if t % 10 == 0 { '+' } else { '-' };
    }
    labels.extend(axis);
    labels.push('+');
    labels
}

fn div_ceil(a: i64, b: i64) -> i64 {
    (a + b - 1) / b
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_core::example::paper_example;
    use pas_sched::PowerAwareScheduler;

    fn sample_chart() -> GanttChart {
        let (mut problem, _) = paper_example();
        let outcome = PowerAwareScheduler::default()
            .schedule(&mut problem)
            .unwrap();
        GanttChart::new(&problem, &outcome.schedule)
    }

    #[test]
    fn renders_all_resource_rows_and_legend() {
        let text = render_ascii(&sample_chart(), &AsciiOptions::default());
        for name in ["A |", "B |", "C |"] {
            assert!(text.contains(name), "missing row {name:?} in:\n{text}");
        }
        assert!(text.contains("rho="));
        assert!(text.contains("Pmax"));
    }

    #[test]
    fn task_names_appear_in_bins() {
        let text = render_ascii(&sample_chart(), &AsciiOptions::default());
        // 10-second bins comfortably fit single-letter names.
        assert!(text.contains("[b"), "bins should carry names:\n{text}");
    }

    #[test]
    fn views_can_be_disabled() {
        let only_power = render_ascii(
            &sample_chart(),
            &AsciiOptions {
                time_view: false,
                legend: false,
                ..AsciiOptions::default()
            },
        );
        assert!(!only_power.contains('['));
        assert!(!only_power.contains("rho="));
        assert!(only_power.contains('#'));
    }

    #[test]
    fn scaling_compresses_columns() {
        let c = sample_chart();
        let fine = render_ascii(&c, &AsciiOptions::default());
        let coarse = render_ascii(
            &c,
            &AsciiOptions {
                secs_per_col: 5,
                ..AsciiOptions::default()
            },
        );
        assert!(coarse.len() < fine.len());
    }

    #[test]
    #[should_panic(expected = "secs_per_col")]
    fn zero_scale_rejected() {
        let _ = render_ascii(
            &sample_chart(),
            &AsciiOptions {
                secs_per_col: 0,
                ..AsciiOptions::default()
            },
        );
    }

    #[test]
    fn power_view_marks_pmax_once() {
        let text = render_ascii(&sample_chart(), &AsciiOptions::default());
        assert_eq!(text.matches("< Pmax").count(), 1);
    }

    #[test]
    fn costly_energy_renders_distinctly_above_pmin() {
        // The example draws above its 14 W free level at times, so
        // both free ('#') and costly ('%') cells must appear.
        let text = render_ascii(&sample_chart(), &AsciiOptions::default());
        assert!(text.contains('#'), "free energy cells:\n{text}");
        assert!(text.contains('%'), "costly energy cells:\n{text}");
    }
}
