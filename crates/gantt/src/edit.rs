//! Programmatic "drag and lock" editing (§4.3).
//!
//! The paper describes designers "dragging and locking the bins to
//! alternative time slots in the time view, while observing the
//! results in the power view interactively". [`ChartEditor`] is that
//! interaction model, headless: propose a move, get the would-be
//! analysis, commit it only if it is acceptable, optionally lock bins
//! against the automated scheduler.

use pas_core::{analyze, Problem, Schedule, ScheduleAnalysis};
use pas_graph::units::Time;
use pas_graph::TaskId;

/// Why a proposed drag was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EditRejected {
    /// The move breaks a timing constraint or overlaps a resource.
    TimingViolation(Vec<pas_core::TimingViolation>),
    /// The move creates a power spike above `P_max`.
    PowerSpike,
}

impl core::fmt::Display for EditRejected {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EditRejected::TimingViolation(v) => {
                write!(f, "move rejected: {} timing violation(s)", v.len())
            }
            EditRejected::PowerSpike => write!(f, "move rejected: creates a power spike"),
        }
    }
}

impl std::error::Error for EditRejected {}

/// An interactive editing session over a problem and a working
/// schedule.
///
/// # Examples
/// ```
/// use pas_core::example::paper_example;
/// use pas_gantt::ChartEditor;
/// use pas_graph::units::Time;
/// use pas_sched::PowerAwareScheduler;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (mut problem, tasks) = paper_example();
/// let outcome = PowerAwareScheduler::default().schedule(&mut problem)?;
/// let mut editor = ChartEditor::new(problem, outcome.schedule);
/// // Preview a drag without committing it.
/// let preview = editor.preview(tasks.i, Time::from_secs(40));
/// assert_eq!(editor.schedule().start(tasks.i), editor.schedule().start(tasks.i));
/// let _ = preview;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ChartEditor {
    problem: Problem,
    schedule: Schedule,
}

impl ChartEditor {
    /// Starts an editing session.
    pub fn new(problem: Problem, schedule: Schedule) -> Self {
        ChartEditor { problem, schedule }
    }

    /// The problem being edited.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The current working schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Analysis of the current working schedule (the "power view").
    pub fn analysis(&self) -> ScheduleAnalysis {
        analyze(&self.problem, &self.schedule)
    }

    /// Computes what the chart would look like if `task` were dragged
    /// to start at `new_start`, without committing anything.
    pub fn preview(&self, task: TaskId, new_start: Time) -> ScheduleAnalysis {
        let delta = new_start - self.schedule.start(task);
        let tentative = self.schedule.with_delayed(task, delta);
        analyze(&self.problem, &tentative)
    }

    /// Drags `task` to `new_start` and commits the move if the result
    /// is still time-valid and spike-free.
    ///
    /// # Errors
    /// [`EditRejected`] describing why the move was refused; the
    /// working schedule is unchanged in that case.
    pub fn drag(&mut self, task: TaskId, new_start: Time) -> Result<(), EditRejected> {
        let preview = self.preview(task, new_start);
        if !preview.timing_violations.is_empty() {
            return Err(EditRejected::TimingViolation(preview.timing_violations));
        }
        if !preview.spikes.is_empty() {
            return Err(EditRejected::PowerSpike);
        }
        let delta = new_start - self.schedule.start(task);
        self.schedule = self.schedule.with_delayed(task, delta);
        Ok(())
    }

    /// Locks `task` at its current start time: subsequent automated
    /// (re)scheduling of this problem will keep it in place.
    pub fn lock(&mut self, task: TaskId) {
        let at = self.schedule.start(task);
        self.problem.graph_mut().lock(task, at);
    }

    /// Finishes the session, returning the (possibly edited) problem
    /// and schedule.
    pub fn into_parts(self) -> (Problem, Schedule) {
        (self.problem, self.schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_core::example::paper_example;
    use pas_core::{is_time_valid, slack};
    use pas_graph::units::TimeSpan;
    use pas_sched::{PowerAwareScheduler, SchedulerConfig, SchedulerStats};

    fn session() -> (ChartEditor, pas_core::example::PaperExampleTasks) {
        let (mut problem, tasks) = paper_example();
        let outcome = PowerAwareScheduler::default()
            .schedule(&mut problem)
            .unwrap();
        (ChartEditor::new(problem, outcome.schedule), tasks)
    }

    #[test]
    fn valid_drag_commits() {
        let (mut ed, tasks) = session();
        // Find a task with positive slack and drag it 1 s later.
        let candidates: Vec<_> = [tasks.a, tasks.f, tasks.i]
            .into_iter()
            .filter(|&t| slack(ed.problem().graph(), ed.schedule(), t) >= TimeSpan::from_secs(1))
            .collect();
        let t = *candidates.first().expect("some task has slack");
        let target = ed.schedule().start(t) + TimeSpan::from_secs(1);
        // May still be rejected for power; accept either, but on
        // success the schedule must reflect the move and stay valid.
        if ed.drag(t, target).is_ok() {
            assert_eq!(ed.schedule().start(t), target);
        }
        assert!(is_time_valid(ed.problem().graph(), ed.schedule()));
    }

    #[test]
    fn invalid_drag_is_rejected_and_leaves_schedule_untouched() {
        let (mut ed, tasks) = session();
        let before = ed.schedule().clone();
        // Dragging b before its predecessor a is always invalid.
        let bad_target = Time::from_secs(0) - TimeSpan::from_secs(100);
        let err = ed.drag(tasks.b, bad_target).unwrap_err();
        assert!(matches!(err, EditRejected::TimingViolation(_)));
        assert_eq!(ed.schedule(), &before);
    }

    #[test]
    fn preview_does_not_mutate() {
        let (ed, tasks) = session();
        let before = ed.schedule().clone();
        let _ = ed.preview(tasks.c, Time::from_secs(500));
        assert_eq!(ed.schedule(), &before);
    }

    #[test]
    fn lock_pins_task_for_rescheduling() {
        let (mut ed, tasks) = session();
        let pinned_at = ed.schedule().start(tasks.i);
        ed.lock(tasks.i);
        let (mut problem, _) = ed.into_parts();
        let mut stats = SchedulerStats::default();
        let re = pas_sched::schedule_timing(
            problem.graph_mut(),
            &SchedulerConfig::default(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(re.start(tasks.i), pinned_at);
    }

    #[test]
    fn rejection_messages_render() {
        assert!(EditRejected::PowerSpike.to_string().contains("spike"));
        assert!(EditRejected::TimingViolation(vec![])
            .to_string()
            .contains("0 timing"));
    }
}
