//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [fig2|fig5|fig7|fig8|fig9|fig10|fig11|table3|table4|all]
//!       [--trace <file.jsonl|->] [--profile] [--threads off|auto|<n>]
//! ```
//!
//! Figures are printed as ASCII power-aware Gantt charts (Fig. 8 as
//! Graphviz DOT); tables in the paper's layout with paper-reported
//! values alongside for comparison. Everything is deterministic.
//!
//! `--trace <path>` streams every scheduling decision of the
//! instrumented targets (figs 2/5/7 and 9–11) as JSONL
//! [`TraceEvent`]s (`-` streams to stdout); `--profile` prints a
//! per-stage wall-time and decision-count table after the run.
//! `--threads` selects [`Parallelism`] for the instrumented targets;
//! every figure and table is bit-identical at any setting (that
//! contract is what the determinism CI job checks).

use pas_bench::{figure_block, metrics_row};
use pas_core::analyze;
use pas_graph::dot::{to_dot, DotOptions};
use pas_mission::{
    improvement_percent, jpl_plan, power_aware_plan, power_aware_plan_standalone, simulate,
    MissionReport, Scenario,
};
use pas_obs::{JsonlWriter, Observer, StageProfiler, TraceEvent};
use pas_rover::{build_rover_problem, jpl_schedule, power_aware_schedule, EnvCase};
use pas_sched::{Parallelism, PowerAwareScheduler, SchedulerConfig};
use std::io::Write;
use std::process::ExitCode;

/// The optional sinks behind `--trace` and `--profile`, composed into
/// one observer handed down to the instrumented targets.
#[derive(Default)]
struct ReproObserver {
    trace: Option<JsonlWriter<Box<dyn Write>>>,
    profiler: Option<StageProfiler>,
}

impl Observer for ReproObserver {
    fn is_enabled(&self) -> bool {
        self.trace.is_some() || self.profiler.is_some()
    }

    fn on_event(&mut self, event: &TraceEvent) {
        if let Some(w) = &mut self.trace {
            w.on_event(event);
        }
        if let Some(p) = &mut self.profiler {
            p.on_event(event);
        }
    }
}

fn main() -> ExitCode {
    match cli(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("repro: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cli(args: Vec<String>) -> Result<(), String> {
    let mut what: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut profile = false;
    let mut threads = Parallelism::Off;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => {
                let path = it.next().ok_or("--trace requires a file path")?;
                trace_path = Some(path);
            }
            "--profile" => profile = true,
            "--threads" => {
                threads = it
                    .next()
                    .ok_or("--threads requires off, auto, or a thread count")?
                    .parse::<Parallelism>()
                    .map_err(|e| e.to_string())?;
            }
            flag if flag.starts_with("--") => {
                return Err(format!(
                    "unknown flag {flag:?} (--trace <path>|--profile|--threads <p>)"
                ))
            }
            target => {
                if let Some(prev) = what.replace(target.to_string()) {
                    return Err(format!("multiple targets given ({prev:?} and {target:?})"));
                }
            }
        }
    }

    let mut obs = ReproObserver {
        trace: match &trace_path {
            Some(path) => Some(
                JsonlWriter::create_or_stdout(path).map_err(|e| format!("--trace {path}: {e}"))?,
            ),
            None => None,
        },
        profiler: profile.then(StageProfiler::new),
    };

    run(what.as_deref().unwrap_or("all"), threads, &mut obs)?;

    if let Some(profiler) = &obs.profiler {
        println!("---- Stage profile ----");
        print!("{}", profiler.render_table());
    }
    if let Some(writer) = obs.trace.take() {
        let path = trace_path.unwrap_or_default();
        let lines = writer
            .finish()
            .map_err(|e| format!("--trace {path}: {e}"))?;
        if path == "-" {
            // The trace itself went to stdout; keep it parseable.
            eprintln!("wrote {lines} trace events to stdout");
        } else {
            println!("wrote {lines} trace events to {path}");
        }
    }
    Ok(())
}

fn run(what: &str, threads: Parallelism, obs: &mut ReproObserver) -> Result<(), String> {
    match what {
        "fig2" | "fig5" | "fig7" => figs257(what, threads, obs),
        "fig8" => fig8(),
        "fig9" => rover_fig(
            EnvCase::Best,
            "Fig. 9 (best case, 2 iterations)",
            2,
            threads,
            obs,
        ),
        "fig10" => rover_fig(EnvCase::Typical, "Fig. 10 (typical case)", 1, threads, obs),
        "fig11" => rover_fig(EnvCase::Worst, "Fig. 11 (worst case)", 1, threads, obs),
        "table3" => table3(),
        "table4" => table4(),
        "ablation" => ablation(),
        "optgap" => optimality_gap(),
        "gen-assets" => gen_assets(),
        "all" => {
            for w in [
                "fig2", "fig5", "fig7", "fig8", "fig9", "fig10", "fig11", "table3", "table4",
                "ablation", "optgap",
            ] {
                run(w, threads, obs)?;
                println!();
            }
            Ok(())
        }
        other => Err(format!(
            "unknown target {other:?} \
             (fig2|fig5|fig7|fig8|fig9|fig10|fig11|table3|table4|ablation|optgap|all)"
        )),
    }
}

/// Figs. 2, 5, 7: the pipeline stages on the 9-task example.
fn figs257(which: &str, threads: Parallelism, obs: &mut ReproObserver) -> Result<(), String> {
    let (mut problem, _) = pas_core::example::paper_example();
    let stages = PowerAwareScheduler::new(SchedulerConfig {
        parallelism: threads,
        ..SchedulerConfig::default()
    })
    .schedule_stages_with(&mut problem, obs)
    .map_err(|e| e.to_string())?;
    let (title, outcome) = match which {
        "fig2" => (
            "Fig. 2 — time-valid schedule (spikes + gaps)",
            &stages.time_valid,
        ),
        "fig5" => (
            "Fig. 5 — valid schedule after max-power scheduling",
            &stages.power_valid,
        ),
        _ => (
            "Fig. 7 — improved schedule after min-power scheduling",
            &stages.improved,
        ),
    };
    print!("{}", figure_block(title, &problem, &outcome.schedule));
    if which == "fig7" {
        let region = pas_sched::ValidityRegion::of(
            problem.graph(),
            &stages.improved.schedule,
            problem.background_power(),
        );
        println!("validity region: {region}");
        println!("(paper: \"applies to all cases with P_max >= 16, P_min <= 14\")");
    }
    Ok(())
}

/// Fig. 8: the rover constraint graph, as DOT.
fn fig8() -> Result<(), String> {
    let rover = build_rover_problem(EnvCase::Typical, 1);
    println!("---- Fig. 8 — Mars rover constraint graph (Graphviz DOT) ----");
    print!(
        "{}",
        to_dot(
            rover.problem.graph(),
            &DotOptions {
                name: "mars_rover".into(),
                include_derived_edges: false,
                attribute_labels: true,
            }
        )
    );
    Ok(())
}

/// Figs. 9–11: rover schedules per case.
fn rover_fig(
    case: EnvCase,
    title: &str,
    iterations: usize,
    threads: Parallelism,
    obs: &mut ReproObserver,
) -> Result<(), String> {
    let mut rover = build_rover_problem(case, iterations);
    let outcome = PowerAwareScheduler::new(SchedulerConfig {
        parallelism: threads,
        ..SchedulerConfig::default()
    })
    .schedule_with(&mut rover.problem, obs)
    .map_err(|e| e.to_string())?;
    print!("{}", figure_block(title, &rover.problem, &outcome.schedule));
    Ok(())
}

/// Table 3: energy cost / utilization / finish time, JPL vs
/// power-aware, three cases.
fn table3() -> Result<(), String> {
    println!("---- Table 3 — performance and energy cost of the schedules ----");
    println!("(paper values in parentheses; JPL column is an exact-by-construction target)");
    let paper = [
        (
            "(paper: Ec=0J rho=60% tau=75s)",
            "(paper: Ec=79.5J/6J rho=81% tau=50s)",
        ),
        (
            "(paper: Ec=55J rho=91% tau=75s)",
            "(paper: Ec=147J rho=94% tau=60s)",
        ),
        (
            "(paper: Ec=388J rho=100% tau=75s)",
            "(paper: Ec=388J rho=100% tau=75s)",
        ),
    ];
    let config = SchedulerConfig::default();
    for (case, (jpl_note, pa_note)) in EnvCase::ALL.into_iter().zip(paper) {
        // Lint the pristine problem (pre-scheduling, so no derived
        // edges) — the static verdict rides along with each case.
        let lint = pas_lint::lint(&build_rover_problem(case, 1).problem);
        let verdict = if lint.is_empty() {
            "clean".to_string()
        } else {
            lint.summary()
        };
        println!("case {case}  [lint: {verdict}]");
        let (jp, js) = jpl_schedule(case).map_err(|e| e.to_string())?;
        let ja = analyze(&jp.problem, &js);
        println!("  {}  {jpl_note}", metrics_row("jpl", &ja));
        let (pp, ps) = power_aware_schedule(case, &config).map_err(|e| e.to_string())?;
        let pa = analyze(&pp.problem, &ps);
        println!("  {}  {pa_note}", metrics_row("power-aware", &pa));
    }
    Ok(())
}

fn print_mission(report: &MissionReport) {
    println!("{}:", report.plan_label);
    for ph in &report.phases {
        println!(
            "  {:8} [{:>5}..{:>5}] distance={:>2} steps  time={:>5}  energy cost={}",
            ph.case.label(),
            ph.start.to_string(),
            ph.end.to_string(),
            ph.steps,
            ph.time_spent,
            ph.battery_cost
        );
    }
    println!(
        "  total: distance={} steps  time={}  energy cost={}",
        report.total_steps, report.total_time, report.total_cost
    );
}

/// Table 4: the 48-step mission under decaying solar power.
fn table4() -> Result<(), String> {
    println!("---- Table 4 — comparison under the mission scenario ----");
    let config = SchedulerConfig::default();
    let scenario = Scenario::table4();
    let jpl = simulate(&scenario, &jpl_plan().map_err(|e| e.to_string())?);
    let pa = simulate(
        &scenario,
        &power_aware_plan(&config).map_err(|e| e.to_string())?,
    );
    let pa_standalone = simulate(
        &scenario,
        &power_aware_plan_standalone(&config).map_err(|e| e.to_string())?,
    );
    print_mission(&jpl);
    print_mission(&pa);
    print_mission(&pa_standalone);
    for (label, ours) in [
        ("power-aware", &pa),
        ("power-aware-standalone", &pa_standalone),
    ] {
        println!(
            "improvement ({label}): time {:.1}%  energy {:.1}%",
            improvement_percent(jpl.total_time.as_secs(), ours.total_time.as_secs()),
            improvement_percent(
                jpl.total_cost.as_millijoules(),
                ours.total_cost.as_millijoules()
            ),
        );
    }
    println!("(paper: JPL 48 steps / 1800s / 3554J; power-aware 48 steps / 1350s / 2391.5J;");
    println!(" improvements 33.3% time, 32.7% energy)");
    Ok(())
}

/// Regenerates the committed PASDL assets under `assets/` from the
/// in-code models (run from the workspace root).
fn gen_assets() -> Result<(), String> {
    use pas_spec::{print_problem, print_problem_full};
    std::fs::create_dir_all("assets").map_err(|e| e.to_string())?;
    let (example, _) = pas_core::example::paper_example();
    std::fs::write("assets/paper_example.pasdl", print_problem(&example))
        .map_err(|e| e.to_string())?;
    for case in EnvCase::ALL {
        let rover = build_rover_problem(case, 1);
        // Rover tasks carry their temperature corners so the CLI's
        // --corners analysis is meaningful straight from the file.
        let ranges = rover.power_ranges();
        std::fs::write(
            format!("assets/rover_{}.pasdl", case.label()),
            print_problem_full(&rover.problem, Some(&ranges)),
        )
        .map_err(|e| e.to_string())?;
    }
    println!("wrote assets/paper_example.pasdl and assets/rover_{{best,typical,worst}}.pasdl");
    Ok(())
}

/// Schedule-quality ablation of the §5 heuristics (DESIGN.md §5):
/// each variant flips one knob against the default; quality is
/// reported on the paper example and the typical rover case.
fn ablation() -> Result<(), String> {
    use pas_sched::{DelayPolicy, ScanOrder, SlotPolicy, VictimOrder};
    println!("---- Heuristic ablation (schedule quality) ----");
    let base = SchedulerConfig::default();
    let variants: Vec<(&str, SchedulerConfig)> = vec![
        ("default", base.clone()),
        (
            "victim=random",
            SchedulerConfig {
                victim_order: VictimOrder::Random,
                ..base.clone()
            },
        ),
        (
            "delay=execution-time",
            SchedulerConfig {
                delay_policy: DelayPolicy::ExecutionTime,
                ..base.clone()
            },
        ),
        (
            "delay=next-breakpoint",
            SchedulerConfig {
                delay_policy: DelayPolicy::NextBreakpoint,
                ..base.clone()
            },
        ),
        (
            "no-locking",
            SchedulerConfig {
                lock_remaining: false,
                ..base.clone()
            },
        ),
        (
            "reduce-jitter",
            SchedulerConfig {
                reduce_jitter: true,
                ..base.clone()
            },
        ),
        (
            "no-compaction",
            SchedulerConfig {
                compact: false,
                ..base.clone()
            },
        ),
        (
            "single-forward-scan",
            SchedulerConfig {
                scan_orders: vec![ScanOrder::Forward],
                slot_policies: vec![SlotPolicy::StartAtGap],
                max_scans: 1,
                ..base.clone()
            },
        ),
    ];
    for (name, config) in variants {
        let sched = PowerAwareScheduler::new(config);
        let (mut example, _) = pas_core::example::paper_example();
        let ex = sched
            .schedule(&mut example)
            .map(|o| metrics_row("", &o.analysis))
            .unwrap_or_else(|e| format!("FAILED: {e}"));
        let mut rover = build_rover_problem(EnvCase::Typical, 1);
        let rv = sched
            .schedule(&mut rover.problem)
            .map(|o| metrics_row("", &o.analysis))
            .unwrap_or_else(|e| format!("FAILED: {e}"));
        println!("{name:<22} example: {ex}");
        println!("{:<22} rover:   {rv}", "");
    }
    Ok(())
}

/// Optimality gap of the heuristic pipeline against exhaustive branch
/// and bound (small instances only).
fn optimality_gap() -> Result<(), String> {
    use pas_sched::optimal::{minimize_finish_time, OptimalConfig};
    println!("---- Optimality gap (heuristic vs exhaustive B&B) ----");

    let (mut example, _) = pas_core::example::paper_example();
    let heuristic = PowerAwareScheduler::default()
        .schedule(&mut example)
        .map_err(|e| e.to_string())?;
    let (fresh, _) = pas_core::example::paper_example();
    let best = minimize_finish_time(
        fresh.graph(),
        fresh.constraints().p_max(),
        fresh.background_power(),
        &OptimalConfig::default(),
    )
    .map_err(|e| e.to_string())?;
    println!(
        "paper example: heuristic tau={} vs optimal tau={} ({} nodes explored)",
        heuristic.analysis.finish_time, best.finish_time, best.nodes_explored
    );

    for case in EnvCase::ALL {
        let mut rover = build_rover_problem(case, 1);
        let heuristic = PowerAwareScheduler::default()
            .schedule(&mut rover.problem)
            .map_err(|e| e.to_string())?;
        let fresh = build_rover_problem(case, 1);
        let best = minimize_finish_time(
            fresh.problem.graph(),
            fresh.problem.constraints().p_max(),
            fresh.problem.background_power(),
            &OptimalConfig::default(),
        )
        .map_err(|e| e.to_string())?;
        println!(
            "rover {:8} heuristic tau={} vs optimal tau={} ({} nodes explored)",
            case.label(),
            heuristic.analysis.finish_time,
            best.finish_time,
            best.nodes_explored
        );
    }
    Ok(())
}
