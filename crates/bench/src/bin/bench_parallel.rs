//! Parallel portfolio benchmark: wall-clock and critical-path
//! speedups of `schedule_portfolio` under `SchedulerConfig::
//! parallelism` at 1/2/4/8 workers, on 100- and 500-task generated
//! workloads. Writes `BENCH_parallel.json`.
//!
//! ```text
//! cargo run --release -p pas-bench --bin bench_parallel [-- restarts]
//! ```
//!
//! Two speedup figures are reported per thread count:
//!
//! * `speedup` — the **queue-model projection**: each portfolio
//!   attempt is timed individually, then the deterministic `par_map`
//!   worker assignment (earliest-free worker pops the next attempt in
//!   index order) is replayed over the measured durations. This is
//!   the wall-clock speedup the fan-out achieves on a machine with at
//!   least that many free cores, and it is what the CI bench gate
//!   compares — it measures the quality of the parallel
//!   decomposition, not the core count of the CI runner.
//! * `wall_ms` — the measured wall-clock of the full portfolio at
//!   that thread count on *this* machine. On a loaded or small host
//!   this degenerates toward the sequential time (threads time-slice
//!   one core) while the projection stays stable; both are recorded
//!   so the divergence itself is visible. `measured_speedup`
//!   (sequential measured wall over this row's measured wall) is the
//!   dimensionless form `bench_gate` can gate with its laxer
//!   `--measured-tolerance`, so a real-hardware cliff — like a
//!   regression appearing only at 8 threads — fails CI even when the
//!   queue-model projection stays flat.
//!
//! Every parallel run is also checked **bit-identical** to the
//! sequential (`Parallelism::Off`) run — the benchmark doubles as an
//! end-to-end determinism check and refuses to write results that
//! are not bit-identical.

use std::time::Instant;

use pas_core::Problem;
use pas_sched::{Parallelism, PowerAwareScheduler, SchedulerConfig};
use pas_workload::{generate, GeneratorConfig, Topology};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The scheduler configuration every bench run (and every timed
/// attempt) uses. The backtrack budget is far below the library
/// default: diversified restart attempts that would fail anyway can
/// burn the full budget, and on a 500-task graph (where one backtrack
/// costs tens of milliseconds) that turns a seconds-long portfolio
/// into tens of minutes and leaves one attempt so dominant that
/// Amdahl caps the fan-out speedup. The bench measures the fan-out
/// decomposition, not heuristic persistence, so doomed attempts are
/// cut short — identically in the sequential reference and every
/// parallel run.
fn bench_config() -> SchedulerConfig {
    SchedulerConfig {
        max_backtracks: 25,
        ..SchedulerConfig::default()
    }
}

struct Workload {
    label: String,
    problem: Problem,
    restarts: usize,
}

fn generated(label: &str, tasks: usize, layers: usize, seed: u64, restarts: usize) -> Workload {
    let problem = generate(&GeneratorConfig {
        seed,
        tasks,
        resources: (tasks / 8).max(4),
        topology: Topology::Layered { layers },
        ..GeneratorConfig::default()
    });
    Workload {
        label: label.to_string(),
        problem,
        restarts,
    }
}

/// Times every portfolio attempt standalone, in attempt order.
fn attempt_durations_ms(w: &Workload) -> Vec<f64> {
    let scheduler = PowerAwareScheduler::new(bench_config());
    (0..=w.restarts)
        .map(|attempt| {
            let config = scheduler.portfolio_attempt_config(attempt);
            let mut p = w.problem.clone();
            let started = Instant::now();
            let _ = PowerAwareScheduler::new(config).schedule(&mut p);
            let ms = started.elapsed().as_secs_f64() * 1e3;
            eprintln!("  [{}] attempt {attempt}: {ms:.1} ms", w.label);
            ms
        })
        .collect()
}

/// Replays the `par_map` queue discipline over measured durations:
/// the earliest-free worker pops the next attempt in index order.
/// Returns the resulting makespan.
fn queue_makespan_ms(durations: &[f64], workers: usize) -> f64 {
    let mut free_at = vec![0.0f64; workers.max(1)];
    for &d in durations {
        let next = free_at
            .iter_mut()
            .min_by(|a, b| a.partial_cmp(b).expect("finite times"))
            .expect("at least one worker");
        *next += d;
    }
    free_at.iter().cloned().fold(0.0, f64::max)
}

/// One full portfolio run; returns (schedule, wall ms).
fn run_portfolio(w: &Workload, parallelism: Parallelism) -> (Option<pas_core::Schedule>, f64) {
    let config = SchedulerConfig {
        parallelism,
        ..bench_config()
    };
    let mut p = w.problem.clone();
    let started = Instant::now();
    let outcome = PowerAwareScheduler::new(config).schedule_portfolio(&mut p, w.restarts);
    let wall = started.elapsed().as_secs_f64() * 1e3;
    (outcome.ok().map(|o| o.schedule), wall)
}

fn main() {
    let restarts: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);

    // Seeds are chosen so no single attempt dominates the portfolio
    // (layered-6 graphs make some seeds burn the whole timing
    // backtrack budget in their Rotated attempts, which would cap the
    // achievable fan-out speedup by Amdahl and make the bench take
    // minutes); the generator is deterministic, so the attempt
    // duration profile is stable across machines.
    let workloads = [
        generated("generated_100", 100, 6, 0x1, restarts),
        generated("generated_500", 500, 10, 0xB0B5, restarts),
    ];

    let mut rows = Vec::new();
    for w in &workloads {
        let durations = attempt_durations_ms(w);
        let serial_ms: f64 = durations.iter().sum();
        println!(
            "{} ({} tasks, {} attempts): serial attempts {:.1} ms, slowest {:.1} ms",
            w.label,
            w.problem.graph().num_tasks(),
            durations.len(),
            serial_ms,
            durations.iter().cloned().fold(0.0, f64::max),
        );

        let (reference, off_wall_ms) = run_portfolio(w, Parallelism::Off);
        println!(
            "{:>10} {:>12} {:>10} {:>12} {:>14}",
            "threads", "wall ms", "speedup", "measured", "bit-identical"
        );
        for &threads in &THREAD_COUNTS {
            let (schedule, wall_ms) = run_portfolio(w, Parallelism::Threads(threads));
            let identical = schedule == reference;
            assert!(
                identical,
                "{}: threads={threads} diverged from the sequential portfolio",
                w.label
            );
            if threads == 1 {
                // `Threads(1)` with no observer routes through the
                // portfolio's sequential loop (pipeline.rs), so its
                // wall-clock must match `Parallelism::Off` within
                // measurement noise — a regression here means the
                // 1-thread buffer/stitch tax is back.
                assert!(
                    wall_ms <= off_wall_ms * 1.15 + 5.0,
                    "{}: Threads(1) wall {wall_ms:.1} ms is not at parity \
                     with Off {off_wall_ms:.1} ms",
                    w.label
                );
            }
            let speedup = serial_ms / queue_makespan_ms(&durations, threads);
            let measured_speedup = if wall_ms > 0.0 {
                off_wall_ms / wall_ms
            } else {
                0.0
            };
            println!(
                "{threads:>10} {wall_ms:>12.1} {speedup:>9.2}x {measured_speedup:>11.2}x {identical:>14}"
            );
            rows.push(format!(
                concat!(
                    "    {{\"workload\": \"{}\", \"tasks\": {}, \"restarts\": {}, ",
                    "\"threads\": {}, \"speedup\": {:.3}, \"wall_ms\": {:.3}, ",
                    "\"measured_speedup\": {:.3}, \"sequential_wall_ms\": {:.3}, ",
                    "\"serial_attempts_ms\": {:.3}, \"bit_identical\": {}}}"
                ),
                w.label,
                w.problem.graph().num_tasks(),
                w.restarts,
                threads,
                speedup,
                wall_ms,
                measured_speedup,
                off_wall_ms,
                serial_ms,
                identical,
            ));
        }
    }

    // Host core count: lets consumers (bench_gate) tell real
    // multi-core measurements from time-sliced single-core runs, where
    // measured wall-clock comparisons between thread counts are
    // vacuous.
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"parallel\",\n  {},\n  \"restarts\": {},\n",
            "  \"host_cores\": {},\n",
            "  \"speedup_model\": \"queue projection over measured attempt durations\",\n",
            "  \"results\": [\n{}\n  ]\n}}\n"
        ),
        pas_bench::provenance_json(),
        restarts,
        host_cores,
        rows.join(",\n")
    );
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("\nwrote BENCH_parallel.json");
}
