//! Incremental-engine benchmark: wall-clock of the full pipeline
//! with `SchedulerConfig::incremental` on vs off, on the paper's
//! rover instances and synthetic generated workloads up to 500
//! tasks. Writes `BENCH_incremental.json` and prints a stage/
//! counter breakdown for the largest workload.
//!
//! ```text
//! cargo run --release -p pas-bench --bin bench_incremental [-- reps]
//! ```

use std::time::Instant;

use pas_core::Problem;
use pas_obs::StageProfiler;
use pas_rover::{build_rover_problem, EnvCase};
use pas_sched::{PowerAwareScheduler, SchedulerConfig, SchedulerStats};
use pas_workload::{generate, GeneratorConfig, Topology};

struct Workload {
    label: String,
    problem: Problem,
    reps: usize,
}

struct Measured {
    median_ms: f64,
    solved: bool,
    stats: SchedulerStats,
}

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn run(problem: &Problem, incremental: bool, reps: usize) -> Measured {
    let config = SchedulerConfig {
        incremental,
        ..SchedulerConfig::default()
    };
    let scheduler = PowerAwareScheduler::new(config);
    // Warm-up run (also supplies the decision stats).
    let mut warm = problem.clone();
    let outcome = scheduler.schedule(&mut warm);
    let solved = outcome.is_ok();
    let stats = outcome.map(|o| o.stats).unwrap_or_default();
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut p = problem.clone();
        let started = Instant::now();
        let _ = scheduler.schedule(&mut p);
        samples.push(started.elapsed().as_secs_f64() * 1e3);
    }
    Measured {
        median_ms: median_ms(samples),
        solved,
        stats,
    }
}

fn generated(label: &str, tasks: usize, layers: usize, seed: u64, reps: usize) -> Workload {
    let problem = generate(&GeneratorConfig {
        seed,
        tasks,
        resources: (tasks / 8).max(4),
        topology: Topology::Layered { layers },
        ..GeneratorConfig::default()
    });
    Workload {
        label: label.to_string(),
        problem,
        reps,
    }
}

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);

    let mut workloads = Vec::new();
    for case in EnvCase::ALL {
        workloads.push(Workload {
            label: format!("rover_{}", case.label()),
            problem: build_rover_problem(case, 1).problem,
            reps,
        });
    }
    workloads.push(Workload {
        label: "rover_best_2it".into(),
        problem: build_rover_problem(EnvCase::Best, 2).problem,
        reps,
    });
    workloads.push(generated("generated_100", 100, 6, 0xA11CE, reps));
    workloads.push(generated(
        "generated_500",
        500,
        10,
        0xB0B5,
        reps.clamp(1, 3),
    ));

    let mut rows = Vec::new();
    println!(
        "{:<16} {:>6} {:>12} {:>12} {:>8}  hits/deltas/fallbacks",
        "workload", "tasks", "incr ms", "full ms", "speedup"
    );
    for w in &workloads {
        let incr = run(&w.problem, true, w.reps);
        let full = run(&w.problem, false, w.reps);
        let speedup = full.median_ms / incr.median_ms;
        println!(
            "{:<16} {:>6} {:>12.3} {:>12.3} {:>7.2}x  {}/{}/{}",
            w.label,
            w.problem.graph().num_tasks(),
            incr.median_ms,
            full.median_ms,
            speedup,
            incr.stats.incremental_cache_hits,
            incr.stats.incremental_deltas,
            incr.stats.incremental_fallbacks,
        );
        rows.push(format!(
            concat!(
                "    {{\"workload\": \"{}\", \"tasks\": {}, \"solved\": {}, ",
                "\"incremental_ms\": {:.3}, \"full_ms\": {:.3}, \"speedup\": {:.3}, ",
                "\"cache_hits\": {}, \"deltas\": {}, \"fallbacks\": {}}}"
            ),
            w.label,
            w.problem.graph().num_tasks(),
            incr.solved && full.solved,
            incr.median_ms,
            full.median_ms,
            speedup,
            incr.stats.incremental_cache_hits,
            incr.stats.incremental_deltas,
            incr.stats.incremental_fallbacks,
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"incremental\",\n  {},\n  \"reps\": {reps},\n  \"results\": [\n{}\n  ]\n}}\n",
        pas_bench::provenance_json(),
        rows.join(",\n")
    );
    std::fs::write("BENCH_incremental.json", &json).expect("write BENCH_incremental.json");
    println!("\nwrote BENCH_incremental.json");

    // Stage breakdown of the largest workload, incremental engine on.
    let largest = workloads.last().expect("workloads non-empty");
    let mut profiler = StageProfiler::new();
    let mut p = largest.problem.clone();
    let _ = PowerAwareScheduler::default().schedule_with(&mut p, &mut profiler);
    println!("\nstage breakdown ({}):", largest.label);
    println!("{}", profiler.render_table());
}
