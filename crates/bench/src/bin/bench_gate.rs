//! Bench regression gate: compares a freshly generated bench JSON
//! against the committed baseline and fails (non-zero exit) when any
//! speedup regresses by more than the tolerance.
//!
//! ```text
//! cargo run --release -p pas-bench --bin bench_gate -- \
//!     <baseline.json> <fresh.json> [--tolerance 0.25] [--measured-tolerance 0.5]
//! ```
//!
//! The gate compares **dimensionless speedup ratios**, never raw
//! wall-clock: `BENCH_incremental.json` speedups are incremental-vs-
//! full on the same run, and `BENCH_parallel.json` speedups are the
//! queue-model projection from per-attempt durations measured on the
//! same run. Both are stable across runner hardware, so a failure
//! means the *code* got slower (or the decomposition got worse), not
//! that CI drew a noisy neighbor.
//!
//! Rows carrying a `measured_speedup` (sequential measured wall over
//! this row's measured wall, from `bench_parallel`) are additionally
//! gated under the laxer `--measured-tolerance`: real wall-clock is
//! hardware-sensitive, but a collapse — the 8-thread cliff — still
//! trips the gate. The measured comparison only runs when *both*
//! baseline and fresh rows carry the field, so old baselines stay
//! valid.
//!
//! Rows are keyed by `workload` (plus `threads` where present). A row
//! present in the baseline but missing from the fresh results fails
//! the gate; new rows in the fresh results are allowed (the next
//! baseline refresh picks them up).
//!
//! Thread-sweep wall-clock checks are **host-core-aware**: when the
//! fresh file carries a `host_cores` field and the host has fewer
//! cores than a row's thread count, that row's measured-wall-clock
//! comparison is skipped with a logged warning — an N-thread run
//! time-slicing fewer cores measures the OS scheduler, not the code.
//! The queue-model `speedup` comparison always runs (it is projected
//! from per-attempt durations and does not depend on core count).
//!
//! When the fresh file has ≥8 host cores, the gate additionally
//! enforces **threads monotonicity** on `generated_500`: the 8-thread
//! measured wall must be ≤ 1.05× the 4-thread wall. This is the
//! regression check for the "8-thread cliff".

use std::process::ExitCode;

/// One comparable bench row.
#[derive(Debug, Clone, PartialEq)]
struct Row {
    workload: String,
    threads: Option<u64>,
    speedup: f64,
    measured_speedup: Option<f64>,
    wall_ms: Option<f64>,
}

impl Row {
    fn key(&self) -> String {
        match self.threads {
            Some(t) => format!("{}@{}", self.workload, t),
            None => self.workload.clone(),
        }
    }
}

/// Pulls `"field": "value"` out of a JSON object line.
fn string_field(line: &str, field: &str) -> Option<String> {
    let marker = format!("\"{field}\": \"");
    let start = line.find(&marker)? + marker.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Pulls `"field": <number>` out of a JSON object line.
fn number_field(line: &str, field: &str) -> Option<f64> {
    let marker = format!("\"{field}\": ");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the bench JSON files this repo emits: one result object per
/// line inside a `"results"` array.
fn parse_rows(text: &str) -> Vec<Row> {
    text.lines()
        .filter_map(|line| {
            let workload = string_field(line, "workload")?;
            let speedup = number_field(line, "speedup")?;
            Some(Row {
                workload,
                threads: number_field(line, "threads").map(|t| t as u64),
                speedup,
                measured_speedup: number_field(line, "measured_speedup"),
                wall_ms: number_field(line, "wall_ms"),
            })
        })
        .collect()
}

/// The `host_cores` header a bench file was recorded with, when
/// present (absent in files written before the field existed).
fn parse_host_cores(text: &str) -> Option<u64> {
    text.lines()
        .find(|l| l.contains("\"host_cores\""))
        .and_then(|l| number_field(l, "host_cores"))
        .map(|c| c as u64)
}

/// The one-line `"provenance"` object a bench file was stamped with,
/// when present (absent in files written before the field existed).
/// Returned verbatim so a human can eyeball git SHA, hostname, and
/// core count without this binary having to model the object.
fn parse_provenance(text: &str) -> Option<String> {
    text.lines()
        .find(|l| l.contains("\"provenance\""))
        .map(|l| l.trim().trim_end_matches(',').to_string())
}

fn run(args: &[String]) -> Result<(), String> {
    let mut paths = Vec::new();
    let mut tolerance = 0.25f64;
    let mut measured_tolerance = 0.5f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => {
                tolerance = it
                    .next()
                    .ok_or("--tolerance needs a value")?
                    .parse()
                    .map_err(|e| format!("bad tolerance: {e}"))?
            }
            "--measured-tolerance" => {
                measured_tolerance = it
                    .next()
                    .ok_or("--measured-tolerance needs a value")?
                    .parse()
                    .map_err(|e| format!("bad measured tolerance: {e}"))?
            }
            other => paths.push(other.to_string()),
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        return Err(
            "usage: bench_gate <baseline.json> <fresh.json> [--tolerance 0.25] \
             [--measured-tolerance 0.5]"
                .into(),
        );
    };
    struct BenchFile {
        rows: Vec<Row>,
        host_cores: Option<u64>,
        provenance: Option<String>,
    }
    let read = |path: &str| -> Result<BenchFile, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let rows = parse_rows(&text);
        if rows.is_empty() {
            return Err(format!("{path}: no bench rows found"));
        }
        Ok(BenchFile {
            rows,
            host_cores: parse_host_cores(&text),
            provenance: parse_provenance(&text),
        })
    };
    let BenchFile {
        rows: baseline,
        provenance: baseline_provenance,
        ..
    } = read(baseline_path)?;
    let BenchFile {
        rows: fresh,
        host_cores: fresh_host_cores,
        provenance: fresh_provenance,
    } = read(fresh_path)?;

    let mut failures = Vec::new();
    println!(
        "{:<28} {:>10} {:>10} {:>9}  verdict",
        "row", "baseline", "fresh", "ratio"
    );
    for b in &baseline {
        let Some(f) = fresh.iter().find(|f| f.key() == b.key()) else {
            println!(
                "{:<28} {:>10.3} {:>10} {:>9}  MISSING",
                b.key(),
                b.speedup,
                "-",
                "-"
            );
            failures.push(format!("{}: missing from fresh results", b.key()));
            continue;
        };
        let floor = b.speedup * (1.0 - tolerance);
        let ratio = f.speedup / b.speedup;
        let ok = f.speedup >= floor;
        println!(
            "{:<28} {:>9.3}x {:>9.3}x {:>8.2}x  {}",
            b.key(),
            b.speedup,
            f.speedup,
            ratio,
            if ok { "ok" } else { "REGRESSED" }
        );
        if !ok {
            failures.push(format!(
                "{}: speedup {:.3} fell below {:.3} (baseline {:.3}, tolerance {:.0}%)",
                b.key(),
                f.speedup,
                floor,
                b.speedup,
                tolerance * 100.0
            ));
        }
        if let (Some(bm), Some(fm)) = (b.measured_speedup, f.measured_speedup) {
            // Wall-clock thread-sweep rows are only meaningful when
            // the fresh run actually had that many cores: time-sliced
            // threads measure the OS scheduler, not the code.
            if let (Some(host), Some(threads)) = (fresh_host_cores, f.threads) {
                if host < threads {
                    println!(
                        "{:<28} {:>10} {:>10} {:>9}  SKIPPED (measured: host has \
                         {host} core(s) < {threads} threads)",
                        b.key(),
                        "-",
                        "-",
                        "-"
                    );
                    continue;
                }
            }
            let floor = bm * (1.0 - measured_tolerance);
            let ok = fm >= floor;
            println!(
                "{:<28} {:>9.3}x {:>9.3}x {:>8.2}x  {} (measured)",
                b.key(),
                bm,
                fm,
                if bm > 0.0 { fm / bm } else { 0.0 },
                if ok { "ok" } else { "REGRESSED" }
            );
            if !ok {
                failures.push(format!(
                    "{}: measured speedup {:.3} fell below {:.3} (baseline {:.3}, \
                     measured tolerance {:.0}%)",
                    b.key(),
                    fm,
                    floor,
                    bm,
                    measured_tolerance * 100.0
                ));
            }
        }
    }
    // Threads-monotonicity check on the fresh sweep: going from 4 to
    // 8 workers must not cost wall-clock (≤ 5% slack) on the 500-task
    // workload — the 8-thread-cliff regression guard. Only meaningful
    // on a host that can actually run 8 threads in parallel.
    const MONO_WORKLOAD: &str = "generated_500";
    const MONO_SLACK: f64 = 1.05;
    let wall_at = |threads: u64| -> Option<f64> {
        fresh
            .iter()
            .find(|r| r.workload == MONO_WORKLOAD && r.threads == Some(threads))
            .and_then(|r| r.wall_ms)
    };
    match (fresh_host_cores, wall_at(4), wall_at(8)) {
        (Some(host), _, _) if host < 8 => {
            println!(
                "threads-monotonicity: SKIPPED (host has {host} core(s) < 8; \
                 an oversubscribed sweep cannot witness the cliff)"
            );
        }
        (None, _, _) => {
            println!("threads-monotonicity: SKIPPED (fresh file has no host_cores field)");
        }
        (Some(_), Some(w4), Some(w8)) => {
            let ok = w8 <= w4 * MONO_SLACK;
            println!(
                "threads-monotonicity ({MONO_WORKLOAD}): 4t {w4:.1} ms, 8t {w8:.1} ms  {}",
                if ok { "ok" } else { "REGRESSED" }
            );
            if !ok {
                failures.push(format!(
                    "{MONO_WORKLOAD}: 8-thread wall {w8:.1} ms exceeds {MONO_SLACK}x \
                     the 4-thread wall {w4:.1} ms (the 8-thread cliff)"
                ));
            }
        }
        (Some(_), w4, w8) => {
            println!(
                "threads-monotonicity: SKIPPED (missing {MONO_WORKLOAD} wall_ms rows: \
                 4t={w4:?}, 8t={w8:?})"
            );
        }
    }

    if failures.is_empty() {
        println!(
            "gate passed: {} row(s) within {:.0}%",
            baseline.len(),
            tolerance * 100.0
        );
        Ok(())
    } else {
        // A fired gate is where cross-machine comparisons bite, so
        // surface where each file came from next to the failures: a
        // baseline recorded on different hardware or an older commit
        // is the first thing to rule out.
        let mut msg = failures;
        msg.push(format!(
            "baseline provenance ({baseline_path}): {}",
            baseline_provenance.as_deref().unwrap_or("(not recorded)")
        ));
        msg.push(format!(
            "fresh provenance ({fresh_path}): {}",
            fresh_provenance.as_deref().unwrap_or("(not recorded)")
        ));
        Err(msg.join("\n"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench_gate: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_provenance_returns_the_trimmed_line() {
        let text = "{\n  \"bench\": \"parallel\",\n  \"provenance\": \
                    {\"schema\": \"impacct-provenance/v1\", \"git_sha\": \"abc\"},\n\
                    \n  \"results\": [\n  ]\n}\n";
        let line = parse_provenance(text).unwrap();
        assert_eq!(
            line,
            "\"provenance\": {\"schema\": \"impacct-provenance/v1\", \"git_sha\": \"abc\"}"
        );
    }

    #[test]
    fn parse_provenance_is_none_for_old_files() {
        assert!(parse_provenance("{\n  \"bench\": \"parallel\"\n}\n").is_none());
    }

    #[test]
    fn provenance_line_is_not_mistaken_for_a_row() {
        let frag = pas_bench::provenance_json();
        assert!(parse_rows(&frag).is_empty());
        // The provenance host_cores is the same value bench_parallel
        // writes as its own header field, so first-match parsing
        // stays correct whichever line comes first.
        assert!(parse_host_cores(&frag).is_some());
    }
}
