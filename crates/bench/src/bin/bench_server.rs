//! Replay load bench for the `pas-server` daemon.
//!
//! Boots an in-process server on a loopback port, replays a mixed
//! stream of generated problems from concurrent clients — unique
//! problems (fresh pipeline runs), verbatim repeats (exact-cache
//! hits), and relaxed power envelopes over known graphs (§5.3
//! region-cache hits) — and writes `BENCH_server.json`: client-side
//! p50/p99 per serving class, daemon-side p50/p99 per pipeline stage
//! from a final `/metrics` scrape, and the dimensionless cache
//! speedups (`fresh p50 / hit p50`) that `bench_gate` compares
//! against the committed baseline.
//!
//! ```text
//! cargo run --release -p pas-bench --bin bench_server -- \
//!     [--requests 1200] [--models 40] [--clients 4] [--workers 0] \
//!     [--tasks 16] [--out BENCH_server.json]
//! ```
//!
//! Wall-clock latencies are hardware-sensitive, but the speedup rows
//! are same-run ratios: a cold cache, a broken repertoire select, or
//! an exact-cache miss storm collapses them on any machine.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::time::Instant;

use pas_core::PowerConstraints;
use pas_graph::units::Power;
use pas_server::{Server, ServerConfig};
use pas_spec::{parse_problem, print_problem};
use pas_workload::{generate, GeneratorConfig, Topology};

/// One replayed request: which class the daemon reported serving it
/// from (`fresh`, `cache-exact`, `cache-region`) and the client-side
/// wall latency in microseconds.
struct Sample {
    served: String,
    micros: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Sends one request and returns `(status, served-header, body)`.
fn http(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to bench server");
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write request");
    stream.write_all(body).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head");
    let head = String::from_utf8_lossy(&raw[..split]).to_string();
    let body = String::from_utf8_lossy(&raw[split + 4..]).to_string();
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let served = head
        .lines()
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.trim().eq_ignore_ascii_case("x-pas-served"))
        .map(|(_, v)| v.trim().to_string())
        .unwrap_or_default();
    (status, served, body)
}

fn problem_text(seed: u64, tasks: usize) -> String {
    let problem = generate(&GeneratorConfig {
        seed,
        tasks,
        resources: 4,
        topology: Topology::Layered { layers: 3 },
        ..GeneratorConfig::default()
    });
    print_problem(&problem)
}

/// The same constraint graph under a relaxed power envelope: the
/// request shape the §5.3 region cache exists for.
fn relaxed_envelope(source: &str, extra_watts: u32) -> String {
    let mut problem = parse_problem(source).expect("reparse base problem");
    let constraints = problem.constraints();
    problem.set_constraints(PowerConstraints::new(
        constraints
            .p_max()
            .saturating_add(Power::from_watts(extra_watts as i64)),
        constraints.p_min(),
    ));
    print_problem(&problem)
}

/// Per-stage `(stage, value)` samples of one gauge family in a
/// Prometheus scrape, e.g. `pas_server_stage_p50_microseconds`.
fn stage_samples(scrape: &str, family: &str) -> Vec<(String, f64)> {
    let marker = format!("{family}{{stage=\"");
    scrape
        .lines()
        .filter_map(|line| {
            let rest = line.strip_prefix(marker.as_str())?;
            let (stage, rest) = rest.split_once('"')?;
            let value: f64 = rest.trim_start_matches('}').trim().parse().ok()?;
            Some((stage.to_string(), value))
        })
        .collect()
}

fn run(args: &[String]) -> Result<(), String> {
    let mut requests = 1200usize;
    let mut models = 40usize;
    let mut clients = 4usize;
    let mut workers = 0usize;
    let mut tasks = 16usize;
    let mut out = "BENCH_server.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--requests" => requests = value("--requests")?.parse().map_err(|e| format!("{e}"))?,
            "--models" => models = value("--models")?.parse().map_err(|e| format!("{e}"))?,
            "--clients" => clients = value("--clients")?.parse().map_err(|e| format!("{e}"))?,
            "--workers" => workers = value("--workers")?.parse().map_err(|e| format!("{e}"))?,
            "--tasks" => tasks = value("--tasks")?.parse().map_err(|e| format!("{e}"))?,
            "--out" => out = value("--out")?,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let models = models.max(1);
    let clients = clients.max(1);

    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        ..ServerConfig::default()
    })
    .map_err(|e| format!("bind: {e}"))?;
    let handle = server.handle().map_err(|e| format!("handle: {e}"))?;
    let addr = handle.addr();
    let server_thread = std::thread::spawn(move || server.run());

    println!(
        "bench_server: daemon on {addr}, {requests} requests, {models} models, {clients} client(s)"
    );

    // Warm phase: every base model runs the pipeline once, so its
    // exact entry and repertoire session exist before replay starts.
    let base: Vec<String> = (0..models)
        .map(|i| problem_text(1000 + i as u64, tasks))
        .collect();
    for source in &base {
        let (status, _, body) = http(addr, "POST", "/schedule", source.as_bytes());
        if status != 200 {
            handle.shutdown();
            let _ = server_thread.join();
            return Err(format!("warm-up request failed ({status}): {body}"));
        }
    }

    // Replay phase: concurrent clients, each walking a stride-disjoint
    // slice of the request index space. Index i decides the traffic
    // class; the daemon's X-Pas-Served header decides the bucket the
    // latency lands in, so misclassified intents can't skew a class.
    let replay_start = Instant::now();
    let mut threads = Vec::new();
    for c in 0..clients {
        let base = base.clone();
        let thread = std::thread::spawn(move || -> Result<Vec<Sample>, String> {
            let mut samples = Vec::new();
            let mut i = c;
            while i < requests {
                let (target, body): (&str, String) = match i % 3 {
                    0 => ("/schedule", problem_text(50_000 + i as u64, tasks)),
                    1 => ("/schedule", base[i % base.len()].clone()),
                    _ => (
                        "/schedule",
                        relaxed_envelope(&base[i % base.len()], 10 + (i % 997) as u32),
                    ),
                };
                let t = Instant::now();
                let (status, served, resp) = http(addr, "POST", target, body.as_bytes());
                if status != 200 {
                    return Err(format!("replay request {i} failed ({status}): {resp}"));
                }
                samples.push(Sample {
                    served,
                    micros: t.elapsed().as_micros() as u64,
                });
                i += clients;
            }
            Ok(samples)
        });
        threads.push(thread);
    }
    let mut samples = Vec::new();
    for thread in threads {
        match thread.join() {
            Ok(Ok(batch)) => samples.extend(batch),
            Ok(Err(e)) => {
                handle.shutdown();
                let _ = server_thread.join();
                return Err(e);
            }
            Err(_) => return Err("client thread panicked".into()),
        }
    }
    let replay_secs = replay_start.elapsed().as_secs_f64();

    // Daemon-side per-stage quantiles, scraped before shutdown.
    let (status, _, scrape) = http(addr, "GET", "/metrics", b"");
    if status != 200 {
        return Err(format!("/metrics scrape failed ({status})"));
    }
    let stage_p50 = stage_samples(&scrape, "pas_server_stage_p50_microseconds");
    let stage_p99 = stage_samples(&scrape, "pas_server_stage_p99_microseconds");

    let (status, _, _) = http(addr, "POST", "/shutdown", b"");
    if status != 200 {
        return Err(format!("shutdown failed ({status})"));
    }
    let report = server_thread
        .join()
        .map_err(|_| "server thread panicked".to_string())?
        .map_err(|e| format!("server run: {e}"))?;

    // Client-side latency per serving class.
    let class = |name: &str| -> Vec<u64> {
        let mut v: Vec<u64> = samples
            .iter()
            .filter(|s| s.served == name)
            .map(|s| s.micros)
            .collect();
        v.sort_unstable();
        v
    };
    let fresh = class("fresh");
    let exact = class("cache-exact");
    let region = class("cache-region");
    let fresh_p50 = percentile(&fresh, 0.50).max(1);

    let mut rows = Vec::new();
    let mut stage_lines = Vec::new();
    for (name, lat) in [
        ("server_fresh", &fresh),
        ("server_exact_cache", &exact),
        ("server_region_cache", &region),
    ] {
        if lat.is_empty() {
            return Err(format!("traffic mix produced no {name} samples"));
        }
        let p50 = percentile(lat, 0.50).max(1);
        let speedup = fresh_p50 as f64 / p50 as f64;
        println!(
            "{name:<22} n={:<5} p50={:>8} us  p99={:>8} us  speedup={speedup:.2}x",
            lat.len(),
            p50,
            percentile(lat, 0.99),
        );
        rows.push(format!(
            "    {{\"workload\": \"{name}\", \"requests\": {}, \"p50_us\": {}, \"p99_us\": {}, \"speedup\": {:.4}}}",
            lat.len(),
            p50,
            percentile(lat, 0.99),
            speedup,
        ));
    }
    for (stage, p50) in &stage_p50 {
        let p99 = stage_p99
            .iter()
            .find(|(s, _)| s == stage)
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        stage_lines.push(format!(
            "    {{\"stage\": \"{stage}\", \"p50_us\": {p50:.1}, \"p99_us\": {p99:.1}}}"
        ));
    }

    let total = samples.len() + base.len();
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"server\",\n  {},\n  \"requests\": {},\n",
            "  \"clients\": {},\n  \"server_jobs\": {},\n",
            "  \"throughput_rps\": {:.1},\n",
            "  \"speedup_model\": \"client p50 of fresh runs over client p50 of \
             this serving class, same run\",\n",
            "  \"stages\": [\n{}\n  ],\n  \"results\": [\n{}\n  ]\n}}\n"
        ),
        pas_bench::provenance_json(),
        total,
        clients,
        report.pool_jobs,
        samples.len() as f64 / replay_secs.max(1e-9),
        stage_lines.join(",\n"),
        rows.join(",\n"),
    );
    std::fs::write(&out, &json).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "replayed {total} requests in {replay_secs:.1}s ({:.0} req/s); wrote {out}",
        samples.len() as f64 / replay_secs.max(1e-9)
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench_server: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_nearest_rank() {
        let v = [10, 20, 30, 40, 50];
        assert_eq!(percentile(&v, 0.0), 10);
        assert_eq!(percentile(&v, 0.5), 30);
        assert_eq!(percentile(&v, 1.0), 50);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn stage_samples_parse_labeled_gauges() {
        let scrape = "# TYPE pas_server_stage_p50_microseconds gauge\n\
                      pas_server_stage_p50_microseconds{stage=\"parse\"} 12\n\
                      pas_server_stage_p50_microseconds{stage=\"total\"} 340.5\n\
                      pas_server_other{stage=\"parse\"} 9\n";
        let samples = stage_samples(scrape, "pas_server_stage_p50_microseconds");
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0], ("parse".to_string(), 12.0));
        assert_eq!(samples[1].1, 340.5);
    }
}
