//! Replay load bench for the `pas-server` daemon.
//!
//! Boots an in-process server on a loopback port, replays a mixed
//! stream of generated problems from concurrent clients — unique
//! problems (fresh pipeline runs), verbatim repeats (exact-cache
//! hits), relaxed power envelopes over known graphs (§5.3
//! region-cache hits), and *tightened* envelopes below the cached
//! validity region (session-incremental serves, §16) — and writes
//! `BENCH_server.json`: client-side p50/p99 per serving class,
//! daemon-side p50/p99 per pipeline stage from a final `/metrics`
//! scrape, and the dimensionless cache speedups (`fresh p50 / hit
//! p50`) that `bench_gate` compares against the committed baseline.
//!
//! Clients hold HTTP/1.1 keep-alive connections by default,
//! reconnecting only when the daemon answers `Connection: close`
//! (request cap, drain). A second pass replays exact-cache hits over
//! one fresh TCP connection per request, so the file records both
//! serving modes: the `server_exact_no_keepalive` row and the
//! `server_keepalive_gain` ratio (connection-per-request p50 over
//! keep-alive p50, same run) price the handshake that connection
//! reuse stops paying. `--no-keepalive` forces the legacy
//! connection-per-request client for the whole replay.
//!
//! ```text
//! cargo run --release -p pas-bench --bin bench_server -- \
//!     [--requests 1200] [--models 40] [--clients 4] [--workers 0] \
//!     [--tasks 16] [--no-keepalive] [--out BENCH_server.json]
//! ```
//!
//! Wall-clock latencies are hardware-sensitive, but the speedup rows
//! are same-run ratios: a cold cache, a broken repertoire select, or
//! an exact-cache miss storm collapses them on any machine.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::time::Instant;

use pas_core::PowerConstraints;
use pas_graph::units::Power;
use pas_obs::NullObserver;
use pas_sched::{PowerAwareScheduler, SchedulerConfig};
use pas_server::{Server, ServerConfig};
use pas_spec::{parse_problem, print_problem};
use pas_workload::{generate, GeneratorConfig, Topology};

/// One replayed request: which class the daemon reported serving it
/// from (`fresh`, `cache-exact`, `cache-region`, `fresh-incremental`)
/// and the client-side wall latency in microseconds.
struct Sample {
    served: String,
    micros: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// A replay client: one kept-alive connection when `keep_alive`,
/// reconnecting only when the daemon says `Connection: close` (or the
/// socket goes stale between requests); one fresh connection per
/// request otherwise — the legacy mode kept behind `--no-keepalive`.
struct Client {
    addr: SocketAddr,
    keep_alive: bool,
    stream: Option<BufReader<TcpStream>>,
}

impl Client {
    fn new(addr: SocketAddr, keep_alive: bool) -> Client {
        Client {
            addr,
            keep_alive,
            stream: None,
        }
    }

    /// Sends one request and returns `(status, served-header, body)`.
    /// A request attempted on a reused connection that has gone away
    /// (request cap, idle close) is retried once on a fresh one.
    fn request(&mut self, method: &str, target: &str, body: &[u8]) -> (u16, String, String) {
        for _ in 0..2 {
            let reused = self.stream.is_some();
            let mut stream = match self.stream.take() {
                Some(stream) => stream,
                None => {
                    let raw = TcpStream::connect(self.addr).expect("connect to bench server");
                    // Kept-alive exchanges are latency-bound; Nagle +
                    // delayed ACK would stall every request.
                    let _ = raw.set_nodelay(true);
                    BufReader::new(raw)
                }
            };
            match self.try_request(&mut stream, method, target, body) {
                Ok((status, served, resp, close)) => {
                    if self.keep_alive && !close {
                        self.stream = Some(stream);
                    }
                    return (status, served, resp);
                }
                // A stale kept-alive socket surfaces as an IO error on
                // the *reused* connection only; a failure on a fresh
                // connection is a real daemon fault.
                Err(_) if reused => continue,
                Err(e) => panic!("request on a fresh connection failed: {e}"),
            }
        }
        unreachable!("second attempt always runs on a fresh connection")
    }

    fn try_request(
        &self,
        stream: &mut BufReader<TcpStream>,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> std::io::Result<(u16, String, String, bool)> {
        let connection = if self.keep_alive {
            "keep-alive"
        } else {
            "close"
        };
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: localhost\r\nConnection: {connection}\r\n\
             Content-Length: {}\r\n\r\n",
            body.len()
        );
        // One write for head + body: a second small write on a reused
        // socket invites a Nagle/delayed-ACK stall.
        let mut raw = head.into_bytes();
        raw.extend_from_slice(body);
        stream.get_mut().write_all(&raw)?;

        // `Content-Length`-framed read: the connection stays open for
        // the next request, so read_to_end would hang until the idle
        // timeout.
        let mut head = String::new();
        loop {
            let mut line = String::new();
            if stream.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before a response",
                ));
            }
            if line == "\r\n" {
                break;
            }
            head.push_str(&line);
        }
        let status: u16 = head
            .lines()
            .next()
            .and_then(|l| l.split(' ').nth(1))
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let header = |name: &str| {
            head.lines()
                .filter_map(|l| l.split_once(':'))
                .find(|(k, _)| k.trim().eq_ignore_ascii_case(name))
                .map(|(_, v)| v.trim().to_string())
        };
        let served = header("x-pas-served").unwrap_or_default();
        let close = header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"));
        let length: usize = header("content-length")
            .and_then(|v| v.parse().ok())
            .expect("content length");
        let mut resp = vec![0u8; length];
        stream.read_exact(&mut resp)?;
        Ok((
            status,
            served,
            String::from_utf8_lossy(&resp).into_owned(),
            close,
        ))
    }
}

/// One-shot request on its own connection, for control-plane calls
/// (warm-up, `/metrics`, `/shutdown`).
fn http(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> (u16, String, String) {
    Client::new(addr, false).request(method, target, body)
}

fn problem_text(seed: u64, tasks: usize) -> String {
    let problem = generate(&GeneratorConfig {
        seed,
        tasks,
        resources: 4,
        topology: Topology::Layered { layers: 3 },
        ..GeneratorConfig::default()
    });
    print_problem(&problem)
}

/// The same constraint graph under a relaxed power envelope: the
/// request shape the §5.3 region cache exists for.
fn relaxed_envelope(source: &str, extra_watts: u32) -> String {
    let mut problem = parse_problem(source).expect("reparse base problem");
    let constraints = problem.constraints();
    problem.set_constraints(PowerConstraints::new(
        constraints
            .p_max()
            .saturating_add(Power::from_watts(extra_watts as i64)),
        constraints.p_min(),
    ));
    print_problem(&problem)
}

/// The same constraint graph *tightened* below a cached schedule's
/// validity floor: a repertoire miss on a known graph — the request
/// shape the §16 session-incremental path exists for. `floor_mw` is
/// the cached schedule's `min_p_max_mw`; `step` walks the envelope
/// further down so replayed requests stay textually distinct.
fn tightened_envelope(source: &str, floor_mw: u64, step: u64) -> String {
    let mut problem = parse_problem(source).expect("reparse base problem");
    let p_max = Power::from_watts_milli(floor_mw as i64 - 1 - step as i64);
    let p_min = problem.constraints().p_min().min(p_max);
    problem.set_constraints(PowerConstraints::new(p_max, p_min));
    print_problem(&problem)
}

/// `"min_p_max_mw":N` out of a fresh response's region object.
fn min_p_max_mw(body: &str) -> Option<u64> {
    let tail = &body[body.find("\"min_p_max_mw\":")? + "\"min_p_max_mw\":".len()..];
    tail[..tail.find(|c: char| !c.is_ascii_digit())?]
        .parse()
        .ok()
}

/// Per-stage `(stage, value)` samples of one gauge family in a
/// Prometheus scrape, e.g. `pas_server_stage_p50_microseconds`.
fn stage_samples(scrape: &str, family: &str) -> Vec<(String, f64)> {
    let marker = format!("{family}{{stage=\"");
    scrape
        .lines()
        .filter_map(|line| {
            let rest = line.strip_prefix(marker.as_str())?;
            let (stage, rest) = rest.split_once('"')?;
            let value: f64 = rest.trim_start_matches('}').trim().parse().ok()?;
            Some((stage.to_string(), value))
        })
        .collect()
}

/// A base model admitted to the tightened-envelope class: its source
/// text and the validity floor reported when it was warmed.
#[derive(Clone)]
struct IncrementalModel {
    source: String,
    floor_mw: u64,
}

struct Knobs {
    requests: usize,
    models: usize,
    clients: usize,
    workers: usize,
    tasks: usize,
    keep_alive: bool,
    out: String,
}

/// Replays `requests` requests from `knobs.clients` concurrent
/// clients, each walking a stride-disjoint slice of the index space.
fn replay(
    addr: SocketAddr,
    keep_alive: bool,
    requests: usize,
    knobs: &Knobs,
    base: &[String],
    incremental: &[IncrementalModel],
    seed_base: u64,
) -> Result<(Vec<Sample>, f64), String> {
    let start = Instant::now();
    let mut threads = Vec::new();
    for c in 0..knobs.clients {
        let base = base.to_vec();
        let incremental = incremental.to_vec();
        let (clients, tasks) = (knobs.clients, knobs.tasks);
        let thread = std::thread::spawn(move || -> Result<Vec<Sample>, String> {
            let mut client = Client::new(addr, keep_alive);
            let mut samples = Vec::new();
            let mut i = c;
            while i < requests {
                // Index i decides the traffic class; the daemon's
                // X-Pas-Served header decides the bucket the latency
                // lands in, so misclassified intents can't skew a
                // class.
                let body: String = match i % 4 {
                    0 => problem_text(seed_base + i as u64, tasks),
                    1 => base[i % base.len()].clone(),
                    2 => relaxed_envelope(&base[i % base.len()], 10 + (i % 997) as u32),
                    _ => {
                        let idx = i / 4;
                        let model = &incremental[idx % incremental.len()];
                        tightened_envelope(
                            &model.source,
                            model.floor_mw,
                            (idx / incremental.len()) as u64,
                        )
                    }
                };
                let t = Instant::now();
                let (status, served, resp) = client.request("POST", "/schedule", body.as_bytes());
                if status != 200 {
                    return Err(format!("replay request {i} failed ({status}): {resp}"));
                }
                samples.push(Sample {
                    served,
                    micros: t.elapsed().as_micros() as u64,
                });
                i += clients;
            }
            Ok(samples)
        });
        threads.push(thread);
    }
    let mut samples = Vec::new();
    for thread in threads {
        match thread.join() {
            Ok(Ok(batch)) => samples.extend(batch),
            Ok(Err(e)) => return Err(e),
            Err(_) => return Err("client thread panicked".into()),
        }
    }
    Ok((samples, start.elapsed().as_secs_f64()))
}

/// Everything between boot and shutdown: warm-up, the keep-alive
/// replay, the reconnect-per-request pass, and the metrics scrape.
/// Factored out so `run` owns exactly one shutdown-and-join on both
/// the success and the failure path.
struct Driven {
    samples: Vec<Sample>,
    replay_secs: f64,
    reconnect_samples: Vec<Sample>,
    scrape: String,
    warmed: usize,
}

fn drive(addr: SocketAddr, knobs: &Knobs) -> Result<Driven, String> {
    // Warm phase: every base model runs the pipeline once, so its
    // exact entry and repertoire session exist before replay starts.
    // The fresh response's validity floor decides whether the model
    // can also carry tightened-envelope (session-incremental)
    // traffic: the deepest tightening the replay could reach must
    // still be offline-feasible, or the daemon would answer 422.
    let offline = PowerAwareScheduler::new(SchedulerConfig::default());
    let deepest_step = (knobs.requests / 4) as u64; // all class-3 hits on one model
    let base: Vec<String> = (0..knobs.models)
        .map(|i| problem_text(1000 + i as u64, knobs.tasks))
        .collect();
    let mut incremental = Vec::new();
    for source in &base {
        let (status, served, body) = http(addr, "POST", "/schedule", source.as_bytes());
        if status != 200 {
            return Err(format!("warm-up request failed ({status}): {body}"));
        }
        if served != "fresh" {
            return Err(format!("warm-up served {served:?}, expected a fresh run"));
        }
        let Some(floor_mw) = min_p_max_mw(&body) else {
            return Err(format!("fresh response lost its region: {body}"));
        };
        if floor_mw <= deepest_step + 1 {
            continue; // tightening would cross zero power
        }
        let tightened = tightened_envelope(source, floor_mw, deepest_step);
        let mut probe = parse_problem(&tightened).expect("reparse tightened problem");
        if offline.schedule_with(&mut probe, &mut NullObserver).is_ok() {
            incremental.push(IncrementalModel {
                source: source.clone(),
                floor_mw,
            });
        }
    }
    if incremental.is_empty() {
        return Err("no base model survives tightening; raise --tasks or --models".into());
    }
    println!(
        "warmed {} models; {} admit tightened-envelope traffic",
        knobs.models,
        incremental.len()
    );

    let (samples, replay_secs) = replay(
        addr,
        knobs.keep_alive,
        knobs.requests,
        knobs,
        &base,
        &incremental,
        50_000,
    )?;

    // Mode pass: the same traffic mix, one fresh TCP connection per
    // request. Its exact-cache row against the keep-alive exact row
    // prices the handshake connection reuse stops paying.
    let reconnect_requests = (knobs.requests / 2).max(knobs.clients * 4);
    let (reconnect_samples, _) = replay(
        addr,
        false,
        reconnect_requests,
        knobs,
        &base,
        &incremental,
        70_000,
    )?;

    // Daemon-side per-stage quantiles, scraped before shutdown.
    let (status, _, scrape) = http(addr, "GET", "/metrics", b"");
    if status != 200 {
        return Err(format!("/metrics scrape failed ({status})"));
    }
    Ok(Driven {
        samples,
        replay_secs,
        reconnect_samples,
        scrape,
        warmed: base.len(),
    })
}

fn run(args: &[String]) -> Result<(), String> {
    let mut knobs = Knobs {
        requests: 1200,
        models: 40,
        clients: 4,
        workers: 0,
        tasks: 16,
        keep_alive: true,
        out: "BENCH_server.json".to_string(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--requests" => {
                knobs.requests = value("--requests")?.parse().map_err(|e| format!("{e}"))?
            }
            "--models" => knobs.models = value("--models")?.parse().map_err(|e| format!("{e}"))?,
            "--clients" => {
                knobs.clients = value("--clients")?.parse().map_err(|e| format!("{e}"))?
            }
            "--workers" => {
                knobs.workers = value("--workers")?.parse().map_err(|e| format!("{e}"))?
            }
            "--tasks" => knobs.tasks = value("--tasks")?.parse().map_err(|e| format!("{e}"))?,
            "--no-keepalive" => knobs.keep_alive = false,
            "--out" => knobs.out = value("--out")?,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    knobs.models = knobs.models.max(1);
    knobs.clients = knobs.clients.max(1);

    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: knobs.workers,
        // The unique-problem class floods the FIFO session cache; at
        // the default cap it would evict the warm base sessions and
        // the bench would measure eviction, not the serving classes.
        session_cap: knobs.requests.max(256),
        ..ServerConfig::default()
    })
    .map_err(|e| format!("bind: {e}"))?;
    let handle = server.handle().map_err(|e| format!("handle: {e}"))?;
    let addr = handle.addr();
    let server_thread = std::thread::spawn(move || server.run());

    println!(
        "bench_server: daemon on {addr}, {} requests, {} models, {} client(s), keep-alive {}",
        knobs.requests,
        knobs.models,
        knobs.clients,
        if knobs.keep_alive { "on" } else { "off" }
    );

    let driven = drive(addr, &knobs);
    let report = {
        let shutdown = match &driven {
            // The driver already failed; tear the daemon down hard.
            Err(_) => {
                handle.shutdown();
                true
            }
            Ok(_) => {
                let (status, _, _) = http(addr, "POST", "/shutdown", b"");
                status == 200
            }
        };
        if !shutdown {
            handle.shutdown();
        }
        server_thread
            .join()
            .map_err(|_| "server thread panicked".to_string())?
            .map_err(|e| format!("server run: {e}"))?
    };
    let Driven {
        samples,
        replay_secs,
        reconnect_samples,
        scrape,
        warmed,
    } = driven?;

    let stage_p50 = stage_samples(&scrape, "pas_server_stage_p50_microseconds");
    let stage_p99 = stage_samples(&scrape, "pas_server_stage_p99_microseconds");

    // Client-side latency per serving class.
    let class = |pool: &[Sample], name: &str| -> Vec<u64> {
        let mut v: Vec<u64> = pool
            .iter()
            .filter(|s| s.served == name)
            .map(|s| s.micros)
            .collect();
        v.sort_unstable();
        v
    };
    let fresh = class(&samples, "fresh");
    let exact = class(&samples, "cache-exact");
    let region = class(&samples, "cache-region");
    let incr = class(&samples, "fresh-incremental");
    let exact_reconnect = class(&reconnect_samples, "cache-exact");
    let fresh_p50 = percentile(&fresh, 0.50).max(1);
    let exact_p50 = percentile(&exact, 0.50).max(1);

    let mut rows = Vec::new();
    let mut push_row = |name: &str, lat: &[u64], speedup: f64| {
        let p50 = percentile(lat, 0.50).max(1);
        println!(
            "{name:<26} n={:<5} p50={:>8} us  p99={:>8} us  speedup={speedup:.2}x",
            lat.len(),
            p50,
            percentile(lat, 0.99),
        );
        rows.push(format!(
            "    {{\"workload\": \"{name}\", \"requests\": {}, \"p50_us\": {}, \"p99_us\": {}, \"speedup\": {:.4}}}",
            lat.len(),
            p50,
            percentile(lat, 0.99),
            speedup,
        ));
    };
    for (name, lat) in [
        ("server_fresh", &fresh),
        ("server_exact_cache", &exact),
        ("server_region_cache", &region),
        ("server_incremental", &incr),
        ("server_exact_no_keepalive", &exact_reconnect),
    ] {
        if lat.is_empty() {
            return Err(format!("traffic mix produced no {name} samples"));
        }
        let p50 = percentile(lat, 0.50).max(1);
        push_row(name, lat, fresh_p50 as f64 / p50 as f64);
    }
    // The keep-alive gain as its own dimensionless row: p50 of an
    // exact-cache hit paying a TCP handshake over p50 of the same hit
    // on a reused connection, same run. Pinned to 1.0 under
    // --no-keepalive, where both passes reconnect per request.
    let reconnect_p50 = percentile(&exact_reconnect, 0.50).max(1);
    push_row(
        "server_keepalive_gain",
        &exact_reconnect,
        if knobs.keep_alive {
            reconnect_p50 as f64 / exact_p50 as f64
        } else {
            1.0
        },
    );

    let mut stage_lines = Vec::new();
    for (stage, p50) in &stage_p50 {
        let p99 = stage_p99
            .iter()
            .find(|(s, _)| s == stage)
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        stage_lines.push(format!(
            "    {{\"stage\": \"{stage}\", \"p50_us\": {p50:.1}, \"p99_us\": {p99:.1}}}"
        ));
    }

    let total = samples.len() + reconnect_samples.len() + warmed;
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"server\",\n  {},\n  \"requests\": {},\n",
            "  \"clients\": {},\n  \"keep_alive\": {},\n  \"server_jobs\": {},\n",
            "  \"sheds\": {},\n",
            "  \"throughput_rps\": {:.1},\n",
            "  \"speedup_model\": \"client p50 of fresh runs over client p50 of \
             this serving class, same run; server_keepalive_gain is \
             reconnect-per-request p50 over keep-alive p50 of the same \
             exact-cache hit\",\n",
            "  \"stages\": [\n{}\n  ],\n  \"results\": [\n{}\n  ]\n}}\n"
        ),
        pas_bench::provenance_json(),
        total,
        knobs.clients,
        knobs.keep_alive,
        report.pool_jobs,
        report.sheds,
        samples.len() as f64 / replay_secs.max(1e-9),
        stage_lines.join(",\n"),
        rows.join(",\n"),
    );
    std::fs::write(&knobs.out, &json).map_err(|e| format!("cannot write {}: {e}", knobs.out))?;
    println!(
        "replayed {total} requests in {replay_secs:.1}s ({:.0} req/s); wrote {}",
        samples.len() as f64 / replay_secs.max(1e-9),
        knobs.out
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench_server: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_nearest_rank() {
        let v = [10, 20, 30, 40, 50];
        assert_eq!(percentile(&v, 0.0), 10);
        assert_eq!(percentile(&v, 0.5), 30);
        assert_eq!(percentile(&v, 1.0), 50);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn stage_samples_parse_labeled_gauges() {
        let scrape = "# TYPE pas_server_stage_p50_microseconds gauge\n\
                      pas_server_stage_p50_microseconds{stage=\"parse\"} 12\n\
                      pas_server_stage_p50_microseconds{stage=\"total\"} 340.5\n\
                      pas_server_other{stage=\"parse\"} 9\n";
        let samples = stage_samples(scrape, "pas_server_stage_p50_microseconds");
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0], ("parse".to_string(), 12.0));
        assert_eq!(samples[1].1, 340.5);
    }

    #[test]
    fn tightened_envelope_lands_below_the_floor() {
        let source = problem_text(7, 12);
        let tightened = tightened_envelope(&source, 4_000, 25);
        let problem = parse_problem(&tightened).unwrap();
        assert_eq!(
            problem.constraints().p_max().as_milliwatts(),
            4_000 - 1 - 25
        );
        assert!(problem.constraints().p_min() <= problem.constraints().p_max());
    }
}
