//! Telemetry overhead gate: the `_observed` exact branch-and-bound
//! driven by a [`pas_obs::NullObserver`] must cost within a small
//! tolerance of the plain, unobserved search.
//!
//! ```text
//! cargo run --release -p pas-bench --bin bench_overhead [-- tolerance_pct]
//! ```
//!
//! The search telemetry is designed to be branch-free counter updates
//! on the hot path, with event emission gated on
//! `Observer::is_enabled()` — so with the null observer the observed
//! variant must do essentially the same work as the plain one. Both
//! variants run the same fixed node budget (the search exhausts it,
//! so the work is identical and deterministic), interleaved, and the
//! min-of-N wall times are compared: min-of-N discards scheduler
//! noise, and interleaving cancels thermal drift. The gate fails
//! (non-zero exit) when the observed minimum exceeds the plain
//! minimum by more than the tolerance (default 2%).

use std::time::{Duration, Instant};

use pas_core::example::paper_example;
use pas_obs::NullObserver;
use pas_sched::optimal::{minimize_finish_time, minimize_finish_time_observed, OptimalConfig};
use pas_sched::SEARCH_SAMPLE_INTERVAL;
use std::process::ExitCode;

const ROUNDS: usize = 7;

fn main() -> ExitCode {
    let tolerance_pct: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2.0);

    let (problem, _) = paper_example();
    let graph = problem.graph();
    let p_max = problem.constraints().p_max();
    let background = problem.background_power();
    // A budget the 9-task search always exhausts: both variants
    // expand exactly the same fixed number of nodes.
    let config = OptimalConfig {
        max_nodes: 150_000,
        horizon: None,
        use_lint_bounds: false,
        use_dominance: false,
    };

    let mut plain_min = Duration::MAX;
    let mut observed_min = Duration::MAX;
    let mut reference_nodes = None;
    for round in 0..ROUNDS {
        let started = Instant::now();
        let plain = minimize_finish_time(graph, p_max, background, &config);
        let plain_elapsed = started.elapsed();
        plain_min = plain_min.min(plain_elapsed);

        let started = Instant::now();
        let observed = minimize_finish_time_observed(
            graph,
            p_max,
            background,
            &config,
            SEARCH_SAMPLE_INTERVAL,
            &mut NullObserver,
        );
        let observed_elapsed = started.elapsed();
        observed_min = observed_min.min(observed_elapsed);

        // Identical work, identical outcome class — otherwise the
        // comparison is meaningless.
        let plain_nodes = match &plain {
            Ok(o) => o.nodes_explored,
            Err(_) => 0,
        };
        let observed_nodes = match &observed {
            Ok(o) => o.nodes_explored,
            Err(_) => 0,
        };
        assert_eq!(
            plain_nodes, observed_nodes,
            "observed search did different work than the plain search"
        );
        match reference_nodes {
            None => reference_nodes = Some(plain_nodes),
            Some(n) => assert_eq!(n, plain_nodes, "node count drifted between rounds"),
        }
        println!(
            "round {round}: plain {:>8.3} ms, null-observed {:>8.3} ms",
            plain_elapsed.as_secs_f64() * 1e3,
            observed_elapsed.as_secs_f64() * 1e3,
        );
    }

    let plain_ms = plain_min.as_secs_f64() * 1e3;
    let observed_ms = observed_min.as_secs_f64() * 1e3;
    let overhead_pct = if plain_ms > 0.0 {
        (observed_ms / plain_ms - 1.0) * 100.0
    } else {
        0.0
    };
    println!(
        "min-of-{ROUNDS}: plain {plain_ms:.3} ms, null-observed {observed_ms:.3} ms, \
         overhead {overhead_pct:+.2}% (tolerance {tolerance_pct:.1}%)"
    );
    if overhead_pct <= tolerance_pct {
        println!("overhead gate passed");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_overhead: null-observer overhead {overhead_pct:.2}% exceeds \
             {tolerance_pct:.1}%"
        );
        ExitCode::FAILURE
    }
}
