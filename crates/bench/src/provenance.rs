//! Machine provenance stamped into every `BENCH_*.json` artifact.
//!
//! Speedup and latency numbers are only comparable between runs made
//! on the same machine and the same commit; a baseline captured on a
//! 32-core workstation will fail `bench_gate` on a 4-core CI runner
//! for reasons that have nothing to do with the code.  Every writer
//! therefore embeds a one-line `"provenance"` object — git SHA,
//! hostname, core count, crate version — and `bench_gate` prints the
//! baseline and fresh provenance side by side whenever a gate fires,
//! so a cross-machine comparison is visible at a glance instead of
//! being an hour of head-scratching.

use std::process::Command;

/// Schema tag embedded in the provenance object of every artifact.
pub const PROVENANCE_SCHEMA: &str = "impacct-provenance/v1";

/// Runs `cmd args...` and returns trimmed stdout, if the command
/// exists, exits 0, and prints valid UTF-8.
fn command_line(cmd: &str, args: &[&str]) -> Option<String> {
    let output = Command::new(cmd).args(args).output().ok()?;
    if !output.status.success() {
        return None;
    }
    let text = String::from_utf8(output.stdout).ok()?;
    let line = text.lines().next()?.trim();
    if line.is_empty() {
        return None;
    }
    Some(line.to_string())
}

/// Keeps only characters that are safe inside a JSON string without
/// escaping: alphanumerics plus `.-_`. Everything else becomes `_`.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '_') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Short git SHA of `HEAD`, or `"unknown"` outside a git checkout.
pub fn git_sha() -> String {
    command_line("git", &["rev-parse", "--short=12", "HEAD"])
        .map(|s| sanitize(&s))
        .unwrap_or_else(|| "unknown".to_string())
}

/// Hostname from `$HOSTNAME` or the `hostname` command, sanitized;
/// `"unknown"` if neither source works.
pub fn hostname() -> String {
    std::env::var("HOSTNAME")
        .ok()
        .filter(|s| !s.trim().is_empty())
        .or_else(|| command_line("hostname", &[]))
        .map(|s| sanitize(s.trim()))
        .unwrap_or_else(|| "unknown".to_string())
}

/// Logical cores visible to this process.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The complete provenance object as a single-line JSON fragment,
/// ready to splice into an artifact after its opening brace:
///
/// ```text
/// "provenance": {"schema": "impacct-provenance/v1", "git_sha": ...}
/// ```
///
/// The fragment carries no trailing comma and no surrounding braces,
/// so callers control the layout of the enclosing object.
pub fn provenance_json() -> String {
    format!(
        "\"provenance\": {{\"schema\": \"{}\", \"git_sha\": \"{}\", \"hostname\": \"{}\", \"host_cores\": {}, \"crate_version\": \"{}\"}}",
        PROVENANCE_SCHEMA,
        git_sha(),
        hostname(),
        host_cores(),
        env!("CARGO_PKG_VERSION"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_replaces_hostile_characters() {
        assert_eq!(sanitize("box-01.local"), "box-01.local");
        assert_eq!(sanitize("a\"b\\c d\n"), "a_b_c_d_");
    }

    #[test]
    fn fields_are_never_empty() {
        assert!(!git_sha().is_empty());
        assert!(!hostname().is_empty());
        assert!(host_cores() >= 1);
    }

    #[test]
    fn fragment_is_single_line_and_carries_the_schema() {
        let frag = provenance_json();
        assert_eq!(frag.lines().count(), 1);
        assert!(frag.starts_with("\"provenance\": {"));
        assert!(frag.contains(PROVENANCE_SCHEMA));
        assert!(frag.contains("\"host_cores\": "));
        // No raw quote-breaking characters can survive sanitize().
        assert!(!frag.contains('\\'));
    }
}
