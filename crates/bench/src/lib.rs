//! # pas-bench — reproduction harness for every table and figure
//!
//! Shared helpers for the `repro` binary (which regenerates the
//! paper's Figs. 2–11 and Tables 3–4 as text) and the Criterion
//! benches (`benches/*.rs`), which measure the schedulers on the
//! paper's instances and on synthetic scaling suites.
//!
//! Run the full reproduction with:
//!
//! ```text
//! cargo run -p pas-bench --bin repro -- all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod provenance;

use pas_core::{analyze, Problem, Schedule, ScheduleAnalysis};
use pas_gantt::{render_ascii, AsciiOptions, GanttChart};

pub use provenance::{git_sha, host_cores, hostname, provenance_json, PROVENANCE_SCHEMA};

/// Renders one schedule as an ASCII power-aware Gantt chart plus a
/// metric line, the standard block the `repro` binary prints per
/// figure.
pub fn figure_block(title: &str, problem: &Problem, schedule: &Schedule) -> String {
    let analysis = analyze(problem, schedule);
    let chart = GanttChart::from_analysis(problem, schedule, &analysis);
    let mut out = format!("---- {title} ----\n");
    out.push_str(&render_ascii(&chart, &AsciiOptions::default()));
    out
}

/// Formats a metrics row for the Table 3 layout.
pub fn metrics_row(label: &str, a: &ScheduleAnalysis) -> String {
    format!(
        "{label:<24} Ec={:<10} rho={:<7} tau={}",
        a.energy_cost.to_string(),
        a.utilization.to_string(),
        a.finish_time
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_core::example::paper_example;
    use pas_sched::PowerAwareScheduler;

    #[test]
    fn figure_block_contains_title_and_chart() {
        let (mut p, _) = paper_example();
        let o = PowerAwareScheduler::default().schedule(&mut p).unwrap();
        let block = figure_block("Fig. 7", &p, &o.schedule);
        assert!(block.starts_with("---- Fig. 7 ----"));
        assert!(block.contains("rho="));
    }

    #[test]
    fn metrics_row_is_single_line() {
        let (mut p, _) = paper_example();
        let o = PowerAwareScheduler::default().schedule(&mut p).unwrap();
        let row = metrics_row("power-aware", &o.analysis);
        assert_eq!(row.lines().count(), 1);
        assert!(row.contains("Ec="));
    }
}
