//! Bench: scheduler scaling with problem size (not in the paper —
//! establishes the tool's practical capacity).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pas_sched::PowerAwareScheduler;
use pas_workload::{chains_suite, scaling_suite};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");

    for problem in scaling_suite(0xC0FFEE).problems {
        let tasks = problem.graph().num_tasks();
        group.bench_function(format!("pipeline_{tasks}_tasks"), |b| {
            b.iter_batched(
                || problem.clone(),
                |mut problem| {
                    // Very tight instances can legitimately fail; both
                    // paths are the measured behaviour.
                    let _ = PowerAwareScheduler::default().schedule(&mut problem);
                },
                BatchSize::SmallInput,
            )
        });
    }

    for problem in chains_suite(0xBEEF).problems {
        let tasks = problem.graph().num_tasks();
        group.bench_function(format!("chains_{tasks}_tasks"), |b| {
            b.iter_batched(
                || problem.clone(),
                |mut problem| {
                    let _ = PowerAwareScheduler::default().schedule(&mut problem);
                },
                BatchSize::SmallInput,
            )
        });
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scaling
}
criterion_main!(benches);
