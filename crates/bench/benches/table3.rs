//! Bench: regenerating Table 3 (JPL baseline + power-aware schedule
//! + metrics for all three cases), and the JPL baseline alone.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pas_core::analyze;
use pas_rover::{jpl_schedule, table3, EnvCase};
use pas_sched::SchedulerConfig;

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");

    group.bench_function("full_table", |b| {
        b.iter(|| table3(&SchedulerConfig::default()).unwrap())
    });

    group.bench_function("jpl_baseline_worst", |b| {
        b.iter_batched(
            || (),
            |()| {
                let (rover, schedule) = jpl_schedule(EnvCase::Worst).unwrap();
                analyze(&rover.problem, &schedule)
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table3
}
criterion_main!(benches);
