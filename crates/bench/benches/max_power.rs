//! Bench: the max-power scheduler (Fig. 4 / Fig. 5 of the paper).
//!
//! Measures stages 1–2 on the paper example and across power-budget
//! tightness (loose budgets are almost free, tight ones recurse).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pas_core::example::paper_example;
use pas_sched::{schedule_max_power, SchedulerConfig, SchedulerStats};
use pas_workload::tightness_suite;

fn bench_max_power(c: &mut Criterion) {
    let config = SchedulerConfig::default();
    let mut group = c.benchmark_group("max_power");

    group.bench_function("fig5_paper_example", |b| {
        b.iter_batched(
            || paper_example().0,
            |mut problem| {
                let constraints = problem.constraints();
                let background = problem.background_power();
                let mut stats = SchedulerStats::default();
                schedule_max_power(
                    problem.graph_mut(),
                    constraints.p_max(),
                    background,
                    &config,
                    &mut stats,
                )
                .unwrap()
            },
            BatchSize::SmallInput,
        )
    });

    for (factor, problem) in tightness_suite(11) {
        group.bench_function(format!("tightness_x{factor}"), |b| {
            b.iter_batched(
                || problem.clone(),
                |mut problem| {
                    let constraints = problem.constraints();
                    let background = problem.background_power();
                    let mut stats = SchedulerStats::default();
                    // Tight instances may be unschedulable; the error
                    // path is part of the measured behaviour.
                    let _ = schedule_max_power(
                        problem.graph_mut(),
                        constraints.p_max(),
                        background,
                        &config,
                        &mut stats,
                    );
                },
                BatchSize::SmallInput,
            )
        });
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_max_power
}
criterion_main!(benches);
