//! Bench: the Table 4 mission scenario — plan construction (which
//! runs the scheduler per case) and the simulation itself.

use criterion::{criterion_group, criterion_main, Criterion};
use pas_mission::{jpl_plan, power_aware_plan, simulate, Scenario};
use pas_sched::SchedulerConfig;

fn bench_table4(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4");

    group.bench_function("jpl_plan_construction", |b| b.iter(|| jpl_plan().unwrap()));

    group.bench_function("power_aware_plan_construction", |b| {
        b.iter(|| power_aware_plan(&SchedulerConfig::default()).unwrap())
    });

    // Simulation alone is microseconds; measured separately so the
    // planning cost above does not mask it.
    let scenario = Scenario::table4();
    let jpl = jpl_plan().unwrap();
    let pa = power_aware_plan(&SchedulerConfig::default()).unwrap();
    group.bench_function("simulate_48_steps_jpl", |b| {
        b.iter(|| simulate(&scenario, &jpl))
    });
    group.bench_function("simulate_48_steps_power_aware", |b| {
        b.iter(|| simulate(&scenario, &pa))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table4
}
criterion_main!(benches);
