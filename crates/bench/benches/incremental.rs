//! Bench: incremental engine vs full recompute (not in the paper —
//! measures the PR 3 delta-maintenance machinery). The definitive
//! numbers come from the `bench_incremental` binary (which also
//! writes `BENCH_incremental.json`); this Criterion harness keeps
//! the comparison in the standard bench suite.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pas_rover::{build_rover_problem, EnvCase};
use pas_sched::{PowerAwareScheduler, SchedulerConfig};
use pas_workload::{generate, GeneratorConfig, Topology};

fn scheduler(incremental: bool) -> PowerAwareScheduler {
    PowerAwareScheduler::new(SchedulerConfig {
        incremental,
        ..SchedulerConfig::default()
    })
}

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental");

    for incremental in [true, false] {
        let tag = if incremental { "incr" } else { "full" };
        group.bench_function(format!("rover_best_{tag}"), |b| {
            b.iter_batched(
                || build_rover_problem(EnvCase::Best, 1),
                |mut rover| scheduler(incremental).schedule(&mut rover.problem).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }

    for tasks in [100usize, 500] {
        let problem = generate(&GeneratorConfig {
            seed: 0xB0B5,
            tasks,
            resources: (tasks / 8).max(4),
            topology: Topology::Layered { layers: 10 },
            ..GeneratorConfig::default()
        });
        for incremental in [true, false] {
            let tag = if incremental { "incr" } else { "full" };
            group.bench_function(format!("generated_{tasks}_{tag}"), |b| {
                b.iter_batched(
                    || problem.clone(),
                    |mut problem| {
                        // Tight generated instances may legitimately
                        // fail; both paths are the measured behaviour.
                        let _ = scheduler(incremental).schedule(&mut problem);
                    },
                    BatchSize::SmallInput,
                )
            });
        }
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_incremental
}
criterion_main!(benches);
