//! Bench: the rover schedules of Figs. 9–11 (full pipeline per
//! environment case, plus the 2-iteration unrolled best case).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pas_rover::{build_rover_problem, EnvCase};
use pas_sched::PowerAwareScheduler;

fn bench_rover_cases(c: &mut Criterion) {
    let mut group = c.benchmark_group("rover_cases");

    for case in EnvCase::ALL {
        group.bench_function(format!("fig_{}_1it", case.label()), |b| {
            b.iter_batched(
                || build_rover_problem(case, 1),
                |mut rover| {
                    PowerAwareScheduler::default()
                        .schedule(&mut rover.problem)
                        .unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }

    group.bench_function("fig9_best_2it_unrolled", |b| {
        b.iter_batched(
            || build_rover_problem(EnvCase::Best, 2),
            |mut rover| {
                PowerAwareScheduler::default()
                    .schedule(&mut rover.problem)
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_rover_cases
}
criterion_main!(benches);
