//! Bench: ablations of the §5 heuristics (DESIGN.md §5).
//!
//! Each variant flips exactly one knob of [`SchedulerConfig`] against
//! the default; run on the rover typical case, which exercises every
//! stage. Quality differences of the same knobs are reported by
//! `repro`/EXPERIMENTS.md; this bench measures their *cost*.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pas_rover::{build_rover_problem, EnvCase};
use pas_sched::{
    DelayPolicy, PowerAwareScheduler, ScanOrder, SchedulerConfig, SlotPolicy, VictimOrder,
};

fn variants() -> Vec<(&'static str, SchedulerConfig)> {
    let base = SchedulerConfig::default();
    vec![
        ("default", base.clone()),
        (
            "victim_random",
            SchedulerConfig {
                victim_order: VictimOrder::Random,
                ..base.clone()
            },
        ),
        (
            "delay_execution_time",
            SchedulerConfig {
                delay_policy: DelayPolicy::ExecutionTime,
                ..base.clone()
            },
        ),
        (
            "delay_next_breakpoint",
            SchedulerConfig {
                delay_policy: DelayPolicy::NextBreakpoint,
                ..base.clone()
            },
        ),
        (
            "no_locking",
            SchedulerConfig {
                lock_remaining: false,
                ..base.clone()
            },
        ),
        (
            "reduce_jitter",
            SchedulerConfig {
                reduce_jitter: true,
                ..base.clone()
            },
        ),
        (
            "no_compaction",
            SchedulerConfig {
                compact: false,
                ..base.clone()
            },
        ),
        (
            "single_forward_scan",
            SchedulerConfig {
                scan_orders: vec![ScanOrder::Forward],
                slot_policies: vec![SlotPolicy::StartAtGap],
                max_scans: 1,
                ..base.clone()
            },
        ),
    ]
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    for (name, config) in variants() {
        group.bench_function(name, |b| {
            b.iter_batched(
                || build_rover_problem(EnvCase::Typical, 1),
                |mut rover| {
                    PowerAwareScheduler::new(config.clone())
                        .schedule(&mut rover.problem)
                        .unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_ablation
}
criterion_main!(benches);
