//! Bench: the timing scheduler (Fig. 3 / Fig. 2 of the paper).
//!
//! Measures stage 1 alone on the paper's 9-task example, the rover
//! model, and growing synthetic graphs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pas_core::example::paper_example;
use pas_rover::{build_rover_problem, EnvCase};
use pas_sched::{schedule_timing, SchedulerConfig, SchedulerStats};
use pas_workload::{generate, GeneratorConfig, Topology};

fn bench_timing(c: &mut Criterion) {
    let config = SchedulerConfig::default();
    let mut group = c.benchmark_group("timing");

    group.bench_function("fig2_paper_example", |b| {
        b.iter_batched(
            || paper_example().0,
            |mut problem| {
                let mut stats = SchedulerStats::default();
                schedule_timing(problem.graph_mut(), &config, &mut stats).unwrap()
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("rover_1it", |b| {
        b.iter_batched(
            || build_rover_problem(EnvCase::Typical, 1),
            |mut rover| {
                let mut stats = SchedulerStats::default();
                schedule_timing(rover.problem.graph_mut(), &config, &mut stats).unwrap()
            },
            BatchSize::SmallInput,
        )
    });

    for tasks in [16usize, 32, 64] {
        let gen = GeneratorConfig {
            tasks,
            resources: (tasks / 4).max(2),
            topology: Topology::Layered {
                layers: (tasks / 6).max(2),
            },
            ..Default::default()
        };
        group.bench_function(format!("layered_{tasks}_tasks"), |b| {
            b.iter_batched(
                || generate(&gen),
                |mut problem| {
                    let mut stats = SchedulerStats::default();
                    schedule_timing(problem.graph_mut(), &config, &mut stats).unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_timing
}
criterion_main!(benches);
