//! Bench: the min-power scheduler (Fig. 6 / Fig. 7 of the paper).
//!
//! Measures the gap-filling stage on top of a precomputed valid
//! schedule, isolating stage 3 from stages 1–2, plus the full
//! pipeline for reference.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pas_core::example::paper_example;
use pas_sched::{
    improve_gaps, schedule_max_power, PowerAwareScheduler, SchedulerConfig, SchedulerStats,
};

fn bench_min_power(c: &mut Criterion) {
    let config = SchedulerConfig::default();
    let mut group = c.benchmark_group("min_power");

    // Precompute the stage-2 result once; stage 3 is pure (does not
    // mutate the graph), so it can be re-run on the same input.
    let (mut problem, _) = paper_example();
    let constraints = problem.constraints();
    let background = problem.background_power();
    let mut stats = SchedulerStats::default();
    let valid = schedule_max_power(
        problem.graph_mut(),
        constraints.p_max(),
        background,
        &config,
        &mut stats,
    )
    .unwrap();

    group.bench_function("fig7_gap_filling_only", |b| {
        b.iter_batched(
            || valid.clone(),
            |valid| {
                let mut stats = SchedulerStats::default();
                improve_gaps(
                    problem.graph(),
                    valid,
                    constraints.p_max(),
                    constraints.p_min(),
                    background,
                    &config,
                    &mut stats,
                )
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("full_pipeline_paper_example", |b| {
        b.iter_batched(
            || paper_example().0,
            |mut problem| {
                PowerAwareScheduler::default()
                    .schedule(&mut problem)
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_min_power
}
criterion_main!(benches);
