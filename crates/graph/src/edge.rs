//! Constraint edges.
//!
//! Every edge `(u, v)` with weight `w` encodes the linear inequality
//!
//! ```text
//! σ(v) ≥ σ(u) + w
//! ```
//!
//! over task start times, exactly as in the constraint-graph
//! formulation of Chou & Borriello that the paper extends:
//!
//! * a **min separation** "v at least `k` after u" is `u → v` with
//!   weight `k ≥ 0`;
//! * a **max separation** "v at most `k` after u" is the *reversed*
//!   edge `v → u` with weight `−k` (`σ(u) ≥ σ(v) − k`);
//! * a **serialization** edge (same-resource ordering added by the
//!   timing scheduler) is `u → v` with weight `d(u)`;
//! * a **release** edge from the anchor delays a task (`σ(v) ≥ s`),
//!   used by the max/min-power schedulers to push tasks later;
//! * a **lock** fixes a start time with the pair `anchor → v` (`w = s`)
//!   and `v → anchor` (`w = −s`).

use crate::id::NodeId;
use crate::units::TimeSpan;

/// Why an edge exists. The solver treats all kinds identically (the
/// inequality is the same); the kind is kept for diagnostics, undo
/// bookkeeping, chart annotation and DOT export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum EdgeKind {
    /// A user-specified minimum timing separation (includes plain
    /// precedence, which is a min separation of the predecessor's
    /// delay).
    MinSeparation,
    /// A user-specified maximum timing separation (stored reversed with
    /// negative weight).
    MaxSeparation,
    /// Added by the timing scheduler to serialize two tasks that share
    /// an execution resource.
    Serialization,
    /// Added by the power schedulers to delay a task (`anchor → v`).
    Release,
    /// Half of a start-time lock (`anchor → v` with `+s` and
    /// `v → anchor` with `−s`).
    Lock,
}

impl core::fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            EdgeKind::MinSeparation => "min",
            EdgeKind::MaxSeparation => "max",
            EdgeKind::Serialization => "serialize",
            EdgeKind::Release => "release",
            EdgeKind::Lock => "lock",
        };
        f.write_str(s)
    }
}

/// A weighted constraint edge: `σ(to) ≥ σ(from) + weight`.
///
/// # Examples
/// ```
/// use pas_graph::{Edge, EdgeKind, NodeId, TaskId};
/// use pas_graph::units::TimeSpan;
/// let e = Edge::new(NodeId::ANCHOR, TaskId::from_index(0).node(),
///                   TimeSpan::from_secs(5), EdgeKind::Release);
/// assert_eq!(e.weight(), TimeSpan::from_secs(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    from: NodeId,
    to: NodeId,
    weight: TimeSpan,
    kind: EdgeKind,
}

impl Edge {
    /// Creates an edge `from → to` with the given weight and kind.
    #[inline]
    pub fn new(from: NodeId, to: NodeId, weight: TimeSpan, kind: EdgeKind) -> Self {
        Edge {
            from,
            to,
            weight,
            kind,
        }
    }

    /// Source vertex `u`.
    #[inline]
    pub fn from(&self) -> NodeId {
        self.from
    }

    /// Target vertex `v`.
    #[inline]
    pub fn to(&self) -> NodeId {
        self.to
    }

    /// Weight `w` of the inequality `σ(v) ≥ σ(u) + w`.
    #[inline]
    pub fn weight(&self) -> TimeSpan {
        self.weight
    }

    /// The reason this edge exists.
    #[inline]
    pub fn kind(&self) -> EdgeKind {
        self.kind
    }

    /// `true` for edges that define a precedence (forward, non-negative
    /// weight) rather than a backward max-separation bound. Precedence
    /// edges are the ones followed by topological traversal in the
    /// timing scheduler.
    #[inline]
    pub fn is_precedence(&self) -> bool {
        !self.weight.is_negative() && !matches!(self.kind, EdgeKind::MaxSeparation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::TaskId;

    #[test]
    fn precedence_classification() {
        let a = TaskId::from_index(0).node();
        let b = TaskId::from_index(1).node();
        let min = Edge::new(a, b, TimeSpan::from_secs(5), EdgeKind::MinSeparation);
        assert!(min.is_precedence());
        let max = Edge::new(b, a, TimeSpan::from_secs(-50), EdgeKind::MaxSeparation);
        assert!(!max.is_precedence());
        let ser = Edge::new(a, b, TimeSpan::from_secs(10), EdgeKind::Serialization);
        assert!(ser.is_precedence());
        // A zero-weight min separation is still a precedence.
        let zero = Edge::new(a, b, TimeSpan::ZERO, EdgeKind::MinSeparation);
        assert!(zero.is_precedence());
    }

    #[test]
    fn kind_display() {
        assert_eq!(EdgeKind::MaxSeparation.to_string(), "max");
        assert_eq!(EdgeKind::Serialization.to_string(), "serialize");
    }
}
