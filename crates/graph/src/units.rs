//! Exact fixed-point physical units.
//!
//! All quantities in the paper (14.9 W solar output, 79.5 J energy cost,
//! 75 s finish time, …) are exactly representable in this integer model:
//!
//! * [`Time`] — an absolute instant, in whole seconds.
//! * [`TimeSpan`] — a signed duration / separation, in whole seconds.
//! * [`Power`] — instantaneous power, in milliwatts.
//! * [`Energy`] — energy, in millijoules (1 mW·s = 1 mJ).
//!
//! Using integers instead of `f64` makes every scheduler decision and
//! every metric bit-for-bit deterministic, so the test suite can assert
//! *exact* equality against the paper's numbers (e.g. the worst-case
//! Mars rover energy cost of exactly 388 J).

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An absolute instant on the schedule timeline, in whole seconds.
///
/// Schedules anchor at [`Time::ZERO`]. Instants may be compared and
/// subtracted (yielding a [`TimeSpan`]), and shifted by a `TimeSpan`.
///
/// # Examples
/// ```
/// use pas_graph::units::{Time, TimeSpan};
/// let t = Time::from_secs(10) + TimeSpan::from_secs(5);
/// assert_eq!(t, Time::from_secs(15));
/// assert_eq!(t - Time::from_secs(3), TimeSpan::from_secs(12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(i64);

/// A signed duration or timing separation, in whole seconds.
///
/// Negative spans arise naturally in constraint graphs: a *max* timing
/// separation is encoded as a reversed edge with negative weight.
///
/// # Examples
/// ```
/// use pas_graph::units::TimeSpan;
/// let w = -TimeSpan::from_secs(50);
/// assert!(w.is_negative());
/// assert_eq!(w.as_secs(), -50);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeSpan(i64);

/// Instantaneous power, in milliwatts.
///
/// # Examples
/// ```
/// use pas_graph::units::Power;
/// let solar = Power::from_watts_milli(14_900); // 14.9 W
/// assert_eq!(solar.to_string(), "14.9W");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Power(i64);

/// Energy, in millijoules (1 mW over 1 s).
///
/// Produced by `Power * TimeSpan`.
///
/// # Examples
/// ```
/// use pas_graph::units::{Power, TimeSpan};
/// let e = Power::from_watts_milli(10_000) * TimeSpan::from_secs(5);
/// assert_eq!(e.as_millijoules(), 50_000);
/// assert_eq!(e.to_string(), "50J");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Energy(i64);

impl Time {
    /// The schedule origin, `t = 0`.
    pub const ZERO: Time = Time(0);
    /// Largest representable instant; used as an "unbounded" sentinel.
    pub const MAX: Time = Time(i64::MAX);

    /// Creates an instant `secs` seconds after the origin.
    #[inline]
    pub const fn from_secs(secs: i64) -> Self {
        Time(secs)
    }

    /// Returns the number of whole seconds since the origin.
    #[inline]
    pub const fn as_secs(self) -> i64 {
        self.0
    }

    /// Returns the span from the origin to this instant.
    #[inline]
    pub const fn since_origin(self) -> TimeSpan {
        TimeSpan(self.0)
    }

    /// Returns the earlier of two instants.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// Returns the later of two instants.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }
}

impl TimeSpan {
    /// The empty span.
    pub const ZERO: TimeSpan = TimeSpan(0);
    /// Largest representable span; used as an "infinite slack" sentinel.
    pub const MAX: TimeSpan = TimeSpan(i64::MAX);

    /// Creates a span of `secs` whole seconds (may be negative).
    #[inline]
    pub const fn from_secs(secs: i64) -> Self {
        TimeSpan(secs)
    }

    /// Returns the span length in whole seconds.
    #[inline]
    pub const fn as_secs(self) -> i64 {
        self.0
    }

    /// `true` when the span is strictly negative.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// `true` when the span is strictly positive.
    #[inline]
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// `true` when the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the smaller of two spans.
    #[inline]
    pub fn min(self, other: TimeSpan) -> TimeSpan {
        TimeSpan(self.0.min(other.0))
    }

    /// Returns the larger of two spans.
    #[inline]
    pub fn max(self, other: TimeSpan) -> TimeSpan {
        TimeSpan(self.0.max(other.0))
    }

    /// Saturating addition, so `TimeSpan::MAX` behaves as infinity.
    #[inline]
    pub fn saturating_add(self, other: TimeSpan) -> TimeSpan {
        TimeSpan(self.0.saturating_add(other.0))
    }
}

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0);
    /// Largest representable power; an "unconstrained `P_max`" sentinel.
    pub const MAX: Power = Power(i64::MAX);

    /// Creates a power value from milliwatts.
    #[inline]
    pub const fn from_watts_milli(milliwatts: i64) -> Self {
        Power(milliwatts)
    }

    /// Creates a power value from whole watts.
    #[inline]
    pub const fn from_watts(watts: i64) -> Self {
        Power(watts * 1000)
    }

    /// Returns the value in milliwatts.
    #[inline]
    pub const fn as_milliwatts(self) -> i64 {
        self.0
    }

    /// Returns the value in watts as a float (for display/plots only).
    #[inline]
    pub fn as_watts_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Returns the smaller of two power values.
    #[inline]
    pub fn min(self, other: Power) -> Power {
        Power(self.0.min(other.0))
    }

    /// Returns the larger of two power values.
    #[inline]
    pub fn max(self, other: Power) -> Power {
        Power(self.0.max(other.0))
    }

    /// Saturating addition, so `Power::MAX` behaves as infinity.
    #[inline]
    pub fn saturating_add(self, other: Power) -> Power {
        Power(self.0.saturating_add(other.0))
    }
}

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0);

    /// Creates an energy value from millijoules.
    #[inline]
    pub const fn from_millijoules(millijoules: i64) -> Self {
        Energy(millijoules)
    }

    /// Creates an energy value from whole joules.
    #[inline]
    pub const fn from_joules(joules: i64) -> Self {
        Energy(joules * 1000)
    }

    /// Returns the value in millijoules.
    #[inline]
    pub const fn as_millijoules(self) -> i64 {
        self.0
    }

    /// Returns the value in joules as a float (for display/plots only).
    #[inline]
    pub fn as_joules_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }
}

impl Add<TimeSpan> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: TimeSpan) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl Sub<TimeSpan> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: TimeSpan) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub for Time {
    type Output = TimeSpan;
    #[inline]
    fn sub(self, rhs: Time) -> TimeSpan {
        TimeSpan(self.0 - rhs.0)
    }
}

impl AddAssign<TimeSpan> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: TimeSpan) {
        self.0 += rhs.0;
    }
}

impl Add for TimeSpan {
    type Output = TimeSpan;
    #[inline]
    fn add(self, rhs: TimeSpan) -> TimeSpan {
        TimeSpan(self.0 + rhs.0)
    }
}

impl Sub for TimeSpan {
    type Output = TimeSpan;
    #[inline]
    fn sub(self, rhs: TimeSpan) -> TimeSpan {
        TimeSpan(self.0 - rhs.0)
    }
}

impl AddAssign for TimeSpan {
    #[inline]
    fn add_assign(&mut self, rhs: TimeSpan) {
        self.0 += rhs.0;
    }
}

impl SubAssign for TimeSpan {
    #[inline]
    fn sub_assign(&mut self, rhs: TimeSpan) {
        self.0 -= rhs.0;
    }
}

impl Neg for TimeSpan {
    type Output = TimeSpan;
    #[inline]
    fn neg(self) -> TimeSpan {
        TimeSpan(-self.0)
    }
}

impl Mul<i64> for TimeSpan {
    type Output = TimeSpan;
    #[inline]
    fn mul(self, rhs: i64) -> TimeSpan {
        TimeSpan(self.0 * rhs)
    }
}

impl Sum for TimeSpan {
    fn sum<I: Iterator<Item = TimeSpan>>(iter: I) -> TimeSpan {
        iter.fold(TimeSpan::ZERO, Add::add)
    }
}

impl Add for Power {
    type Output = Power;
    #[inline]
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl Sub for Power {
    type Output = Power;
    #[inline]
    fn sub(self, rhs: Power) -> Power {
        Power(self.0 - rhs.0)
    }
}

impl AddAssign for Power {
    #[inline]
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}

impl SubAssign for Power {
    #[inline]
    fn sub_assign(&mut self, rhs: Power) {
        self.0 -= rhs.0;
    }
}

impl Mul<i64> for Power {
    type Output = Power;
    #[inline]
    fn mul(self, rhs: i64) -> Power {
        Power(self.0 * rhs)
    }
}

impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        iter.fold(Power::ZERO, Add::add)
    }
}

impl Mul<TimeSpan> for Power {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: TimeSpan) -> Energy {
        Energy(self.0 * rhs.0)
    }
}

impl Mul<Power> for TimeSpan {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: Power) -> Energy {
        Energy(self.0 * rhs.0)
    }
}

impl Add for Energy {
    type Output = Energy;
    #[inline]
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl Sub for Energy {
    type Output = Energy;
    #[inline]
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl AddAssign for Energy {
    #[inline]
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

impl Div<Power> for Energy {
    type Output = TimeSpan;
    /// Integer division: how long `self` lasts at drain rate `rhs`
    /// (truncated toward zero).
    #[inline]
    fn div(self, rhs: Power) -> TimeSpan {
        TimeSpan(self.0 / rhs.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

impl fmt::Display for TimeSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

/// Formats a milli-scaled integer as a decimal with unit suffix,
/// trimming trailing zeros: `14900 → "14.9"`, `10000 → "10"`.
fn fmt_milli(f: &mut fmt::Formatter<'_>, milli: i64, unit: &str) -> fmt::Result {
    let sign = if milli < 0 { "-" } else { "" };
    let abs = milli.unsigned_abs();
    let whole = abs / 1000;
    let frac = abs % 1000;
    if frac == 0 {
        write!(f, "{sign}{whole}{unit}")
    } else {
        let mut frac_str = format!("{frac:03}");
        while frac_str.ends_with('0') {
            frac_str.pop();
        }
        write!(f, "{sign}{whole}.{frac_str}{unit}")
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_milli(f, self.0, "W")
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_milli(f, self.0, "J")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = Time::from_secs(42);
        assert_eq!(t.as_secs(), 42);
        assert_eq!(t + TimeSpan::from_secs(8), Time::from_secs(50));
        assert_eq!(t - TimeSpan::from_secs(2), Time::from_secs(40));
        assert_eq!(Time::from_secs(50) - t, TimeSpan::from_secs(8));
        assert_eq!(t.since_origin(), TimeSpan::from_secs(42));
    }

    #[test]
    fn time_min_max() {
        let a = Time::from_secs(3);
        let b = Time::from_secs(7);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn span_signs() {
        assert!(TimeSpan::from_secs(-1).is_negative());
        assert!(TimeSpan::from_secs(1).is_positive());
        assert!(TimeSpan::ZERO.is_zero());
        assert_eq!(-TimeSpan::from_secs(5), TimeSpan::from_secs(-5));
    }

    #[test]
    fn span_saturating_add_acts_as_infinity() {
        assert_eq!(
            TimeSpan::MAX.saturating_add(TimeSpan::from_secs(10)),
            TimeSpan::MAX
        );
    }

    #[test]
    fn power_constructors_agree() {
        assert_eq!(Power::from_watts(10), Power::from_watts_milli(10_000));
        assert_eq!(Power::from_watts_milli(14_900).as_milliwatts(), 14_900);
    }

    #[test]
    fn power_times_span_is_energy() {
        // Heating two motors @ 9.5 W for 5 s = 47.5 J.
        let e = Power::from_watts_milli(9_500) * TimeSpan::from_secs(5);
        assert_eq!(e, Energy::from_millijoules(47_500));
        assert_eq!(TimeSpan::from_secs(5) * Power::from_watts_milli(9_500), e);
    }

    #[test]
    fn energy_div_power_gives_duration() {
        let e = Energy::from_joules(100);
        let p = Power::from_watts(10);
        assert_eq!(e / p, TimeSpan::from_secs(10));
    }

    #[test]
    fn display_trims_trailing_zeros() {
        assert_eq!(Power::from_watts_milli(14_900).to_string(), "14.9W");
        assert_eq!(Power::from_watts_milli(10_000).to_string(), "10W");
        assert_eq!(Power::from_watts_milli(7_650).to_string(), "7.65W");
        assert_eq!(Power::from_watts_milli(-2_500).to_string(), "-2.5W");
        assert_eq!(Energy::from_millijoules(79_500).to_string(), "79.5J");
        assert_eq!(Energy::from_millijoules(5).to_string(), "0.005J");
        assert_eq!(Time::from_secs(75).to_string(), "75s");
        assert_eq!(TimeSpan::from_secs(-50).to_string(), "-50s");
    }

    #[test]
    fn sums() {
        let spans = [TimeSpan::from_secs(1), TimeSpan::from_secs(2)];
        assert_eq!(
            spans.iter().copied().sum::<TimeSpan>(),
            TimeSpan::from_secs(3)
        );
        let powers = [Power::from_watts(1), Power::from_watts(2)];
        assert_eq!(powers.iter().copied().sum::<Power>(), Power::from_watts(3));
        let energies = [Energy::from_joules(1), Energy::from_joules(2)];
        assert_eq!(
            energies.iter().copied().sum::<Energy>(),
            Energy::from_joules(3)
        );
    }
}
