//! Joint ASAP/ALAP interval-window propagation with widening.
//!
//! The deep lint pass (`pas-lint::passes::interval`) interprets every
//! task abstractly as a start-time interval `[asap(v), alap(v)]` under
//! a completion deadline. This module computes all windows in one
//! chaotic-iteration fixpoint over the constraint graph:
//!
//! ```text
//! asap(v) = max( 0,            max over edges u→v of asap(u) + w )
//! alap(v) = min( D − d(v),     min over edges v→u of alap(u) − w )
//! ```
//!
//! Both transfer functions are monotone on the interval lattice
//! (ordered by inclusion, ⊥ = `[0, D − d(v)]`, ⊤ = the empty
//! interval), so chaotic iteration converges — and on a feasible
//! graph it converges within `n` rounds, because each bound is a sum
//! of edge weights along a simple path. A round counter acts as the
//! **widening** operator: once `n + 1` rounds pass without
//! stabilising, some bound is riding a positive cycle, and the value
//! is widened straight to ⊤ — reported as the offending
//! [`PositiveCycle`] via the independent Bellman–Ford oracle rather
//! than iterated further. `DESIGN.md` §14 gives the full termination
//! argument.
//!
//! The results are pinned to the two existing single-direction
//! analyses ([`single_source_longest_paths`](crate::longest_path::single_source_longest_paths) and
//! [`latest_start_times`]) by property tests: the fixpoint must agree
//! with them bound-for-bound on every feasible graph.

use crate::alap::latest_start_times;
use crate::graph::ConstraintGraph;
use crate::id::{NodeId, TaskId};
use crate::longest_path::{bellman_ford_reference, PositiveCycle};
use crate::units::{Time, TimeSpan};

/// Per-task start-time windows `[asap, alap]` under a deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskWindows {
    deadline: Time,
    asap: Vec<Time>,
    alap: Vec<Time>,
}

impl TaskWindows {
    /// The deadline the windows were propagated under.
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// Earliest feasible start of `task`.
    ///
    /// # Panics
    /// Panics if `task` is out of range.
    pub fn asap(&self, task: TaskId) -> Time {
        self.asap[task.index()]
    }

    /// Latest start of `task` compatible with the deadline.
    ///
    /// # Panics
    /// Panics if `task` is out of range.
    pub fn alap(&self, task: TaskId) -> Time {
        self.alap[task.index()]
    }

    /// Scheduling freedom `alap − asap` of `task` (never negative on a
    /// successfully propagated result).
    ///
    /// # Panics
    /// Panics if `task` is out of range.
    pub fn slack(&self, task: TaskId) -> TimeSpan {
        self.alap[task.index()] - self.asap[task.index()]
    }
}

/// Propagates ASAP/ALAP windows for every task under `deadline` by a
/// joint forward/backward interval fixpoint (see the module docs for
/// the lattice and widening argument).
///
/// # Errors
/// Returns the offending [`PositiveCycle`] when the timing constraints
/// are unsatisfiable, or a degenerate single-node cycle when a task's
/// window is empty (`alap < asap`: the deadline cannot be met).
///
/// # Examples
/// ```
/// use pas_graph::units::{Power, Time, TimeSpan};
/// use pas_graph::window::propagate_windows;
/// use pas_graph::{ConstraintGraph, Resource, ResourceKind, Task};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = ConstraintGraph::new();
/// let r = g.add_resource(Resource::new("R", ResourceKind::Compute));
/// let a = g.add_task(Task::new("a", r, TimeSpan::from_secs(3), Power::ZERO));
/// let b = g.add_task(Task::new("b", r, TimeSpan::from_secs(2), Power::ZERO));
/// g.precedence(a, b);
/// let w = propagate_windows(&g, Time::from_secs(10))?;
/// assert_eq!(w.asap(b).as_secs(), 3);
/// assert_eq!(w.alap(b).as_secs(), 8);
/// assert_eq!(w.alap(a).as_secs(), 5);
/// # Ok(())
/// # }
/// ```
pub fn propagate_windows(
    graph: &ConstraintGraph,
    deadline: Time,
) -> Result<TaskWindows, PositiveCycle> {
    let n = graph.num_nodes();
    // Bottom element per node: the anchor is pinned at [0, 0]; a task
    // starts no earlier than 0 and no later than D − d(v).
    let mut asap: Vec<Time> = vec![Time::ZERO; n];
    let mut alap: Vec<Time> = (0..n)
        .map(|i| {
            if i == 0 {
                Time::ZERO
            } else {
                deadline - graph.task(TaskId::from_index(i - 1)).delay()
            }
        })
        .collect();

    let mut changed = true;
    let mut rounds = 0usize;
    while changed {
        changed = false;
        rounds += 1;
        if rounds > n + 1 {
            // Widening: a bound still moving after n rounds cannot be
            // a simple-path sum, so it rides a positive cycle. Jump to
            // ⊤ and let the oracle extract the witness.
            return Err(bellman_ford_reference(graph, NodeId::ANCHOR)
                .err()
                .unwrap_or_else(|| PositiveCycle {
                    nodes: vec![NodeId::ANCHOR],
                    total_weight: TimeSpan::from_secs(1),
                }));
        }
        for (_, e) in graph.edges() {
            // Forward: σ(to) ≥ σ(from) + w tightens asap(to).
            let lo = asap[e.from().index()] + e.weight();
            if lo > asap[e.to().index()] {
                asap[e.to().index()] = lo;
                changed = true;
            }
            // Backward: the same inequality read right-to-left
            // tightens alap(from). The anchor's time is fixed at 0
            // and never relaxed.
            if !e.from().is_anchor() {
                let hi = alap[e.to().index()] - e.weight();
                if hi < alap[e.from().index()] {
                    alap[e.from().index()] = hi;
                    changed = true;
                }
            }
        }
    }

    // Empty window ⇒ the deadline is unmeetable for that task; report
    // the same degenerate witness shape as `latest_start_times`.
    for t in graph.task_ids() {
        let (lo, hi) = (asap[t.node().index()], alap[t.node().index()]);
        if hi < lo {
            return Err(PositiveCycle {
                nodes: vec![t.node()],
                total_weight: lo - hi,
            });
        }
    }

    let asap = graph.task_ids().map(|t| asap[t.node().index()]).collect();
    let alap = graph.task_ids().map(|t| alap[t.node().index()]).collect();
    Ok(TaskWindows {
        deadline,
        asap,
        alap,
    })
}

/// Completion tails: for every task `v`, a lower bound on
/// `finish(σ) − σ(v)` valid for **every** feasible schedule `σ` — the
/// weight of the heaviest precedence chain out of `v`, plus the delay
/// of the chain's last task:
///
/// ```text
/// tail(v) = max( d(v),  max over precedence edges v→u of w + tail(u) )
/// ```
///
/// The exact B&B uses tails as admissible pruning bounds: a partial
/// schedule placing `v` at `s` can never finish before `s + tail(v)`
/// (`DESIGN.md` §14). Only precedence edges (forward, non-negative)
/// contribute; backward max-separation edges would form cycles and
/// can only weaken the bound. A degenerate zero-weight precedence
/// cycle is broken conservatively (the bound stays valid, it just
/// stops growing).
pub fn completion_tails(graph: &ConstraintGraph) -> Vec<TimeSpan> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        Fresh,
        Visiting,
        Done,
    }
    let n = graph.num_tasks();
    let mut tails: Vec<TimeSpan> = (0..n)
        .map(|i| graph.task(TaskId::from_index(i)).delay())
        .collect();
    let mut marks = vec![Mark::Fresh; n];

    // Iterative DFS so deep chains cannot overflow the stack.
    for root in graph.task_ids() {
        if marks[root.index()] != Mark::Fresh {
            continue;
        }
        let mut stack: Vec<(TaskId, bool)> = vec![(root, false)];
        while let Some((v, expanded)) = stack.pop() {
            if expanded {
                let mut best = graph.task(v).delay();
                for (_, e) in graph.out_edges(v.node()) {
                    if !e.is_precedence() {
                        continue;
                    }
                    if let Some(u) = e.to().task() {
                        if marks[u.index()] == Mark::Done {
                            best = best.max(e.weight() + tails[u.index()]);
                        }
                    }
                }
                tails[v.index()] = best;
                marks[v.index()] = Mark::Done;
                continue;
            }
            if marks[v.index()] != Mark::Fresh {
                continue;
            }
            marks[v.index()] = Mark::Visiting;
            stack.push((v, true));
            for (_, e) in graph.out_edges(v.node()) {
                if !e.is_precedence() {
                    continue;
                }
                if let Some(u) = e.to().task() {
                    if marks[u.index()] == Mark::Fresh {
                        stack.push((u, false));
                    }
                }
            }
        }
    }
    tails
}

/// Convenience wrapper pairing [`propagate_windows`] with the
/// single-direction ALAP analysis it must agree with — used by tests
/// and kept public as the cheap "is this deadline even window-
/// consistent" probe.
///
/// # Errors
/// Same conditions as [`propagate_windows`].
pub fn windows_agree_with_alap(
    graph: &ConstraintGraph,
    deadline: Time,
) -> Result<bool, PositiveCycle> {
    let w = propagate_windows(graph, deadline)?;
    let alap = latest_start_times(graph, deadline)?;
    Ok(graph.task_ids().all(|t| w.alap(t) == alap.start_time(t)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::longest_path::single_source_longest_paths;
    use crate::task::{Resource, ResourceKind, Task};
    use crate::units::Power;

    fn chain(n: usize, d: i64) -> (ConstraintGraph, Vec<TaskId>) {
        let mut g = ConstraintGraph::new();
        let ids: Vec<_> = (0..n)
            .map(|i| {
                let r = g.add_resource(Resource::new(format!("R{i}"), ResourceKind::Compute));
                g.add_task(Task::new(
                    format!("t{i}"),
                    r,
                    TimeSpan::from_secs(d),
                    Power::ZERO,
                ))
            })
            .collect();
        for w in ids.windows(2) {
            g.precedence(w[0], w[1]);
        }
        (g, ids)
    }

    /// The joint fixpoint is pinned to the Bellman–Ford-based
    /// single-direction analyses, bound for bound.
    #[test]
    fn fixpoint_matches_the_single_direction_oracles() {
        let (mut g, ids) = chain(6, 4);
        g.min_separation(ids[0], ids[4], TimeSpan::from_secs(20));
        g.max_separation(ids[1], ids[5], TimeSpan::from_secs(90));
        g.release(ids[2], Time::from_secs(11));
        let deadline = Time::from_secs(60);

        let w = propagate_windows(&g, deadline).unwrap();
        let asap = single_source_longest_paths(&g, NodeId::ANCHOR).unwrap();
        let alap = latest_start_times(&g, deadline).unwrap();
        for t in g.task_ids() {
            assert_eq!(w.asap(t), asap.start_time(t), "{t:?} asap");
            assert_eq!(w.alap(t), alap.start_time(t), "{t:?} alap");
            assert!(!w.slack(t).is_negative());
        }
        assert!(windows_agree_with_alap(&g, deadline).unwrap());
    }

    #[test]
    fn positive_cycle_is_widened_to_an_error() {
        let (mut g, ids) = chain(3, 4);
        g.max_separation(ids[0], ids[2], TimeSpan::from_secs(2)); // chain needs 8
        let err = propagate_windows(&g, Time::from_secs(100)).unwrap_err();
        assert!(err.total_weight.is_positive());
    }

    #[test]
    fn unmeetable_deadline_is_an_empty_window() {
        let (g, _) = chain(3, 4);
        // Critical path 12 > deadline 11.
        let err = propagate_windows(&g, Time::from_secs(11)).unwrap_err();
        assert!(err.total_weight.is_positive());
        assert!(propagate_windows(&g, Time::from_secs(12)).is_ok());
    }

    #[test]
    fn tails_accumulate_along_the_heaviest_chain() {
        let (mut g, ids) = chain(4, 3);
        // A heavier side chain out of t1.
        let r = g.add_resource(Resource::new("S", ResourceKind::Compute));
        let s = g.add_task(Task::new("s", r, TimeSpan::from_secs(20), Power::ZERO));
        g.precedence(ids[1], s);
        let tails = completion_tails(&g);
        // t3: just itself. t2: 3 + 3. t1: max(3+3+3, 3+20) = 23.
        assert_eq!(tails[ids[3].index()].as_secs(), 3);
        assert_eq!(tails[ids[2].index()].as_secs(), 6);
        assert_eq!(tails[ids[1].index()].as_secs(), 23);
        assert_eq!(tails[ids[0].index()].as_secs(), 26);
        assert_eq!(tails[s.index()].as_secs(), 20);
    }

    /// Admissibility: for the ASAP schedule (a feasible one), every
    /// task's start plus its tail stays within the schedule finish.
    #[test]
    fn tails_are_admissible_on_the_asap_schedule() {
        let (mut g, ids) = chain(5, 2);
        g.min_separation(ids[0], ids[3], TimeSpan::from_secs(9));
        let asap = single_source_longest_paths(&g, NodeId::ANCHOR).unwrap();
        let finish = g
            .task_ids()
            .map(|t| asap.start_time(t) + g.task(t).delay())
            .max()
            .unwrap();
        let tails = completion_tails(&g);
        for t in g.task_ids() {
            assert!(
                asap.start_time(t) + tails[t.index()] <= finish,
                "{t:?}: tail overshoots the ASAP finish"
            );
        }
    }

    #[test]
    fn zero_weight_precedence_cycle_does_not_hang_tails() {
        let (mut g, ids) = chain(2, 3);
        g.min_separation(ids[1], ids[0], TimeSpan::ZERO);
        let tails = completion_tails(&g);
        assert!(tails[ids[0].index()].as_secs() >= 3);
    }
}
