//! Graphviz DOT export of constraint graphs (for Fig. 1 / Fig. 8-style
//! renderings).

use crate::edge::EdgeKind;
use crate::graph::ConstraintGraph;
use std::fmt::Write as _;

/// Options controlling DOT export.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name used in the `digraph` header.
    pub name: String,
    /// Include scheduler-added edges (serialization / release / lock)?
    pub include_derived_edges: bool,
    /// Label vertices `name\nresource/delay/power` as in Fig. 1?
    pub attribute_labels: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "constraints".to_string(),
            include_derived_edges: true,
            attribute_labels: true,
        }
    }
}

/// Renders `graph` in Graphviz DOT syntax.
///
/// Min-separation edges are solid, max-separation edges dashed (drawn
/// in their original `u → v` direction with the positive bound as the
/// label, matching how papers draw them), serialization edges dotted.
///
/// # Examples
/// ```
/// use pas_graph::{ConstraintGraph, Resource, ResourceKind, Task};
/// use pas_graph::units::{Power, TimeSpan};
/// use pas_graph::dot::{to_dot, DotOptions};
/// let mut g = ConstraintGraph::new();
/// let r = g.add_resource(Resource::new("A", ResourceKind::Compute));
/// let a = g.add_task(Task::new("a", r, TimeSpan::from_secs(1), Power::ZERO));
/// let b = g.add_task(Task::new("b", r, TimeSpan::from_secs(1), Power::ZERO));
/// g.min_separation(a, b, TimeSpan::from_secs(5));
/// let dot = to_dot(&g, &DotOptions::default());
/// assert!(dot.contains("digraph"));
/// ```
pub fn to_dot(graph: &ConstraintGraph, options: &DotOptions) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", options.name);
    let _ = writeln!(s, "  rankdir=LR;");
    let _ = writeln!(s, "  node [shape=box, fontsize=10];");
    let _ = writeln!(s, "  anchor [shape=point, label=\"\"];");
    for (id, t) in graph.tasks() {
        let label = if options.attribute_labels {
            format!(
                "{}\\n{}/{}/{}",
                t.name(),
                graph.resource(t.resource()).name(),
                t.delay(),
                t.power()
            )
        } else {
            t.name().to_string()
        };
        let _ = writeln!(s, "  n{} [label=\"{}\"];", id.index() + 1, label);
    }
    for (_, e) in graph.edges() {
        let derived = matches!(
            e.kind(),
            EdgeKind::Serialization | EdgeKind::Release | EdgeKind::Lock
        );
        if derived && !options.include_derived_edges {
            continue;
        }
        // Skip the automatic zero-weight anchor release edges: they
        // carry no information and clutter the drawing.
        if e.kind() == EdgeKind::Release && e.from().is_anchor() && e.weight().is_zero() {
            continue;
        }
        let (style, color) = match e.kind() {
            EdgeKind::MinSeparation => ("solid", "black"),
            EdgeKind::MaxSeparation => ("dashed", "black"),
            EdgeKind::Serialization => ("dotted", "blue"),
            EdgeKind::Release => ("dotted", "darkgreen"),
            EdgeKind::Lock => ("dotted", "red"),
        };
        // Draw max separations in their original direction with the
        // positive bound.
        let (from, to, label) = if e.kind() == EdgeKind::MaxSeparation {
            (e.to(), e.from(), format!("≤{}", -e.weight()))
        } else {
            (e.from(), e.to(), format!("≥{}", e.weight()))
        };
        let fname = if from.is_anchor() {
            "anchor".to_string()
        } else {
            format!("n{}", from.index())
        };
        let tname = if to.is_anchor() {
            "anchor".to_string()
        } else {
            format!("n{}", to.index())
        };
        let _ = writeln!(
            s,
            "  {fname} -> {tname} [label=\"{label}\", style={style}, color={color}];"
        );
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Resource, ResourceKind, Task};
    use crate::units::{Power, Time, TimeSpan};

    fn sample() -> ConstraintGraph {
        let mut g = ConstraintGraph::new();
        let r = g.add_resource(Resource::new("A", ResourceKind::Compute));
        let a = g.add_task(Task::new(
            "a",
            r,
            TimeSpan::from_secs(5),
            Power::from_watts(2),
        ));
        let b = g.add_task(Task::new(
            "b",
            r,
            TimeSpan::from_secs(3),
            Power::from_watts(1),
        ));
        g.min_separation(a, b, TimeSpan::from_secs(5));
        g.max_separation(a, b, TimeSpan::from_secs(50));
        g.lock(a, Time::from_secs(0));
        g
    }

    #[test]
    fn dot_contains_nodes_and_constraint_edges() {
        let dot = to_dot(&sample(), &DotOptions::default());
        assert!(dot.contains("digraph \"constraints\""));
        assert!(dot.contains("n1 [label=\"a"));
        assert!(dot.contains("n2 [label=\"b"));
        assert!(dot.contains("≥5s"));
        assert!(dot.contains("≤50s"));
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn derived_edges_can_be_hidden() {
        let opts = DotOptions {
            include_derived_edges: false,
            ..DotOptions::default()
        };
        let dot = to_dot(&sample(), &opts);
        assert!(!dot.contains("color=red"), "lock edges should be hidden");
    }

    #[test]
    fn automatic_release_edges_are_skipped() {
        let dot = to_dot(&sample(), &DotOptions::default());
        // The two automatic anchor releases (weight 0) are not drawn;
        // the lock edges are.
        assert_eq!(dot.matches("anchor ->").count(), 1);
    }

    #[test]
    fn plain_labels_without_attributes() {
        let opts = DotOptions {
            attribute_labels: false,
            ..DotOptions::default()
        };
        let dot = to_dot(&sample(), &opts);
        assert!(dot.contains("n1 [label=\"a\"];"));
    }
}
