//! The constraint graph `G(V, E)` with journaled mutation.
//!
//! Scheduling proceeds by *adding* edges (serialization, release,
//! lock) and backtracking. The graph therefore records edge additions
//! in strict stack order: [`ConstraintGraph::mark`] takes a checkpoint
//! and [`ConstraintGraph::undo_to`] pops every edge added since — the
//! "undo changes to G since step B" of the paper's Figs. 3, 4 and 6.

use crate::edge::{Edge, EdgeKind};
use crate::id::{EdgeId, NodeId, ResourceId, TaskId};
use crate::task::{Resource, Task};
use crate::units::{Time, TimeSpan};

/// A checkpoint of the edge journal, returned by
/// [`ConstraintGraph::mark`].
///
/// Marks must be undone in LIFO order; undoing an older mark also
/// discards younger ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphMark(usize);

/// A constraint graph: tasks (vertices), resources, and weighted
/// constraint edges, plus the virtual anchor vertex.
///
/// Vertices are the anchor plus one node per task; see [`NodeId`].
/// Every task automatically receives a `anchor → task` release edge of
/// weight 0, so all vertices are reachable from the anchor and
/// `σ(v) ≥ 0` holds for every task.
///
/// # Examples
/// ```
/// use pas_graph::{ConstraintGraph, Resource, ResourceKind, Task};
/// use pas_graph::units::{Power, TimeSpan};
///
/// let mut g = ConstraintGraph::new();
/// let cpu = g.add_resource(Resource::new("cpu", ResourceKind::Compute));
/// let a = g.add_task(Task::new("a", cpu, TimeSpan::from_secs(2), Power::from_watts(1)));
/// let b = g.add_task(Task::new("b", cpu, TimeSpan::from_secs(3), Power::from_watts(2)));
/// g.precedence(a, b); // b starts after a completes
/// assert_eq!(g.num_tasks(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConstraintGraph {
    tasks: Vec<Task>,
    resources: Vec<Resource>,
    edges: Vec<Edge>,
    /// Outgoing edge ids per node (anchor = index 0).
    out: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per node.
    incoming: Vec<Vec<EdgeId>>,
}

impl ConstraintGraph {
    /// Creates an empty graph containing only the anchor vertex.
    pub fn new() -> Self {
        ConstraintGraph {
            tasks: Vec::new(),
            resources: Vec::new(),
            edges: Vec::new(),
            out: vec![Vec::new()],
            incoming: vec![Vec::new()],
        }
    }

    /// Registers an execution resource.
    pub fn add_resource(&mut self, resource: Resource) -> ResourceId {
        let id = ResourceId::from_index(self.resources.len());
        self.resources.push(resource);
        id
    }

    /// Adds a task vertex.
    ///
    /// Automatically adds the `anchor → task` release edge of weight 0
    /// (`σ(v) ≥ 0`).
    ///
    /// # Panics
    /// Panics if the task references an unknown resource.
    pub fn add_task(&mut self, task: Task) -> TaskId {
        assert!(
            task.resource().index() < self.resources.len(),
            "task {:?} references unknown resource {}",
            task.name(),
            task.resource()
        );
        let id = TaskId::from_index(self.tasks.len());
        self.tasks.push(task);
        self.out.push(Vec::new());
        self.incoming.push(Vec::new());
        self.add_edge(Edge::new(
            NodeId::ANCHOR,
            id.node(),
            TimeSpan::ZERO,
            EdgeKind::Release,
        ));
        id
    }

    /// Adds an arbitrary constraint edge and returns its id.
    ///
    /// Prefer the semantic helpers ([`min_separation`],
    /// [`max_separation`], [`precedence`], [`serialize_after`],
    /// [`release`], [`lock`]) which encode the paper's constraint types
    /// correctly.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    ///
    /// [`min_separation`]: Self::min_separation
    /// [`max_separation`]: Self::max_separation
    /// [`precedence`]: Self::precedence
    /// [`serialize_after`]: Self::serialize_after
    /// [`release`]: Self::release
    /// [`lock`]: Self::lock
    pub fn add_edge(&mut self, edge: Edge) -> EdgeId {
        let n = self.num_nodes();
        assert!(edge.from().index() < n, "edge source out of range");
        assert!(edge.to().index() < n, "edge target out of range");
        let id = EdgeId(self.edges.len() as u32);
        self.out[edge.from().index()].push(id);
        self.incoming[edge.to().index()].push(id);
        self.edges.push(edge);
        id
    }

    /// Constrains `v` to start **at least** `sep` after `u` starts
    /// (start-to-start min separation).
    pub fn min_separation(&mut self, u: TaskId, v: TaskId, sep: TimeSpan) -> EdgeId {
        self.add_edge(Edge::new(u.node(), v.node(), sep, EdgeKind::MinSeparation))
    }

    /// Constrains `v` to start **at most** `sep` after `u` starts
    /// (start-to-start max separation), encoded as the reversed edge
    /// `v → u` with weight `−sep`.
    ///
    /// # Panics
    /// Panics if `sep` is negative (use `min_separation` for that).
    pub fn max_separation(&mut self, u: TaskId, v: TaskId, sep: TimeSpan) -> EdgeId {
        assert!(
            !sep.is_negative(),
            "max separation must be non-negative, got {sep}"
        );
        self.add_edge(Edge::new(v.node(), u.node(), -sep, EdgeKind::MaxSeparation))
    }

    /// Constrains `v` to start only after `u` **completes**
    /// (`σ(v) ≥ σ(u) + d(u)`), i.e. ordinary precedence.
    pub fn precedence(&mut self, u: TaskId, v: TaskId) -> EdgeId {
        let d = self.task(u).delay();
        self.add_edge(Edge::new(u.node(), v.node(), d, EdgeKind::MinSeparation))
    }

    /// Adds a serialization edge forcing `v` to start after `u`
    /// completes, tagged [`EdgeKind::Serialization`]. Used by the
    /// timing scheduler to resolve resource conflicts.
    pub fn serialize_after(&mut self, u: TaskId, v: TaskId) -> EdgeId {
        let d = self.task(u).delay();
        self.add_edge(Edge::new(u.node(), v.node(), d, EdgeKind::Serialization))
    }

    /// Forces `v` to start no earlier than `t` (`σ(v) ≥ t`), tagged
    /// [`EdgeKind::Release`]. Used by the power schedulers to delay
    /// tasks.
    pub fn release(&mut self, v: TaskId, t: Time) -> EdgeId {
        self.add_edge(Edge::new(
            NodeId::ANCHOR,
            v.node(),
            t.since_origin(),
            EdgeKind::Release,
        ))
    }

    /// Pins `v`'s start time to exactly `t` with a pair of lock edges.
    /// Used by the max-power scheduler to lock remaining zero-slack
    /// tasks before recursing.
    pub fn lock(&mut self, v: TaskId, t: Time) -> (EdgeId, EdgeId) {
        let fwd = self.add_edge(Edge::new(
            NodeId::ANCHOR,
            v.node(),
            t.since_origin(),
            EdgeKind::Lock,
        ));
        let bwd = self.add_edge(Edge::new(
            v.node(),
            NodeId::ANCHOR,
            -t.since_origin(),
            EdgeKind::Lock,
        ));
        (fwd, bwd)
    }

    /// Takes a checkpoint of the edge journal.
    #[inline]
    pub fn mark(&self) -> GraphMark {
        GraphMark(self.edges.len())
    }

    /// Pops every edge added since `mark`, restoring the graph to the
    /// checkpointed state.
    ///
    /// # Panics
    /// Panics if `mark` is newer than the current journal (i.e. it was
    /// already undone past).
    pub fn undo_to(&mut self, mark: GraphMark) {
        assert!(
            mark.0 <= self.edges.len(),
            "mark is newer than the current edge journal"
        );
        while self.edges.len() > mark.0 {
            let edge = self.edges.pop().expect("journal length checked");
            let popped_out = self.out[edge.from().index()].pop();
            let popped_in = self.incoming[edge.to().index()].pop();
            debug_assert_eq!(
                popped_out.map(EdgeId::index),
                Some(self.edges.len()),
                "adjacency out-of-sync during undo"
            );
            debug_assert_eq!(
                popped_in.map(EdgeId::index),
                Some(self.edges.len()),
                "adjacency out-of-sync during undo"
            );
        }
    }

    /// Number of task vertices (excluding the anchor).
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of graph nodes including the anchor.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.tasks.len() + 1
    }

    /// Number of registered resources.
    #[inline]
    pub fn num_resources(&self) -> usize {
        self.resources.len()
    }

    /// Number of edges currently alive in the journal.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Looks up a task.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Replaces the power attribute `p(v)` of a task — the hook for
    /// corner analysis and temperature-dependent power models (§4.1's
    /// "(min, typical, max)" case). This mutation is **not** tracked
    /// by the edge journal.
    ///
    /// # Panics
    /// Panics if `id` is out of range or `power` is negative.
    pub fn set_task_power(&mut self, id: TaskId, power: crate::units::Power) {
        self.tasks[id.index()].set_power(power);
    }

    /// Looks up a resource.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn resource(&self, id: ResourceId) -> &Resource {
        &self.resources[id.index()]
    }

    /// Looks up an edge.
    ///
    /// # Panics
    /// Panics if `id` has been undone or is out of range.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Iterates over all tasks with their ids.
    pub fn tasks(&self) -> impl Iterator<Item = (TaskId, &Task)> + '_ {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (TaskId::from_index(i), t))
    }

    /// Iterates over all task ids.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + 'static {
        (0..self.tasks.len()).map(TaskId::from_index)
    }

    /// Iterates over all resources with their ids.
    pub fn resources(&self) -> impl Iterator<Item = (ResourceId, &Resource)> + '_ {
        self.resources
            .iter()
            .enumerate()
            .map(|(i, r)| (ResourceId::from_index(i), r))
    }

    /// Iterates over all edges with their ids.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// Iterates over the outgoing edges of `node`.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.out[node.index()]
            .iter()
            .map(move |&id| (id, &self.edges[id.index()]))
    }

    /// Iterates over the incoming edges of `node`.
    pub fn in_edges(&self, node: NodeId) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.incoming[node.index()]
            .iter()
            .map(move |&id| (id, &self.edges[id.index()]))
    }

    /// `true` when two tasks are mapped to the same execution resource
    /// and must therefore be serialized.
    #[inline]
    pub fn same_resource(&self, a: TaskId, b: TaskId) -> bool {
        self.task(a).resource() == self.task(b).resource()
    }

    /// All tasks mapped to `resource`.
    pub fn tasks_on(&self, resource: ResourceId) -> impl Iterator<Item = TaskId> + '_ {
        self.tasks().filter_map(move |(id, t)| {
            if t.resource() == resource {
                Some(id)
            } else {
                None
            }
        })
    }

    /// Finds a task by name (linear scan; intended for tests and
    /// small interactive use).
    pub fn task_by_name(&self, name: &str) -> Option<TaskId> {
        self.tasks()
            .find(|(_, t)| t.name() == name)
            .map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::ResourceKind;
    use crate::units::Power;

    fn graph_ab() -> (ConstraintGraph, TaskId, TaskId) {
        let mut g = ConstraintGraph::new();
        let r = g.add_resource(Resource::new("R", ResourceKind::Compute));
        let a = g.add_task(Task::new(
            "a",
            r,
            TimeSpan::from_secs(2),
            Power::from_watts(1),
        ));
        let b = g.add_task(Task::new(
            "b",
            r,
            TimeSpan::from_secs(3),
            Power::from_watts(2),
        ));
        (g, a, b)
    }

    #[test]
    fn new_graph_has_only_anchor() {
        let g = ConstraintGraph::new();
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_tasks(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn add_task_creates_release_edge() {
        let (g, a, _) = graph_ab();
        let incoming: Vec<_> = g.in_edges(a.node()).collect();
        assert_eq!(incoming.len(), 1);
        assert_eq!(incoming[0].1.from(), NodeId::ANCHOR);
        assert_eq!(incoming[0].1.weight(), TimeSpan::ZERO);
        assert_eq!(incoming[0].1.kind(), EdgeKind::Release);
    }

    #[test]
    fn min_and_max_separation_encoding() {
        let (mut g, a, b) = graph_ab();
        let min = g.min_separation(a, b, TimeSpan::from_secs(5));
        assert_eq!(g.edge(min).from(), a.node());
        assert_eq!(g.edge(min).to(), b.node());
        assert_eq!(g.edge(min).weight(), TimeSpan::from_secs(5));

        // "b at most 50s after a" becomes b → a with weight −50.
        let max = g.max_separation(a, b, TimeSpan::from_secs(50));
        assert_eq!(g.edge(max).from(), b.node());
        assert_eq!(g.edge(max).to(), a.node());
        assert_eq!(g.edge(max).weight(), TimeSpan::from_secs(-50));
    }

    #[test]
    fn precedence_uses_predecessor_delay() {
        let (mut g, a, b) = graph_ab();
        let e = g.precedence(a, b);
        assert_eq!(g.edge(e).weight(), TimeSpan::from_secs(2));
    }

    #[test]
    fn lock_adds_edge_pair() {
        let (mut g, a, _) = graph_ab();
        let before = g.num_edges();
        let (fwd, bwd) = g.lock(a, Time::from_secs(7));
        assert_eq!(g.num_edges(), before + 2);
        assert_eq!(g.edge(fwd).weight(), TimeSpan::from_secs(7));
        assert_eq!(g.edge(bwd).weight(), TimeSpan::from_secs(-7));
        assert_eq!(g.edge(bwd).to(), NodeId::ANCHOR);
    }

    #[test]
    fn undo_restores_edges_and_adjacency() {
        let (mut g, a, b) = graph_ab();
        let mark = g.mark();
        g.min_separation(a, b, TimeSpan::from_secs(5));
        g.serialize_after(a, b);
        g.lock(b, Time::from_secs(9));
        assert_eq!(g.num_edges(), mark.0 + 4);
        g.undo_to(mark);
        assert_eq!(g.num_edges(), mark.0);
        // Only the automatic release edge remains incoming at b.
        assert_eq!(g.in_edges(b.node()).count(), 1);
        assert_eq!(g.out_edges(a.node()).count(), 0);
    }

    #[test]
    fn nested_marks_undo_in_lifo_order() {
        let (mut g, a, b) = graph_ab();
        let m1 = g.mark();
        g.min_separation(a, b, TimeSpan::from_secs(1));
        let m2 = g.mark();
        g.min_separation(a, b, TimeSpan::from_secs(2));
        g.undo_to(m2);
        assert_eq!(g.num_edges(), m2.0);
        g.undo_to(m1);
        assert_eq!(g.num_edges(), m1.0);
    }

    #[test]
    #[should_panic(expected = "newer than the current edge journal")]
    fn undo_past_journal_panics() {
        let (mut g, _, _) = graph_ab();
        let mark = GraphMark(g.num_edges() + 10);
        g.undo_to(mark);
    }

    #[test]
    fn same_resource_and_tasks_on() {
        let mut g = ConstraintGraph::new();
        let r0 = g.add_resource(Resource::new("A", ResourceKind::Compute));
        let r1 = g.add_resource(Resource::new("B", ResourceKind::Mechanical));
        let a = g.add_task(Task::new("a", r0, TimeSpan::from_secs(1), Power::ZERO));
        let b = g.add_task(Task::new("b", r1, TimeSpan::from_secs(1), Power::ZERO));
        let c = g.add_task(Task::new("c", r0, TimeSpan::from_secs(1), Power::ZERO));
        assert!(g.same_resource(a, c));
        assert!(!g.same_resource(a, b));
        let on_r0: Vec<_> = g.tasks_on(r0).collect();
        assert_eq!(on_r0, vec![a, c]);
    }

    #[test]
    fn task_by_name_finds_tasks() {
        let (g, a, _) = graph_ab();
        assert_eq!(g.task_by_name("a"), Some(a));
        assert_eq!(g.task_by_name("zz"), None);
    }

    #[test]
    #[should_panic(expected = "unknown resource")]
    fn task_with_unknown_resource_rejected() {
        let mut g = ConstraintGraph::new();
        let _ = g.add_task(Task::new(
            "bad",
            ResourceId::from_index(3),
            TimeSpan::from_secs(1),
            Power::ZERO,
        ));
    }

    #[test]
    #[should_panic(expected = "max separation must be non-negative")]
    fn negative_max_separation_rejected() {
        let (mut g, a, b) = graph_ab();
        g.max_separation(a, b, TimeSpan::from_secs(-1));
    }
}
