//! Task vertices and execution resources.

use crate::id::ResourceId;
use crate::units::{Energy, Power, TimeSpan};

/// A schedulable task: vertex `v` of the constraint graph with the
/// paper's three attributes `d(v)` (execution delay), `p(v)` (power
/// consumption) and `r(v)` (execution resource).
///
/// Tasks are non-preemptive: once started, a task runs for exactly
/// `delay` seconds drawing `power` milliwatts.
///
/// # Examples
/// ```
/// use pas_graph::{Task, ResourceId};
/// use pas_graph::units::{Power, TimeSpan};
/// let drive = Task::new("drive", ResourceId::from_index(0),
///                       TimeSpan::from_secs(10), Power::from_watts_milli(10_900));
/// assert_eq!(drive.energy().as_millijoules(), 109_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Task {
    name: String,
    resource: ResourceId,
    delay: TimeSpan,
    power: Power,
}

impl Task {
    /// Creates a task.
    ///
    /// # Panics
    /// Panics if `delay` is not strictly positive or `power` is
    /// negative — the paper assumes bounded execution delays and
    /// `p(v) ≥ 0`.
    pub fn new(
        name: impl Into<String>,
        resource: ResourceId,
        delay: TimeSpan,
        power: Power,
    ) -> Self {
        assert!(delay.is_positive(), "task delay must be > 0, got {delay}");
        assert!(power >= Power::ZERO, "task power must be >= 0, got {power}");
        Task {
            name: name.into(),
            resource,
            delay,
            power,
        }
    }

    /// The task's human-readable name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The execution resource `r(v)` this task is mapped onto.
    #[inline]
    pub fn resource(&self) -> ResourceId {
        self.resource
    }

    /// The execution delay `d(v)`.
    #[inline]
    pub fn delay(&self) -> TimeSpan {
        self.delay
    }

    /// The power consumption `p(v)` while the task runs.
    #[inline]
    pub fn power(&self) -> Power {
        self.power
    }

    /// The energy expenditure `d(v) × p(v)` — the area of the task's
    /// bin in the power-aware Gantt chart.
    #[inline]
    pub fn energy(&self) -> Energy {
        self.power * self.delay
    }

    /// Replaces the power attribute (used by corner analysis and
    /// temperature-dependent models).
    ///
    /// # Panics
    /// Panics if `power` is negative.
    pub(crate) fn set_power(&mut self, power: Power) {
        assert!(power >= Power::ZERO, "task power must be >= 0, got {power}");
        self.power = power;
    }
}

/// Broad classification of an execution resource, for display and
/// domain bookkeeping. The scheduler itself treats all resources
/// uniformly: two tasks on the same resource must be serialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum ResourceKind {
    /// A digital computing resource (CPU, DSP, laser rangefinder…).
    #[default]
    Compute,
    /// A mechanical subsystem (wheel motors, steering motors…).
    Mechanical,
    /// A thermal subsystem (motor heaters…).
    Thermal,
    /// Anything else (radio, instrument, …).
    Other,
}

impl core::fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            ResourceKind::Compute => "compute",
            ResourceKind::Mechanical => "mechanical",
            ResourceKind::Thermal => "thermal",
            ResourceKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// An execution resource: a row of the power-aware Gantt chart's time
/// view. Tasks mapped to the same resource are serialized by the
/// timing scheduler.
///
/// # Examples
/// ```
/// use pas_graph::{Resource, ResourceKind};
/// let heater = Resource::new("heater-0", ResourceKind::Thermal);
/// assert_eq!(heater.name(), "heater-0");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Resource {
    name: String,
    kind: ResourceKind,
}

impl Resource {
    /// Creates a resource.
    pub fn new(name: impl Into<String>, kind: ResourceKind) -> Self {
        Resource {
            name: name.into(),
            kind,
        }
    }

    /// The resource's human-readable name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The resource's broad classification.
    #[inline]
    pub fn kind(&self) -> ResourceKind {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r0() -> ResourceId {
        ResourceId::from_index(0)
    }

    #[test]
    fn task_accessors() {
        let t = Task::new(
            "steer",
            r0(),
            TimeSpan::from_secs(5),
            Power::from_watts_milli(6_200),
        );
        assert_eq!(t.name(), "steer");
        assert_eq!(t.resource(), r0());
        assert_eq!(t.delay(), TimeSpan::from_secs(5));
        assert_eq!(t.power(), Power::from_watts_milli(6_200));
        assert_eq!(t.energy(), pas_energy(31_000));
    }

    fn pas_energy(mj: i64) -> Energy {
        Energy::from_millijoules(mj)
    }

    #[test]
    #[should_panic(expected = "delay must be > 0")]
    fn zero_delay_rejected() {
        let _ = Task::new("bad", r0(), TimeSpan::ZERO, Power::ZERO);
    }

    #[test]
    #[should_panic(expected = "power must be >= 0")]
    fn negative_power_rejected() {
        let _ = Task::new(
            "bad",
            r0(),
            TimeSpan::from_secs(1),
            Power::from_watts_milli(-1),
        );
    }

    #[test]
    fn resource_kind_display() {
        assert_eq!(ResourceKind::Thermal.to_string(), "thermal");
        assert_eq!(ResourceKind::default(), ResourceKind::Compute);
    }
}
