//! Typed index handles into a [`ConstraintGraph`](crate::ConstraintGraph).
//!
//! All ids are small copyable newtypes over `u32`, so they are cheap to
//! pass around and statically distinguish the arena they index
//! (task vs. resource vs. edge vs. graph node).

use core::fmt;

/// Identifies a task vertex within a constraint graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub(crate) u32);

/// Identifies an execution resource within a constraint graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub(crate) u32);

/// Identifies a constraint edge within a constraint graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) u32);

/// A vertex of the constraint graph: either the virtual *anchor*
/// (the task that "starts at time 0" in the paper's Fig. 3) or a real
/// task.
///
/// # Examples
/// ```
/// use pas_graph::NodeId;
/// assert!(NodeId::ANCHOR.is_anchor());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl TaskId {
    /// Returns the raw arena index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `TaskId` from a raw index.
    ///
    /// Only meaningful for indices previously obtained from
    /// [`TaskId::index`] on the same graph.
    #[inline]
    pub const fn from_index(index: usize) -> Self {
        TaskId(index as u32)
    }

    /// The graph node corresponding to this task.
    #[inline]
    pub const fn node(self) -> NodeId {
        NodeId(self.0 + 1)
    }
}

impl ResourceId {
    /// Returns the raw arena index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `ResourceId` from a raw index.
    #[inline]
    pub const fn from_index(index: usize) -> Self {
        ResourceId(index as u32)
    }
}

impl EdgeId {
    /// Returns the raw arena index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl NodeId {
    /// The virtual anchor vertex that starts at time 0.
    pub const ANCHOR: NodeId = NodeId(0);

    /// `true` when this node is the anchor.
    #[inline]
    pub const fn is_anchor(self) -> bool {
        self.0 == 0
    }

    /// The task this node denotes, or `None` for the anchor.
    #[inline]
    pub const fn task(self) -> Option<TaskId> {
        if self.0 == 0 {
            None
        } else {
            Some(TaskId(self.0 - 1))
        }
    }

    /// Returns the raw dense index (anchor = 0, task `i` = `i + 1`).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<TaskId> for NodeId {
    #[inline]
    fn from(t: TaskId) -> NodeId {
        t.node()
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_anchor() {
            write!(f, "anchor")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_node_round_trip() {
        let t = TaskId::from_index(4);
        let n = t.node();
        assert!(!n.is_anchor());
        assert_eq!(n.task(), Some(t));
        assert_eq!(n.index(), 5);
        assert_eq!(NodeId::from(t), n);
    }

    #[test]
    fn anchor_has_no_task() {
        assert_eq!(NodeId::ANCHOR.task(), None);
        assert_eq!(NodeId::ANCHOR.index(), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TaskId::from_index(2).to_string(), "t2");
        assert_eq!(ResourceId::from_index(1).to_string(), "r1");
        assert_eq!(NodeId::ANCHOR.to_string(), "anchor");
        assert_eq!(TaskId::from_index(0).node().to_string(), "n1");
    }
}
