//! As-late-as-possible (ALAP) start times.
//!
//! The anchor longest paths give the ASAP schedule; the dual analysis
//! propagates a deadline *backwards* through the constraints:
//!
//! ```text
//! lst(v) = min( deadline − d(v),  min over edges v→u of lst(u) − w )
//! ```
//!
//! The `[asap(v), alap(v)]` window of each task is its total
//! scheduling freedom under the deadline — the global counterpart of
//! the schedule-relative slack `Δ_σ(v)` of §4.1.

use crate::graph::ConstraintGraph;
use crate::id::{NodeId, TaskId};
use crate::longest_path::{single_source_longest_paths, PositiveCycle};
use crate::units::{Time, TimeSpan};

/// Latest feasible start times under a completion deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatestStarts {
    deadline: Time,
    lst: Vec<Time>,
}

impl LatestStarts {
    /// The deadline the analysis was run for.
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// Latest start of `task` such that a deadline-meeting schedule
    /// exists with every constraint satisfied.
    ///
    /// # Panics
    /// Panics if `task` is out of range.
    pub fn start_time(&self, task: TaskId) -> Time {
        self.lst[task.index()]
    }
}

/// Computes ALAP start times for every task under `deadline`.
///
/// # Errors
/// Returns the positive cycle when the constraints are unsatisfiable,
/// or a degenerate single-node cycle when some task cannot meet the
/// deadline at all (its ASAP start is already too late).
///
/// # Examples
/// ```
/// use pas_graph::alap::latest_start_times;
/// use pas_graph::units::{Power, Time, TimeSpan};
/// use pas_graph::{ConstraintGraph, Resource, ResourceKind, Task};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = ConstraintGraph::new();
/// let r = g.add_resource(Resource::new("R", ResourceKind::Compute));
/// let a = g.add_task(Task::new("a", r, TimeSpan::from_secs(3), Power::ZERO));
/// let b = g.add_task(Task::new("b", r, TimeSpan::from_secs(2), Power::ZERO));
/// g.precedence(a, b);
/// let alap = latest_start_times(&g, Time::from_secs(10))?;
/// assert_eq!(alap.start_time(b).as_secs(), 8);  // finish exactly at 10
/// assert_eq!(alap.start_time(a).as_secs(), 5);  // leave room for b
/// # Ok(())
/// # }
/// ```
pub fn latest_start_times(
    graph: &ConstraintGraph,
    deadline: Time,
) -> Result<LatestStarts, PositiveCycle> {
    // Feasibility first: a positive cycle invalidates everything.
    let asap = single_source_longest_paths(graph, NodeId::ANCHOR)?;

    let n = graph.num_nodes();
    // lst over nodes; anchor's "latest start" is pinned at 0 (it
    // *is* time zero), which propagates release/lock edges correctly.
    let mut lst: Vec<Time> = (0..n)
        .map(|i| {
            if i == 0 {
                Time::ZERO
            } else {
                let t = TaskId::from_index(i - 1);
                deadline - graph.task(t).delay()
            }
        })
        .collect();

    // Fixpoint: relax lst(v) ≤ lst(u) − w for every edge v→u. The
    // graph is feasible (checked above), so this terminates within
    // n·|E| relaxations.
    let mut changed = true;
    let mut rounds = 0usize;
    while changed {
        changed = false;
        rounds += 1;
        if rounds > n + 1 {
            // Cannot happen on a feasible graph; defensive guard.
            break;
        }
        for (_, e) in graph.edges() {
            // Skip constraints on the anchor's own time (fixed at 0).
            if e.from().is_anchor() {
                continue;
            }
            let bound = lst[e.to().index()] - e.weight();
            if bound < lst[e.from().index()] {
                lst[e.from().index()] = bound;
                changed = true;
            }
        }
    }

    // Every task must still be startable at or after its ASAP time.
    for t in graph.task_ids() {
        if lst[t.node().index()] < asap.start_time(t) {
            return Err(PositiveCycle {
                nodes: vec![t.node()],
                total_weight: asap.start_time(t) - lst[t.node().index()],
            });
        }
    }

    let lst = graph.task_ids().map(|t| lst[t.node().index()]).collect();
    Ok(LatestStarts { deadline, lst })
}

/// The global scheduling window `alap − asap` of every task under a
/// deadline, indexed by [`TaskId`].
///
/// # Errors
/// Same conditions as [`latest_start_times`].
pub fn scheduling_windows(
    graph: &ConstraintGraph,
    deadline: Time,
) -> Result<Vec<TimeSpan>, PositiveCycle> {
    let asap = single_source_longest_paths(graph, NodeId::ANCHOR)?;
    let alap = latest_start_times(graph, deadline)?;
    Ok(graph
        .task_ids()
        .map(|t| alap.start_time(t) - asap.start_time(t))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Resource, ResourceKind, Task};
    use crate::units::Power;

    fn chain3() -> (ConstraintGraph, Vec<TaskId>) {
        let mut g = ConstraintGraph::new();
        let ids = (0..3)
            .map(|i| {
                let r = g.add_resource(Resource::new(format!("R{i}"), ResourceKind::Compute));
                g.add_task(Task::new(
                    format!("t{i}"),
                    r,
                    TimeSpan::from_secs(4),
                    Power::ZERO,
                ))
            })
            .collect::<Vec<_>>();
        g.precedence(ids[0], ids[1]);
        g.precedence(ids[1], ids[2]);
        (g, ids)
    }

    #[test]
    fn chain_alap_counts_back_from_deadline() {
        let (g, ids) = chain3();
        let alap = latest_start_times(&g, Time::from_secs(20)).unwrap();
        assert_eq!(alap.start_time(ids[2]).as_secs(), 16);
        assert_eq!(alap.start_time(ids[1]).as_secs(), 12);
        assert_eq!(alap.start_time(ids[0]).as_secs(), 8);
        assert_eq!(alap.deadline(), Time::from_secs(20));
    }

    #[test]
    fn windows_shrink_with_the_deadline() {
        let (g, _) = chain3();
        let wide = scheduling_windows(&g, Time::from_secs(30)).unwrap();
        let tight = scheduling_windows(&g, Time::from_secs(12)).unwrap();
        for (w, t) in wide.iter().zip(&tight) {
            assert!(t <= w);
        }
        // Deadline 12 = critical path: zero freedom everywhere.
        assert!(tight.iter().all(|w| w.is_zero()));
    }

    #[test]
    fn impossible_deadline_is_reported() {
        let (g, _) = chain3();
        let err = latest_start_times(&g, Time::from_secs(11)).unwrap_err();
        assert!(err.total_weight.is_positive());
    }

    #[test]
    fn max_separation_tightens_alap_of_the_earlier_task() {
        let (mut g, ids) = chain3();
        // t2 at most 9 s after t0 (it is already ≥ 8 by precedence).
        g.max_separation(ids[0], ids[2], TimeSpan::from_secs(9));
        let alap = latest_start_times(&g, Time::from_secs(30)).unwrap();
        // t0 cannot start later than lst(t2) − ... : the backward
        // edge t2→t0 (−9) gives lst(t0) ≥ lst(t2) − 9? No: it gives
        // lst(t0) ≤ lst(t2) + 9 (loose) — but the forward chain
        // t0→t1→t2 caps lst(t0) at lst(t2) − 8.
        assert_eq!(
            alap.start_time(ids[2]) - alap.start_time(ids[0]),
            TimeSpan::from_secs(8)
        );
        // And ASAP must still fit inside the window.
        let windows = scheduling_windows(&g, Time::from_secs(30)).unwrap();
        assert!(windows.iter().all(|w| !w.is_negative()));
    }

    #[test]
    fn release_edges_bound_alap_from_below_feasibly() {
        let (mut g, ids) = chain3();
        g.release(ids[0], Time::from_secs(5));
        // ASAP(t0) = 5; deadline 16 leaves lst(t0) = 16−12 = 4 < 5 →
        // infeasible.
        assert!(latest_start_times(&g, Time::from_secs(16)).is_err());
        assert!(latest_start_times(&g, Time::from_secs(17)).is_ok());
    }

    #[test]
    fn lock_pins_the_window_to_a_point() {
        let (mut g, ids) = chain3();
        g.lock(ids[1], Time::from_secs(6));
        let asap = single_source_longest_paths(&g, NodeId::ANCHOR).unwrap();
        let alap = latest_start_times(&g, Time::from_secs(40)).unwrap();
        assert_eq!(asap.start_time(ids[1]), Time::from_secs(6));
        assert_eq!(alap.start_time(ids[1]), Time::from_secs(6));
    }
}
