//! Single-source longest paths and positive-cycle detection.
//!
//! Start times in the paper are assigned as "the distance from the
//! anchor to `c` in the longest path" (Fig. 3). Because constraint
//! graphs contain negative edges (max separations), longest paths are
//! computed with a Bellman–Ford scheme; a **positive cycle** means the
//! conjunction of constraints on that cycle is unsatisfiable.
//!
//! Two implementations are provided:
//!
//! * [`single_source_longest_paths`] — queue-based (SPFA-style), the
//!   one used by the schedulers;
//! * [`bellman_ford_reference`] — the textbook O(V·E) loop, kept as an
//!   independent oracle for property tests.

use crate::graph::ConstraintGraph;
use crate::id::{EdgeId, NodeId, TaskId};
use crate::units::{Time, TimeSpan};

/// Longest distances from a source node to every reachable node.
///
/// For schedules, the distance from the anchor **is** the earliest
/// feasible start time of each task under the current constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LongestPaths {
    source: NodeId,
    dist: Vec<Option<TimeSpan>>,
}

impl LongestPaths {
    /// Assembles a result from raw parts (used by the incremental
    /// engine, whose distances are maintained rather than recomputed).
    #[inline]
    pub(crate) fn from_parts(source: NodeId, dist: Vec<Option<TimeSpan>>) -> Self {
        LongestPaths { source, dist }
    }

    /// The source node distances were computed from.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Longest distance from the source to `node`, or `None` when
    /// unreachable.
    #[inline]
    pub fn distance(&self, node: NodeId) -> Option<TimeSpan> {
        self.dist[node.index()]
    }

    /// Earliest start time of `task` (distance from the anchor).
    ///
    /// # Panics
    /// Panics if the task is unreachable from the source, which cannot
    /// happen for graphs built through [`ConstraintGraph::add_task`]
    /// (every task has an automatic anchor release edge).
    #[inline]
    pub fn start_time(&self, task: TaskId) -> Time {
        let d = self.dist[task.node().index()]
            .expect("task unreachable from anchor; graph invariant violated");
        Time::ZERO + d
    }

    /// Iterates over `(node, distance)` for all reachable nodes.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, TimeSpan)> + '_ {
        self.dist
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.map(|d| (NodeId(i as u32), d)))
    }

    /// The **binding** in-edge of `node`: the constraint whose
    /// inequality `σ(node) ≥ σ(from) + w` holds with equality under
    /// these distances — the edge that pins the node's start time.
    ///
    /// Ties (several simultaneously tight in-edges) break toward the
    /// smallest [`EdgeId`], so the answer is deterministic. Returns
    /// `None` for the source itself, for unreachable nodes, and for
    /// nodes with no tight in-edge.
    pub fn binding_edge(&self, graph: &ConstraintGraph, node: NodeId) -> Option<EdgeId> {
        if node == self.source {
            return None;
        }
        binding_in_edge(graph, node, |n| self.distance(n))
    }
}

/// The in-edge of `node` that is *tight* under an arbitrary start-time
/// assignment: the smallest-id edge `(u → node, w)` with
/// `value(u) + w == value(node)`.
///
/// For [`LongestPaths`] distances this is the binding predecessor of
/// the longest-path computation (see [`LongestPaths::binding_edge`]);
/// for a committed schedule it identifies which recorded constraint
/// pins the task where it is. Returns `None` when `node` has no value
/// or sits strictly above every in-edge bound (e.g. held there by a
/// non-timing decision).
pub fn binding_in_edge<F>(graph: &ConstraintGraph, node: NodeId, value: F) -> Option<EdgeId>
where
    F: Fn(NodeId) -> Option<TimeSpan>,
{
    let dn = value(node)?;
    graph
        .in_edges(node)
        .filter(|(_, e)| value(e.from()).map(|du| du + e.weight()) == Some(dn))
        .map(|(id, _)| id)
        .min()
}

/// A positive cycle found in the constraint graph: the timing
/// constraints along `nodes` are mutually unsatisfiable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PositiveCycle {
    /// The nodes on the cycle, in traversal order.
    pub nodes: Vec<NodeId>,
    /// Total weight of the cycle (strictly positive).
    pub total_weight: TimeSpan,
}

impl core::fmt::Display for PositiveCycle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "positive cycle of weight {} through {} nodes",
            self.total_weight,
            self.nodes.len()
        )
    }
}

impl std::error::Error for PositiveCycle {}

/// Computes single-source longest paths from `source` over all edges of
/// `graph`, using a worklist (SPFA-style) relaxation.
///
/// # Errors
/// Returns the offending [`PositiveCycle`] when the constraints are
/// unsatisfiable.
///
/// # Examples
/// ```
/// use pas_graph::{ConstraintGraph, NodeId, Resource, ResourceKind, Task};
/// use pas_graph::units::{Power, TimeSpan};
/// use pas_graph::longest_path::single_source_longest_paths;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = ConstraintGraph::new();
/// let r = g.add_resource(Resource::new("R", ResourceKind::Compute));
/// let a = g.add_task(Task::new("a", r, TimeSpan::from_secs(2), Power::ZERO));
/// let b = g.add_task(Task::new("b", r, TimeSpan::from_secs(1), Power::ZERO));
/// g.precedence(a, b);
/// let lp = single_source_longest_paths(&g, NodeId::ANCHOR)?;
/// assert_eq!(lp.start_time(b).as_secs(), 2);
/// # Ok(())
/// # }
/// ```
pub fn single_source_longest_paths(
    graph: &ConstraintGraph,
    source: NodeId,
) -> Result<LongestPaths, PositiveCycle> {
    let n = graph.num_nodes();
    let mut dist: Vec<Option<TimeSpan>> = vec![None; n];
    let mut pred: Vec<Option<NodeId>> = vec![None; n];
    // Edge count of the longest path found so far: a simple path has
    // at most n−1 edges, so reaching n proves a positive cycle.
    let mut hops: Vec<u32> = vec![0; n];
    let mut in_queue: Vec<bool> = vec![false; n];
    let mut queue: std::collections::VecDeque<NodeId> = std::collections::VecDeque::new();

    dist[source.index()] = Some(TimeSpan::ZERO);
    queue.push_back(source);
    in_queue[source.index()] = true;

    while let Some(u) = queue.pop_front() {
        in_queue[u.index()] = false;
        let du = dist[u.index()].expect("queued nodes have distances");
        for (_, e) in graph.out_edges(u) {
            let v = e.to();
            let cand = du + e.weight();
            let improved = match dist[v.index()] {
                None => true,
                Some(dv) => cand > dv,
            };
            if improved {
                dist[v.index()] = Some(cand);
                pred[v.index()] = Some(u);
                hops[v.index()] = hops[u.index()] + 1;
                if hops[v.index()] as usize >= n {
                    // Confirm and extract through the reference
                    // implementation (whose predecessor forest is
                    // consistent at detection time).
                    return bellman_ford_reference(graph, source);
                }
                if !in_queue[v.index()] {
                    queue.push_back(v);
                    in_queue[v.index()] = true;
                }
            }
        }
    }

    Ok(LongestPaths { source, dist })
}

/// Textbook Bellman–Ford longest paths: |V|−1 full relaxation passes,
/// then one detection pass. Independent oracle for tests.
///
/// # Errors
/// Returns the offending [`PositiveCycle`] when the constraints are
/// unsatisfiable.
pub fn bellman_ford_reference(
    graph: &ConstraintGraph,
    source: NodeId,
) -> Result<LongestPaths, PositiveCycle> {
    let n = graph.num_nodes();
    let mut dist: Vec<Option<TimeSpan>> = vec![None; n];
    let mut pred: Vec<Option<NodeId>> = vec![None; n];
    dist[source.index()] = Some(TimeSpan::ZERO);

    for _ in 0..n.saturating_sub(1) {
        let mut changed = false;
        for (_, e) in graph.edges() {
            if let Some(du) = dist[e.from().index()] {
                let cand = du + e.weight();
                let improved = match dist[e.to().index()] {
                    None => true,
                    Some(dv) => cand > dv,
                };
                if improved {
                    dist[e.to().index()] = Some(cand);
                    pred[e.to().index()] = Some(e.from());
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    for (_, e) in graph.edges() {
        if let Some(du) = dist[e.from().index()] {
            let cand = du + e.weight();
            if dist[e.to().index()].map_or(true, |dv| cand > dv) {
                pred[e.to().index()] = Some(e.from());
                return Err(extract_cycle(graph, &pred, e.to()));
            }
        }
    }

    Ok(LongestPaths { source, dist })
}

/// Walks predecessor pointers from `start` until a node repeats, then
/// collects the cycle and its total weight.
fn extract_cycle(graph: &ConstraintGraph, pred: &[Option<NodeId>], start: NodeId) -> PositiveCycle {
    // Walk the predecessor chain with a visited set; the first
    // revisited node lies on the cycle.
    let mut order: Vec<NodeId> = Vec::new();
    let mut seen = vec![false; graph.num_nodes()];
    let mut cur = start;
    let on_cycle = loop {
        if seen[cur.index()] {
            break cur;
        }
        seen[cur.index()] = true;
        order.push(cur);
        match pred[cur.index()] {
            Some(p) => cur = p,
            // Defensive: the chain ended at the source without a
            // repeat. Report a degenerate single-node cycle rather
            // than panicking; callers only need an infeasibility
            // witness.
            None => break *order.last().expect("walked at least one node"),
        }
    };
    let cycle_start = order
        .iter()
        .position(|&n| n == on_cycle)
        .expect("revisited node was recorded");
    let mut nodes: Vec<NodeId> = order[cycle_start..].to_vec();
    // `order` follows pred pointers (reverse edge direction): flip it
    // so `nodes` lists the cycle along edge direction.
    nodes.reverse();

    // Total weight: sum the maximum-weight edge between consecutive
    // cycle nodes (the relaxation used some edge between them; taking
    // the max keeps the sum an upper bound that is still positive).
    let mut total = TimeSpan::ZERO;
    for i in 0..nodes.len() {
        let u = nodes[i];
        let v = nodes[(i + 1) % nodes.len()];
        let w = graph
            .out_edges(u)
            .filter(|(_, e)| e.to() == v)
            .map(|(_, e)| e.weight())
            .max()
            .unwrap_or(TimeSpan::ZERO);
        total += w;
    }
    PositiveCycle {
        nodes,
        total_weight: total,
    }
}

/// Convenience: earliest start times for every task from the anchor.
///
/// # Errors
/// Returns the offending [`PositiveCycle`] when the constraints are
/// unsatisfiable.
pub fn earliest_start_times(graph: &ConstraintGraph) -> Result<Vec<(TaskId, Time)>, PositiveCycle> {
    let lp = single_source_longest_paths(graph, NodeId::ANCHOR)?;
    Ok(graph.task_ids().map(|t| (t, lp.start_time(t))).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Resource, ResourceKind, Task};
    use crate::units::Power;

    fn chain(n: usize) -> (ConstraintGraph, Vec<TaskId>) {
        let mut g = ConstraintGraph::new();
        let r = g.add_resource(Resource::new("R", ResourceKind::Compute));
        let ids: Vec<_> = (0..n)
            .map(|i| {
                g.add_task(Task::new(
                    format!("t{i}"),
                    r,
                    TimeSpan::from_secs(3),
                    Power::ZERO,
                ))
            })
            .collect();
        for w in ids.windows(2) {
            g.precedence(w[0], w[1]);
        }
        (g, ids)
    }

    #[test]
    fn chain_start_times_accumulate_delays() {
        let (g, ids) = chain(5);
        let lp = single_source_longest_paths(&g, NodeId::ANCHOR).unwrap();
        for (i, &t) in ids.iter().enumerate() {
            assert_eq!(lp.start_time(t).as_secs(), 3 * i as i64);
        }
    }

    #[test]
    fn max_separation_does_not_move_asap_times() {
        let (mut g, ids) = chain(3);
        // t2 at most 100 s after t0: satisfied by ASAP times already.
        g.max_separation(ids[0], ids[2], TimeSpan::from_secs(100));
        let lp = single_source_longest_paths(&g, NodeId::ANCHOR).unwrap();
        assert_eq!(lp.start_time(ids[2]).as_secs(), 6);
    }

    #[test]
    fn infeasible_min_max_pair_is_positive_cycle() {
        let (mut g, ids) = chain(2);
        // t1 ≥ t0 + 3 (precedence) but also t1 ≤ t0 + 2 → positive cycle.
        g.max_separation(ids[0], ids[1], TimeSpan::from_secs(2));
        let err = single_source_longest_paths(&g, NodeId::ANCHOR).unwrap_err();
        assert!(err.total_weight.is_positive(), "cycle weight {err:?}");
        assert!(err.nodes.len() >= 2);
    }

    #[test]
    fn reference_and_spfa_agree_on_feasible_graph() {
        let (mut g, ids) = chain(6);
        g.min_separation(ids[0], ids[4], TimeSpan::from_secs(20));
        g.max_separation(ids[1], ids[5], TimeSpan::from_secs(90));
        let a = single_source_longest_paths(&g, NodeId::ANCHOR).unwrap();
        let b = bellman_ford_reference(&g, NodeId::ANCHOR).unwrap();
        for t in g.task_ids() {
            assert_eq!(a.start_time(t), b.start_time(t));
        }
    }

    #[test]
    fn reference_also_detects_positive_cycle() {
        let (mut g, ids) = chain(2);
        g.max_separation(ids[0], ids[1], TimeSpan::from_secs(1));
        assert!(bellman_ford_reference(&g, NodeId::ANCHOR).is_err());
    }

    #[test]
    fn release_edge_pushes_start_time() {
        let (mut g, ids) = chain(2);
        g.release(ids[0], Time::from_secs(10));
        let lp = single_source_longest_paths(&g, NodeId::ANCHOR).unwrap();
        assert_eq!(lp.start_time(ids[0]).as_secs(), 10);
        assert_eq!(lp.start_time(ids[1]).as_secs(), 13);
    }

    #[test]
    fn lock_pins_start_time_and_conflicting_lock_cycles() {
        let (mut g, ids) = chain(2);
        g.lock(ids[1], Time::from_secs(5));
        let lp = single_source_longest_paths(&g, NodeId::ANCHOR).unwrap();
        assert_eq!(lp.start_time(ids[1]).as_secs(), 5);
        // Now force t1 later than its lock allows → infeasible.
        let mark = g.mark();
        g.release(ids[1], Time::from_secs(6));
        assert!(single_source_longest_paths(&g, NodeId::ANCHOR).is_err());
        g.undo_to(mark);
        assert!(single_source_longest_paths(&g, NodeId::ANCHOR).is_ok());
    }

    #[test]
    fn earliest_start_times_lists_all_tasks() {
        let (g, ids) = chain(4);
        let est = earliest_start_times(&g).unwrap();
        assert_eq!(est.len(), ids.len());
        assert_eq!(est[3].1.as_secs(), 9);
    }

    #[test]
    fn binding_edge_names_the_tight_constraint() {
        let (mut g, ids) = chain(3);
        // A slack max window (t2 ≤ t0 + 100) is never tight.
        g.max_separation(ids[0], ids[2], TimeSpan::from_secs(100));
        let lp = single_source_longest_paths(&g, NodeId::ANCHOR).unwrap();

        // t0 is pinned by its automatic anchor release edge.
        let e0 = lp.binding_edge(&g, ids[0].node()).unwrap();
        assert!(g.edge(e0).from().is_anchor());

        // t1 and t2 are pinned by the precedence chain.
        for w in ids.windows(2) {
            let e = lp.binding_edge(&g, w[1].node()).unwrap();
            assert_eq!(g.edge(e).from(), w[0].node());
            assert_eq!(
                lp.distance(w[0].node()).unwrap() + g.edge(e).weight(),
                lp.distance(w[1].node()).unwrap()
            );
        }

        // The source has no binding edge.
        assert_eq!(lp.binding_edge(&g, NodeId::ANCHOR), None);
    }

    #[test]
    fn binding_in_edge_follows_the_assignment_not_the_graph() {
        let (g, ids) = chain(2);
        // Under ASAP times the precedence is tight...
        let asap = |n: NodeId| {
            Some(if n == ids[1].node() {
                TimeSpan::from_secs(3)
            } else {
                TimeSpan::ZERO
            })
        };
        let e = binding_in_edge(&g, ids[1].node(), asap).unwrap();
        assert_eq!(g.edge(e).from(), ids[0].node());
        // ...but a start time above every bound has no binding edge.
        let held = |n: NodeId| {
            Some(if n == ids[1].node() {
                TimeSpan::from_secs(42)
            } else {
                TimeSpan::ZERO
            })
        };
        assert_eq!(binding_in_edge(&g, ids[1].node(), held), None);
    }

    #[test]
    fn unreachable_source_yields_isolated_distances() {
        let (g, ids) = chain(2);
        // From a task node, the anchor is unreachable (only release
        // edges point away from the anchor).
        let lp = single_source_longest_paths(&g, ids[1].node()).unwrap();
        assert_eq!(lp.distance(NodeId::ANCHOR), None);
        assert_eq!(lp.distance(ids[1].node()), Some(TimeSpan::ZERO));
    }
}
