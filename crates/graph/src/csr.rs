//! Frozen CSR adjacency and a dense bitset for search hot paths
//! (DESIGN.md §15).
//!
//! [`ConstraintGraph`] stores adjacency as per-node `Vec<EdgeId>`
//! indirection into the edge arena — ideal for journaled mutation,
//! hostile to a branch-and-bound inner loop that walks the same
//! in-edge lists millions of times: every edge visit chases two
//! pointers into unrelated heap blocks.
//!
//! [`CsrAdjacency`] is a one-shot snapshot of that adjacency in
//! compressed-sparse-row form: one contiguous entry slab per
//! direction plus `n + 1` offsets, so a node's in- or out-edges are a
//! contiguous `&[CsrEntry]` slice. Entry order within a node is
//! exactly the [`ConstraintGraph::in_edges`] /
//! [`ConstraintGraph::out_edges`] iteration order, so traversals that
//! switch to the snapshot observe the same edge sequence (and
//! therefore make bit-identical decisions).
//!
//! The snapshot is immutable by design: the exact search never
//! mutates the graph (it assigns start times in a side array), and
//! the backtracking schedulers only add *release/serialization/lock*
//! edges they later undo — callers that mutate must rebuild or
//! consult the live graph for the mutated part.

use crate::graph::ConstraintGraph;
use crate::id::NodeId;
use crate::units::TimeSpan;
use crate::EdgeKind;

/// One adjacency entry: the far endpoint plus the edge payload.
///
/// For an in-edge of `v`, `other` is the source `u` of
/// `σ(v) ≥ σ(u) + weight`; for an out-edge of `u` it is the target
/// `v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsrEntry {
    /// The far endpoint of the edge.
    pub other: NodeId,
    /// Weight `w` of the inequality `σ(v) ≥ σ(u) + w`.
    pub weight: TimeSpan,
    /// Why the edge exists (see [`EdgeKind`]).
    pub kind: EdgeKind,
}

impl CsrEntry {
    /// Mirrors [`crate::Edge::is_precedence`]: a forward,
    /// non-negative-weight constraint rather than a reversed
    /// max-separation bound.
    #[inline]
    pub fn is_precedence(&self) -> bool {
        !self.weight.is_negative() && !matches!(self.kind, EdgeKind::MaxSeparation)
    }
}

/// Compressed-sparse-row snapshot of a [`ConstraintGraph`]'s
/// adjacency, both directions.
///
/// # Examples
/// ```
/// use pas_graph::csr::CsrAdjacency;
/// use pas_graph::units::{Power, TimeSpan};
/// use pas_graph::{ConstraintGraph, Resource, ResourceKind, Task};
///
/// let mut g = ConstraintGraph::new();
/// let r = g.add_resource(Resource::new("R", ResourceKind::Compute));
/// let a = g.add_task(Task::new("a", r, TimeSpan::from_secs(2), Power::ZERO));
/// let b = g.add_task(Task::new("b", r, TimeSpan::from_secs(3), Power::ZERO));
/// g.precedence(a, b);
///
/// let csr = CsrAdjacency::build(&g);
/// // b's in-edges: the implicit anchor release plus a → b.
/// let ins: Vec<_> = csr.in_edges(b.node()).iter().map(|e| e.other).collect();
/// assert_eq!(ins, vec![pas_graph::NodeId::ANCHOR, a.node()]);
/// ```
#[derive(Debug, Clone)]
pub struct CsrAdjacency {
    in_off: Vec<u32>,
    in_entries: Vec<CsrEntry>,
    out_off: Vec<u32>,
    out_entries: Vec<CsrEntry>,
}

impl CsrAdjacency {
    /// Snapshots `graph`'s adjacency. `O(V + E)`.
    pub fn build(graph: &ConstraintGraph) -> Self {
        let nodes = graph.num_tasks() + 1;
        let node_ids = (0..nodes).map(|i| NodeId(i as u32));

        let mut in_off = Vec::with_capacity(nodes + 1);
        let mut in_entries = Vec::with_capacity(graph.num_edges());
        in_off.push(0);
        for node in node_ids.clone() {
            for (_, e) in graph.in_edges(node) {
                in_entries.push(CsrEntry {
                    other: e.from(),
                    weight: e.weight(),
                    kind: e.kind(),
                });
            }
            in_off.push(in_entries.len() as u32);
        }

        let mut out_off = Vec::with_capacity(nodes + 1);
        let mut out_entries = Vec::with_capacity(graph.num_edges());
        out_off.push(0);
        for node in node_ids {
            for (_, e) in graph.out_edges(node) {
                out_entries.push(CsrEntry {
                    other: e.to(),
                    weight: e.weight(),
                    kind: e.kind(),
                });
            }
            out_off.push(out_entries.len() as u32);
        }

        CsrAdjacency {
            in_off,
            in_entries,
            out_off,
            out_entries,
        }
    }

    /// The number of nodes covered (tasks plus the anchor).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.in_off.len() - 1
    }

    /// In-edges of `node`, in [`ConstraintGraph::in_edges`] order;
    /// each entry's `other` is the edge source.
    #[inline]
    pub fn in_edges(&self, node: NodeId) -> &[CsrEntry] {
        let i = node.index();
        &self.in_entries[self.in_off[i] as usize..self.in_off[i + 1] as usize]
    }

    /// Out-edges of `node`, in [`ConstraintGraph::out_edges`] order;
    /// each entry's `other` is the edge target.
    #[inline]
    pub fn out_edges(&self, node: NodeId) -> &[CsrEntry] {
        let i = node.index();
        &self.out_entries[self.out_off[i] as usize..self.out_off[i + 1] as usize]
    }
}

/// A fixed-capacity dense bitset over `0..len`, one `u64` word per 64
/// indices.
///
/// [`ones`](Self::ones) iterates set indices in ascending order, so a
/// frontier kept in a `FixedBitset` reproduces the id-ascending task
/// scan order the searches previously got from
/// `for v in graph.task_ids()` — a layout change, not an order
/// change.
///
/// # Examples
/// ```
/// use pas_graph::csr::FixedBitset;
/// let mut s = FixedBitset::new(130);
/// s.insert(3);
/// s.insert(129);
/// s.insert(64);
/// assert!(s.contains(64));
/// assert_eq!(s.ones().collect::<Vec<_>>(), vec![3, 64, 129]);
/// s.remove(64);
/// assert_eq!(s.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedBitset {
    words: Vec<u64>,
    universe: usize,
    ones: usize,
}

impl FixedBitset {
    /// An empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        FixedBitset {
            words: vec![0; len.div_ceil(64)],
            universe: len,
            ones: 0,
        }
    }

    /// The universe size this set was created with.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.universe
    }

    /// The number of set indices.
    #[inline]
    pub fn len(&self) -> usize {
        self.ones
    }

    /// `true` when no index is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ones == 0
    }

    /// `true` when `i` is set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.universe);
        self.words[i >> 6] & (1u64 << (i & 63)) != 0
    }

    /// Sets `i`; returns `true` when it was newly inserted.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.universe);
        let word = &mut self.words[i >> 6];
        let mask = 1u64 << (i & 63);
        let fresh = *word & mask == 0;
        *word |= mask;
        // Deliberately branchy: this toolchain's optimizer drops the
        // increment when written as `self.ones += fresh as usize`
        // (and as `usize::from(fresh)`) — see the release-mode unit
        // test below, which pins the counter against exactly that.
        if fresh {
            self.ones += 1;
        }
        fresh
    }

    /// Clears `i`; returns `true` when it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.universe);
        let word = &mut self.words[i >> 6];
        let mask = 1u64 << (i & 63);
        let present = *word & mask != 0;
        *word &= !mask;
        if present {
            self.ones -= 1;
        }
        present
    }

    /// Clears every index.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.ones = 0;
    }

    /// Iterates the set indices in ascending order.
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            current: self.words.first().copied().unwrap_or(0),
            word_idx: 0,
        }
    }
}

/// Ascending-index iterator over a [`FixedBitset`]'s set bits.
#[derive(Debug, Clone)]
pub struct Ones<'a> {
    words: &'a [u64],
    current: u64,
    word_idx: usize,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            self.current = *self.words.get(self.word_idx)?;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some((self.word_idx << 6) | bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Resource, ResourceKind, Task};
    use crate::units::Power;

    fn diamond() -> (ConstraintGraph, Vec<crate::TaskId>) {
        let mut g = ConstraintGraph::new();
        let r = g.add_resource(Resource::new("R", ResourceKind::Compute));
        let ids: Vec<_> = (0..4)
            .map(|i| {
                g.add_task(Task::new(
                    format!("t{i}"),
                    r,
                    TimeSpan::from_secs(2 + i),
                    Power::from_watts(1),
                ))
            })
            .collect();
        g.precedence(ids[0], ids[1]);
        g.precedence(ids[0], ids[2]);
        g.precedence(ids[1], ids[3]);
        g.precedence(ids[2], ids[3]);
        g.max_separation(ids[1], ids[2], TimeSpan::from_secs(9));
        (g, ids)
    }

    #[test]
    fn csr_matches_live_adjacency_in_content_and_order() {
        let (g, _) = diamond();
        let csr = CsrAdjacency::build(&g);
        assert_eq!(csr.num_nodes(), g.num_tasks() + 1);
        for i in 0..csr.num_nodes() {
            let node = NodeId(i as u32);
            let live_in: Vec<_> = g
                .in_edges(node)
                .map(|(_, e)| (e.from(), e.weight(), e.kind()))
                .collect();
            let snap_in: Vec<_> = csr
                .in_edges(node)
                .iter()
                .map(|e| (e.other, e.weight, e.kind))
                .collect();
            assert_eq!(live_in, snap_in, "in-edges of {node}");
            let live_out: Vec<_> = g
                .out_edges(node)
                .map(|(_, e)| (e.to(), e.weight(), e.kind()))
                .collect();
            let snap_out: Vec<_> = csr
                .out_edges(node)
                .iter()
                .map(|e| (e.other, e.weight, e.kind))
                .collect();
            assert_eq!(live_out, snap_out, "out-edges of {node}");
        }
    }

    #[test]
    fn csr_entry_precedence_matches_edge() {
        let (g, ids) = diamond();
        let csr = CsrAdjacency::build(&g);
        let live: Vec<bool> = g
            .in_edges(ids[2].node())
            .map(|(_, e)| e.is_precedence())
            .collect();
        let snap: Vec<bool> = csr
            .in_edges(ids[2].node())
            .iter()
            .map(CsrEntry::is_precedence)
            .collect();
        assert_eq!(live, snap);
        // The diamond's max separation shows up as a non-precedence
        // in-edge somewhere.
        assert!(csr
            .in_edges(ids[1].node())
            .iter()
            .any(|e| !e.is_precedence()));
    }

    #[test]
    fn bitset_round_trip_and_order() {
        let mut s = FixedBitset::new(200);
        assert!(s.is_empty());
        for i in [199, 0, 63, 64, 65, 127, 128, 5] {
            assert!(s.insert(i));
        }
        assert!(!s.insert(64), "double insert reports not-fresh");
        assert_eq!(s.len(), 8);
        assert_eq!(
            s.ones().collect::<Vec<_>>(),
            vec![0, 5, 63, 64, 65, 127, 128, 199]
        );
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert_eq!(s.len(), 7);
        assert!(!s.contains(63));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.ones().count(), 0);
    }

    #[test]
    fn bitset_empty_universe() {
        let s = FixedBitset::new(0);
        assert_eq!(s.capacity(), 0);
        assert_eq!(s.ones().count(), 0);
    }
}
