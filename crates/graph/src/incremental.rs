//! Incremental single-source longest paths.
//!
//! The backtracking schedulers perturb the constraint graph one edge
//! (or one small batch of edges) at a time: a speculative
//! serialization edge, a release edge delaying a victim, a lock pair.
//! Recomputing [`single_source_longest_paths`] from scratch after each
//! perturbation is O(V·E) work for what is usually a local change.
//! [`IncrementalLongestPaths`] instead keeps the distance vector alive
//! and, on [`refresh`], re-relaxes only from the edges appended to the
//! journal since the last call.
//!
//! # Invariants
//!
//! * After a successful [`refresh`], the maintained distances are
//!   **identical** to what [`single_source_longest_paths`] would
//!   return on the same graph — longest-path distances are unique, so
//!   the delta path and the full path cannot disagree. The property
//!   tests drive random edit sequences against
//!   [`crate::longest_path::bellman_ford_reference`] to pin this.
//! * Edge *additions* only ever increase distances, so seeding the
//!   worklist with the endpoints of the new edges reaches every node
//!   whose distance can change.
//! * The per-node hop counters persist across refreshes and always
//!   record the edge count of the path witnessing the current
//!   distance; a counter reaching |V| therefore still proves a
//!   positive cycle, exactly as in the from-scratch SPFA.
//!
//! # Fallback conditions
//!
//! [`refresh`] transparently falls back to a full recomputation (and
//! reports it in the returned [`Refresh`]) when the delta path is not
//! applicable or not worthwhile:
//!
//! * `"init"` — first call, or never successfully computed;
//! * `"resize"` — tasks were added since the last refresh;
//! * `"removal"` — the edge journal shrank or diverged under the
//!   applied prefix (an undo without a paired [`restore`]);
//! * `"cycle-suspect"` — a hop counter reached |V| while relaxing the
//!   delta, so the update is handed to the full SPFA for canonical
//!   positive-cycle extraction;
//! * `"budget"` — the delta relaxation exceeded its operation budget,
//!   so a fresh computation is at least as cheap.
//!
//! Because [`refresh`] validates the applied journal prefix against
//! the live graph before trusting its cache, a caller that undoes the
//! graph without restoring the checkpoint gets a (slow) full
//! recomputation, never a wrong answer.
//!
//! [`refresh`]: IncrementalLongestPaths::refresh
//! [`restore`]: IncrementalLongestPaths::restore

use crate::graph::ConstraintGraph;
use crate::id::{NodeId, TaskId};
use crate::longest_path::{single_source_longest_paths, LongestPaths, PositiveCycle};
use crate::units::{Time, TimeSpan};

/// Why a [`refresh`] could not apply (or chose not to apply) the delta
/// path. The string form is the fixed vocabulary used by trace events.
///
/// [`refresh`]: IncrementalLongestPaths::refresh
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FullReason {
    /// First computation (nothing cached yet).
    Init,
    /// The node count changed since the last refresh.
    Resize,
    /// The edge journal shrank or diverged under the applied prefix.
    Removal,
    /// A hop counter reached |V| during delta relaxation.
    CycleSuspect,
    /// The delta relaxation exceeded its operation budget.
    Budget,
}

impl FullReason {
    /// Fixed-vocabulary string form (used in trace events).
    pub fn as_str(self) -> &'static str {
        match self {
            FullReason::Init => "init",
            FullReason::Resize => "resize",
            FullReason::Removal => "removal",
            FullReason::CycleSuspect => "cycle-suspect",
            FullReason::Budget => "budget",
        }
    }

    /// Parses the string form back; inverse of [`FullReason::as_str`].
    pub fn from_str_opt(s: &str) -> Option<Self> {
        Some(match s {
            "init" => FullReason::Init,
            "resize" => FullReason::Resize,
            "removal" => FullReason::Removal,
            "cycle-suspect" => FullReason::CycleSuspect,
            "budget" => FullReason::Budget,
            _ => return None,
        })
    }
}

impl core::fmt::Display for FullReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a [`refresh`](IncrementalLongestPaths::refresh) satisfied its
/// caller. A closed set: callers match on it to translate refresh
/// outcomes into trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Refresh {
    /// The journal was unchanged: the cached distances were served.
    CacheHit,
    /// Only the appended edges were relaxed.
    Delta {
        /// Number of journal edges applied by this refresh.
        new_edges: usize,
        /// Number of distance improvements performed.
        relaxations: u64,
    },
    /// A full from-scratch recomputation ran.
    Full(FullReason),
}

/// Running counters, exposed for benches and the property tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Refreshes answered from cache without any relaxation.
    pub cache_hits: u64,
    /// Refreshes that applied only the journal suffix.
    pub delta_refreshes: u64,
    /// Refreshes that fell back to the full SPFA.
    pub full_recomputes: u64,
    /// Total distance improvements across all delta refreshes.
    pub relaxations: u64,
    /// Checkpoint restores.
    pub restores: u64,
}

/// A saved distance state, created by
/// [`IncrementalLongestPaths::checkpoint`] and consumed by
/// [`IncrementalLongestPaths::restore`].
///
/// Like [`GraphMark`](crate::GraphMark), checkpoints follow the LIFO
/// discipline of the edge journal: restore a checkpoint only in a
/// state whose journal prefix below the checkpoint is unchanged
/// (i.e. paired with the matching
/// [`undo_to`](crate::ConstraintGraph::undo_to)).
#[derive(Debug, Clone)]
pub struct LpCheckpoint {
    applied_len: usize,
    dist: Vec<Option<TimeSpan>>,
    hops: Vec<u32>,
    feasible: bool,
    cycle: Option<PositiveCycle>,
    initialized: bool,
}

/// Longest distances from a fixed source, maintained incrementally
/// under journal-append edge insertions, with checkpoint/restore for
/// backtracking and a transparent fallback to
/// [`single_source_longest_paths`].
///
/// # Examples
/// ```
/// use pas_graph::incremental::{IncrementalLongestPaths, Refresh};
/// use pas_graph::units::{Power, TimeSpan};
/// use pas_graph::{ConstraintGraph, NodeId, Resource, ResourceKind, Task};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = ConstraintGraph::new();
/// let r = g.add_resource(Resource::new("R", ResourceKind::Compute));
/// let a = g.add_task(Task::new("a", r, TimeSpan::from_secs(2), Power::ZERO));
/// let b = g.add_task(Task::new("b", r, TimeSpan::from_secs(1), Power::ZERO));
///
/// let mut inc = IncrementalLongestPaths::new(NodeId::ANCHOR);
/// inc.refresh(&g)?; // full (first call)
/// assert_eq!(inc.start_time(b).as_secs(), 0);
///
/// g.precedence(a, b);
/// assert!(matches!(inc.refresh(&g)?, Refresh::Delta { .. }));
/// assert_eq!(inc.start_time(b).as_secs(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalLongestPaths {
    source: NodeId,
    dist: Vec<Option<TimeSpan>>,
    hops: Vec<u32>,
    /// Copy of the journal prefix the cached distances were computed
    /// from; validated against the live graph on every refresh.
    applied: Vec<crate::edge::Edge>,
    feasible: bool,
    cycle: Option<PositiveCycle>,
    initialized: bool,
    stats: IncrementalStats,
}

impl IncrementalLongestPaths {
    /// Creates an empty engine; the first
    /// [`refresh`](Self::refresh) performs the initial full
    /// computation.
    pub fn new(source: NodeId) -> Self {
        IncrementalLongestPaths {
            source,
            dist: Vec::new(),
            hops: Vec::new(),
            applied: Vec::new(),
            feasible: false,
            cycle: None,
            initialized: false,
            stats: IncrementalStats::default(),
        }
    }

    /// The source node distances are maintained from.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Running counters.
    #[inline]
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Brings the cached distances up to date with `graph` and reports
    /// how much work that took.
    ///
    /// # Errors
    /// Returns the offending [`PositiveCycle`] when the constraints
    /// are unsatisfiable (identical to what the full recomputation
    /// reports on the same graph).
    pub fn refresh(&mut self, graph: &ConstraintGraph) -> Result<Refresh, PositiveCycle> {
        let n = graph.num_nodes();
        if !self.initialized {
            return self.full(graph, FullReason::Init);
        }
        if self.dist.len() != n {
            return self.full(graph, FullReason::Resize);
        }
        // Validate that what we applied is still a prefix of the live
        // journal; a plain length check is not enough because an undo
        // followed by different additions can restore the old length.
        if graph.num_edges() < self.applied.len()
            || graph
                .edges()
                .zip(self.applied.iter())
                .any(|((_, live), applied)| live != applied)
        {
            return self.full(graph, FullReason::Removal);
        }
        if graph.num_edges() == self.applied.len() {
            self.stats.cache_hits += 1;
            return match &self.cycle {
                None => Ok(Refresh::CacheHit),
                Some(c) => Err(c.clone()),
            };
        }
        if !self.feasible {
            // Adding edges cannot repair a positive cycle, but the
            // cached distances are stale; recompute so the reported
            // cycle matches what the full path would find.
            return self.full(graph, FullReason::Init);
        }

        // Delta path: relax only from the appended journal suffix.
        let first_new = self.applied.len();
        let new_edges = graph.num_edges() - first_new;
        // Beyond this many improvements a fresh SPFA is at least as
        // cheap; generous enough that genuine local deltas never hit
        // it.
        let budget: u64 = 64 + 16 * graph.num_edges() as u64;
        let mut relaxations: u64 = 0;
        let mut in_queue = vec![false; n];
        let mut queue: std::collections::VecDeque<NodeId> = std::collections::VecDeque::new();

        // Seed: relax each new edge once; its source distance is
        // already correct (or None and the edge is inert for now).
        for idx in first_new..graph.num_edges() {
            let e = *graph.edge(crate::id::EdgeId(idx as u32));
            if let Some(du) = self.dist[e.from().index()] {
                let cand = du + e.weight();
                let v = e.to();
                if self.dist[v.index()].map_or(true, |dv| cand > dv) {
                    self.dist[v.index()] = Some(cand);
                    self.hops[v.index()] = self.hops[e.from().index()] + 1;
                    relaxations += 1;
                    if self.hops[v.index()] as usize >= n {
                        return self.full(graph, FullReason::CycleSuspect);
                    }
                    if !in_queue[v.index()] {
                        queue.push_back(v);
                        in_queue[v.index()] = true;
                    }
                }
            }
        }

        while let Some(u) = queue.pop_front() {
            in_queue[u.index()] = false;
            let du = self.dist[u.index()].expect("queued nodes have distances");
            for (_, e) in graph.out_edges(u) {
                let v = e.to();
                let cand = du + e.weight();
                if self.dist[v.index()].map_or(true, |dv| cand > dv) {
                    self.dist[v.index()] = Some(cand);
                    self.hops[v.index()] = self.hops[u.index()] + 1;
                    relaxations += 1;
                    if self.hops[v.index()] as usize >= n {
                        return self.full(graph, FullReason::CycleSuspect);
                    }
                    if relaxations > budget {
                        return self.full(graph, FullReason::Budget);
                    }
                    if !in_queue[v.index()] {
                        queue.push_back(v);
                        in_queue[v.index()] = true;
                    }
                }
            }
        }

        self.applied
            .extend(graph.edges().skip(first_new).map(|(_, e)| *e));
        self.stats.delta_refreshes += 1;
        self.stats.relaxations += relaxations;
        Ok(Refresh::Delta {
            new_edges,
            relaxations,
        })
    }

    /// Full recomputation via [`single_source_longest_paths`],
    /// replacing the cached state.
    fn full(
        &mut self,
        graph: &ConstraintGraph,
        reason: FullReason,
    ) -> Result<Refresh, PositiveCycle> {
        self.stats.full_recomputes += 1;
        let n = graph.num_nodes();
        self.applied.clear();
        self.applied.extend(graph.edges().map(|(_, e)| *e));
        self.initialized = true;
        match single_source_longest_paths(graph, self.source) {
            Ok(lp) => {
                self.dist.clear();
                self.dist
                    .extend((0..n).map(|i| lp.distance(NodeId(i as u32))));
                // Recompute witness path lengths for the fresh
                // distances so later deltas can keep proving acyclicity:
                // a BFS-free upper bound is enough — re-derive hops by
                // one relaxation sweep that never changes distances.
                self.hops = rebuild_hops(graph, &self.dist, self.source);
                self.feasible = true;
                self.cycle = None;
                Ok(Refresh::Full(reason))
            }
            Err(cycle) => {
                self.feasible = false;
                self.cycle = Some(cycle.clone());
                Err(cycle)
            }
        }
    }

    /// Longest distance from the source to `node`, or `None` when
    /// unreachable.
    ///
    /// # Panics
    /// Panics if called before a successful
    /// [`refresh`](Self::refresh).
    #[inline]
    pub fn distance(&self, node: NodeId) -> Option<TimeSpan> {
        assert!(
            self.initialized && self.feasible,
            "distance() requires a successful refresh"
        );
        self.dist[node.index()]
    }

    /// Earliest start time of `task` (distance from the anchor).
    ///
    /// # Panics
    /// Panics if called before a successful
    /// [`refresh`](Self::refresh), or if the task is unreachable.
    #[inline]
    pub fn start_time(&self, task: TaskId) -> Time {
        let d = self
            .distance(task.node())
            .expect("task unreachable from source");
        Time::ZERO + d
    }

    /// Clones the cached distances into a standalone
    /// [`LongestPaths`] (bit-identical to what the full computation
    /// returns on the same graph).
    ///
    /// # Panics
    /// Panics if called before a successful
    /// [`refresh`](Self::refresh).
    pub fn to_longest_paths(&self) -> LongestPaths {
        assert!(
            self.initialized && self.feasible,
            "to_longest_paths() requires a successful refresh"
        );
        LongestPaths::from_parts(self.source, self.dist.clone())
    }

    /// Saves the current state; pair with [`restore`](Self::restore)
    /// around speculative edge additions.
    pub fn checkpoint(&self) -> LpCheckpoint {
        LpCheckpoint {
            applied_len: self.applied.len(),
            dist: self.dist.clone(),
            hops: self.hops.clone(),
            feasible: self.feasible,
            cycle: self.cycle.clone(),
            initialized: self.initialized,
        }
    }

    /// Restores a previously saved state. Must be paired with the
    /// [`ConstraintGraph::undo_to`] that pops the same edges (LIFO,
    /// like the journal itself).
    pub fn restore(&mut self, cp: &LpCheckpoint) {
        self.applied.truncate(cp.applied_len);
        self.dist.clone_from(&cp.dist);
        self.hops.clone_from(&cp.hops);
        self.feasible = cp.feasible;
        self.cycle.clone_from(&cp.cycle);
        self.initialized = cp.initialized;
        self.stats.restores += 1;
    }
}

/// Derives hop counters consistent with `dist`: for each node, the
/// edge count of some path from `source` achieving its distance.
///
/// Every prefix of a distance-optimal path is itself optimal, so every
/// reachable node is reachable through *tight* edges
/// (`dist[u] + w == dist[v]`). A BFS over the tight subgraph therefore
/// assigns each node the minimum witness length, which is a simple
/// path: always `< n` on a feasible graph.
fn rebuild_hops(graph: &ConstraintGraph, dist: &[Option<TimeSpan>], source: NodeId) -> Vec<u32> {
    let n = graph.num_nodes();
    let mut hops = vec![0u32; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    if dist[source.index()].is_some() {
        seen[source.index()] = true;
        queue.push_back(source);
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("BFS visits reachable nodes");
        for (_, e) in graph.out_edges(u) {
            let v = e.to();
            if seen[v.index()] {
                continue;
            }
            if dist[v.index()] == Some(du + e.weight()) {
                hops[v.index()] = hops[u.index()] + 1;
                seen[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    debug_assert!(
        (0..n).all(|i| dist[i].is_none() || seen[i]),
        "every reachable node has a tight-edge witness path"
    );
    hops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::longest_path::bellman_ford_reference;
    use crate::task::{Resource, ResourceKind, Task};
    use crate::units::Power;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_graph(seed: u64, n: usize) -> (ConstraintGraph, Vec<TaskId>) {
        let mut s = seed.max(1);
        let mut g = ConstraintGraph::new();
        let r = g.add_resource(Resource::new("R", ResourceKind::Compute));
        let ids: Vec<_> = (0..n)
            .map(|i| {
                let d = 1 + (xorshift(&mut s) % 7) as i64;
                g.add_task(Task::new(
                    format!("t{i}"),
                    r,
                    TimeSpan::from_secs(d),
                    Power::ZERO,
                ))
            })
            .collect();
        (g, ids)
    }

    fn assert_matches_oracle(inc: &IncrementalLongestPaths, g: &ConstraintGraph) {
        let oracle = bellman_ford_reference(g, NodeId::ANCHOR).expect("oracle feasible");
        for i in 0..g.num_nodes() {
            assert_eq!(
                inc.dist[i],
                oracle.distance(NodeId(i as u32)),
                "distance mismatch at node {i}"
            );
        }
        // Hop invariant: each counter is a valid path length (< n).
        for i in 0..g.num_nodes() {
            assert!((inc.hops[i] as usize) < g.num_nodes().max(1));
        }
    }

    #[test]
    fn first_refresh_is_full_then_cache_hits() {
        let (g, _) = random_graph(7, 5);
        let mut inc = IncrementalLongestPaths::new(NodeId::ANCHOR);
        assert_eq!(inc.refresh(&g).unwrap(), Refresh::Full(FullReason::Init));
        assert_eq!(inc.refresh(&g).unwrap(), Refresh::CacheHit);
        assert_eq!(inc.stats().cache_hits, 1);
        assert_matches_oracle(&inc, &g);
    }

    #[test]
    fn delta_matches_oracle_over_random_edit_sequences() {
        for seed in 0..40u64 {
            let n = 3 + (seed % 6) as usize;
            let (mut g, ids) = random_graph(seed * 77 + 1, n);
            let mut s = seed * 1337 + 11;
            let mut inc = IncrementalLongestPaths::new(NodeId::ANCHOR);
            inc.refresh(&g).unwrap();
            let mut marks = Vec::new();
            for _ in 0..60 {
                match xorshift(&mut s) % 6 {
                    // Append a random constraint edge.
                    0..=2 => {
                        let a = ids[(xorshift(&mut s) % n as u64) as usize];
                        let b = ids[(xorshift(&mut s) % n as u64) as usize];
                        if a == b {
                            continue;
                        }
                        let before = (inc.checkpoint(), g.mark());
                        match xorshift(&mut s) % 3 {
                            0 => {
                                g.min_separation(
                                    a,
                                    b,
                                    TimeSpan::from_secs((xorshift(&mut s) % 9) as i64),
                                );
                            }
                            1 => {
                                g.release(a, Time::from_secs((xorshift(&mut s) % 20) as i64));
                            }
                            _ => {
                                g.max_separation(
                                    a,
                                    b,
                                    TimeSpan::from_secs((xorshift(&mut s) % 25) as i64),
                                );
                            }
                        }
                        match inc.refresh(&g) {
                            Ok(_) => assert_matches_oracle(&inc, &g),
                            Err(_) => {
                                // Infeasible: the oracle must agree;
                                // roll back so the walk continues.
                                assert!(bellman_ford_reference(&g, NodeId::ANCHOR).is_err());
                                g.undo_to(before.1);
                                inc.restore(&before.0);
                                assert_matches_oracle(&inc, &g);
                            }
                        }
                    }
                    // Checkpoint.
                    3 => marks.push((inc.checkpoint(), g.mark())),
                    // Restore the newest checkpoint.
                    4 => {
                        if let Some((cp, m)) = marks.pop() {
                            g.undo_to(m);
                            inc.restore(&cp);
                            assert_matches_oracle(&inc, &g);
                        }
                    }
                    // Undo WITHOUT restore: the prefix check must
                    // force a full recompute, never a wrong answer.
                    _ => {
                        if let Some((_, m)) = marks.pop() {
                            g.undo_to(m);
                            marks.clear(); // older lp checkpoints stay valid, but keep the walk simple
                            let out = inc.refresh(&g).unwrap();
                            if g.num_edges() != inc.applied.len() {
                                unreachable!("refresh must sync the applied prefix");
                            }
                            if let Refresh::Delta { .. } = out {
                                panic!("undo without restore must not take the delta path");
                            }
                            assert_matches_oracle(&inc, &g);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn infeasible_delta_reports_cycle_and_caches_it() {
        let (mut g, ids) = random_graph(3, 3);
        let mut inc = IncrementalLongestPaths::new(NodeId::ANCHOR);
        inc.refresh(&g).unwrap();
        g.precedence(ids[0], ids[1]);
        inc.refresh(&g).unwrap();
        // Contradictory window: b ≥ a + d(a) but b ≤ a + 0.
        g.max_separation(ids[0], ids[1], TimeSpan::ZERO);
        let e1 = inc.refresh(&g).unwrap_err();
        // Unchanged graph: the cached cycle is served.
        let e2 = inc.refresh(&g).unwrap_err();
        assert_eq!(e1, e2);
        let full = single_source_longest_paths(&g, NodeId::ANCHOR).unwrap_err();
        assert_eq!(e1, full, "incremental error must match the full path");
    }

    #[test]
    fn checkpoint_restore_round_trips_across_infeasibility() {
        let (mut g, ids) = random_graph(5, 4);
        let mut inc = IncrementalLongestPaths::new(NodeId::ANCHOR);
        inc.refresh(&g).unwrap();
        let cp = inc.checkpoint();
        let m = g.mark();
        g.precedence(ids[0], ids[1]);
        g.max_separation(ids[0], ids[1], TimeSpan::ZERO);
        assert!(inc.refresh(&g).is_err());
        g.undo_to(m);
        inc.restore(&cp);
        assert_eq!(inc.refresh(&g).unwrap(), Refresh::CacheHit);
        assert_matches_oracle(&inc, &g);
    }

    #[test]
    fn resize_falls_back_to_full() {
        let (mut g, _) = random_graph(9, 3);
        let mut inc = IncrementalLongestPaths::new(NodeId::ANCHOR);
        inc.refresh(&g).unwrap();
        let r = g.add_resource(Resource::new("S", ResourceKind::Compute));
        g.add_task(Task::new("late", r, TimeSpan::from_secs(2), Power::ZERO));
        assert_eq!(inc.refresh(&g).unwrap(), Refresh::Full(FullReason::Resize));
        assert_matches_oracle(&inc, &g);
    }

    #[test]
    fn reason_vocab_round_trips() {
        for r in [
            FullReason::Init,
            FullReason::Resize,
            FullReason::Removal,
            FullReason::CycleSuspect,
            FullReason::Budget,
        ] {
            assert_eq!(FullReason::from_str_opt(r.as_str()), Some(r));
        }
        assert_eq!(FullReason::from_str_opt("nope"), None);
    }
}
