//! Topological utilities over the precedence subgraph.
//!
//! The timing scheduler traverses the graph "topologically" (Fig. 3):
//! only *precedence* edges (forward, non-negative weight — see
//! [`Edge::is_precedence`](crate::Edge::is_precedence)) define that
//! order; backward max-separation edges do not.

use crate::graph::ConstraintGraph;
use crate::id::{NodeId, TaskId};

/// Distinct precedence successors of `node` (targets of its precedence
/// out-edges), in first-seen order.
pub fn precedence_successors(graph: &ConstraintGraph, node: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; graph.num_nodes()];
    let mut result = Vec::new();
    for (_, e) in graph.out_edges(node) {
        if e.is_precedence() && !seen[e.to().index()] {
            seen[e.to().index()] = true;
            result.push(e.to());
        }
    }
    result
}

/// Distinct precedence predecessors of `node`.
pub fn precedence_predecessors(graph: &ConstraintGraph, node: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; graph.num_nodes()];
    let mut result = Vec::new();
    for (_, e) in graph.in_edges(node) {
        if e.is_precedence() && !seen[e.from().index()] {
            seen[e.from().index()] = true;
            result.push(e.from());
        }
    }
    result
}

/// A cycle among precedence edges (distinct from a *positive* cycle:
/// any precedence cycle with at least one strictly positive weight is
/// unsatisfiable, and a zero-weight one is degenerate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrecedenceCycle {
    /// Some subset of nodes involved in the cycle.
    pub nodes: Vec<NodeId>,
}

impl core::fmt::Display for PrecedenceCycle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "precedence cycle through {} nodes", self.nodes.len())
    }
}

impl std::error::Error for PrecedenceCycle {}

/// Kahn's algorithm over precedence edges, starting from the anchor.
///
/// Returns all nodes (anchor first) in a topological order of the
/// precedence subgraph.
///
/// # Errors
/// Returns the set of unordered nodes when the precedence subgraph is
/// cyclic.
pub fn topological_order(graph: &ConstraintGraph) -> Result<Vec<NodeId>, PrecedenceCycle> {
    let n = graph.num_nodes();
    let mut indegree = vec![0usize; n];
    for (_, e) in graph.edges() {
        if e.is_precedence() {
            indegree[e.to().index()] += 1;
        }
    }
    let mut queue: std::collections::VecDeque<NodeId> = (0..n)
        .filter(|&i| indegree[i] == 0)
        .map(|i| node_at(graph, i))
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for (_, e) in graph.out_edges(u) {
            if e.is_precedence() {
                let vi = e.to().index();
                indegree[vi] -= 1;
                if indegree[vi] == 0 {
                    queue.push_back(e.to());
                }
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        let nodes = (0..n)
            .filter(|&i| indegree[i] > 0)
            .map(|i| node_at(graph, i))
            .collect();
        Err(PrecedenceCycle { nodes })
    }
}

/// `true` when `to` is reachable from `from` along precedence edges.
pub fn reaches(graph: &ConstraintGraph, from: NodeId, to: NodeId) -> bool {
    if from == to {
        return true;
    }
    let mut visited = vec![false; graph.num_nodes()];
    let mut stack = vec![from];
    visited[from.index()] = true;
    while let Some(u) = stack.pop() {
        for (_, e) in graph.out_edges(u) {
            if !e.is_precedence() {
                continue;
            }
            let v = e.to();
            if v == to {
                return true;
            }
            if !visited[v.index()] {
                visited[v.index()] = true;
                stack.push(v);
            }
        }
    }
    false
}

/// `true` when serializing `before` ahead of `after` (adding the edge
/// `before → after`) cannot create a precedence cycle.
pub fn serialization_is_acyclic(graph: &ConstraintGraph, before: TaskId, after: TaskId) -> bool {
    !reaches(graph, after.node(), before.node())
}

fn node_at(graph: &ConstraintGraph, index: usize) -> NodeId {
    if index == 0 {
        NodeId::ANCHOR
    } else {
        let _ = graph;
        TaskId::from_index(index - 1).node()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Resource, ResourceKind, Task};
    use crate::units::{Power, TimeSpan};

    fn diamond() -> (ConstraintGraph, Vec<TaskId>) {
        // a → b, a → c, b → d, c → d
        let mut g = ConstraintGraph::new();
        let r0 = g.add_resource(Resource::new("R0", ResourceKind::Compute));
        let r1 = g.add_resource(Resource::new("R1", ResourceKind::Compute));
        let r2 = g.add_resource(Resource::new("R2", ResourceKind::Compute));
        let r3 = g.add_resource(Resource::new("R3", ResourceKind::Compute));
        let mk = |g: &mut ConstraintGraph, n: &str, r| {
            g.add_task(Task::new(n, r, TimeSpan::from_secs(2), Power::ZERO))
        };
        let a = mk(&mut g, "a", r0);
        let b = mk(&mut g, "b", r1);
        let c = mk(&mut g, "c", r2);
        let d = mk(&mut g, "d", r3);
        g.precedence(a, b);
        g.precedence(a, c);
        g.precedence(b, d);
        g.precedence(c, d);
        (g, vec![a, b, c, d])
    }

    #[test]
    fn successors_and_predecessors() {
        let (g, ids) = diamond();
        let succ = precedence_successors(&g, ids[0].node());
        assert_eq!(succ, vec![ids[1].node(), ids[2].node()]);
        // Predecessors include the anchor via the automatic release edge.
        let pred = precedence_predecessors(&g, ids[3].node());
        assert_eq!(pred, vec![NodeId::ANCHOR, ids[1].node(), ids[2].node()]);
        // Anchor's successors include everything released at 0.
        let anchor_succ = precedence_successors(&g, NodeId::ANCHOR);
        assert_eq!(anchor_succ.len(), 4);
    }

    #[test]
    fn topological_order_respects_precedence() {
        let (g, ids) = diamond();
        let order = topological_order(&g).unwrap();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert_eq!(order[0], NodeId::ANCHOR);
        assert!(pos(ids[0].node()) < pos(ids[1].node()));
        assert!(pos(ids[0].node()) < pos(ids[2].node()));
        assert!(pos(ids[1].node()) < pos(ids[3].node()));
        assert!(pos(ids[2].node()) < pos(ids[3].node()));
    }

    #[test]
    fn cycle_detected_by_kahn() {
        let (mut g, ids) = diamond();
        g.min_separation(ids[3], ids[0], TimeSpan::from_secs(1));
        let err = topological_order(&g).unwrap_err();
        assert!(!err.nodes.is_empty());
    }

    #[test]
    fn max_separation_edges_do_not_order() {
        let (mut g, ids) = diamond();
        // d at most 100 after a: backward edge, must not affect topo.
        g.max_separation(ids[0], ids[3], TimeSpan::from_secs(100));
        assert!(topological_order(&g).is_ok());
    }

    #[test]
    fn reachability() {
        let (g, ids) = diamond();
        assert!(reaches(&g, ids[0].node(), ids[3].node()));
        assert!(!reaches(&g, ids[3].node(), ids[0].node()));
        assert!(reaches(&g, ids[1].node(), ids[1].node()));
        assert!(!reaches(&g, ids[1].node(), ids[2].node()));
    }

    #[test]
    fn serialization_cycle_guard() {
        let (g, ids) = diamond();
        assert!(serialization_is_acyclic(&g, ids[1], ids[2]));
        assert!(serialization_is_acyclic(&g, ids[2], ids[1]));
        // d before a would close a cycle.
        assert!(!serialization_is_acyclic(&g, ids[3], ids[0]));
    }
}
