//! # pas-graph — constraint-graph substrate for power-aware scheduling
//!
//! This crate implements the constraint-graph formulation underlying
//! *Power-Aware Scheduling under Timing Constraints for
//! Mission-Critical Embedded Systems* (Liu, Chou, Bagherzadeh,
//! Kurdahi — DAC 2001):
//!
//! * [`Task`] vertices with execution delay `d(v)`, power `p(v)` and
//!   resource mapping `r(v)`;
//! * weighted [`Edge`]s encoding min/max timing separations as the
//!   inequality `σ(to) ≥ σ(from) + w`;
//! * a [`ConstraintGraph`] arena with **journaled mutation**
//!   ([`ConstraintGraph::mark`] / [`ConstraintGraph::undo_to`]) so the
//!   backtracking schedulers can cheaply undo speculative edges;
//! * [single-source longest paths](longest_path) with positive-cycle
//!   detection (infeasibility witness);
//! * [topological utilities](topo) over the precedence subgraph;
//! * [DOT export](dot) for visualising problems (Figs. 1 and 8 of the
//!   paper);
//! * exact fixed-point [units] shared by the whole workspace.
//!
//! ## Example
//!
//! Build a two-task problem with a min/max separation window and
//! compute earliest start times:
//!
//! ```
//! use pas_graph::{ConstraintGraph, NodeId, Resource, ResourceKind, Task};
//! use pas_graph::units::{Power, TimeSpan};
//! use pas_graph::longest_path::single_source_longest_paths;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = ConstraintGraph::new();
//! let heater = g.add_resource(Resource::new("heater", ResourceKind::Thermal));
//! let wheels = g.add_resource(Resource::new("wheels", ResourceKind::Mechanical));
//!
//! let heat = g.add_task(Task::new("heat", heater, TimeSpan::from_secs(5),
//!                                 Power::from_watts_milli(9_500)));
//! let drive = g.add_task(Task::new("drive", wheels, TimeSpan::from_secs(10),
//!                                  Power::from_watts_milli(10_900)));
//! // Heating at least 5 s and at most 50 s before driving.
//! g.min_separation(heat, drive, TimeSpan::from_secs(5));
//! g.max_separation(heat, drive, TimeSpan::from_secs(50));
//!
//! let lp = single_source_longest_paths(&g, NodeId::ANCHOR)?;
//! assert_eq!(lp.start_time(drive).as_secs(), 5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alap;
pub mod csr;
pub mod dot;
mod edge;
mod error;
mod graph;
mod id;
pub mod incremental;
pub mod longest_path;
mod task;
pub mod topo;
pub mod units;
pub mod window;

pub use edge::{Edge, EdgeKind};
pub use error::GraphError;
pub use graph::{ConstraintGraph, GraphMark};
pub use id::{EdgeId, NodeId, ResourceId, TaskId};
pub use incremental::IncrementalLongestPaths;
pub use longest_path::{binding_in_edge, LongestPaths, PositiveCycle};
pub use task::{Resource, ResourceKind, Task};
pub use window::{completion_tails, propagate_windows, TaskWindows};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConstraintGraph>();
        assert_send_sync::<Task>();
        assert_send_sync::<Edge>();
        assert_send_sync::<GraphError>();
        assert_send_sync::<LongestPaths>();
    }
}
