//! Error types for constraint-graph operations.

use crate::longest_path::PositiveCycle;
use crate::topo::PrecedenceCycle;

/// Errors produced by graph analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The timing constraints are mutually unsatisfiable: a positive
    /// cycle exists in the constraint graph.
    Infeasible(PositiveCycle),
    /// The precedence subgraph is cyclic (before weights are even
    /// considered).
    PrecedenceCycle(PrecedenceCycle),
}

impl core::fmt::Display for GraphError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GraphError::Infeasible(c) => write!(f, "infeasible timing constraints: {c}"),
            GraphError::PrecedenceCycle(c) => write!(f, "cyclic precedence: {c}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<PositiveCycle> for GraphError {
    fn from(c: PositiveCycle) -> Self {
        GraphError::Infeasible(c)
    }
}

impl From<PrecedenceCycle> for GraphError {
    fn from(c: PrecedenceCycle) -> Self {
        GraphError::PrecedenceCycle(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::NodeId;
    use crate::units::TimeSpan;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let e = GraphError::Infeasible(PositiveCycle {
            nodes: vec![NodeId::ANCHOR],
            total_weight: TimeSpan::from_secs(3),
        });
        let msg = e.to_string();
        assert!(msg.starts_with("infeasible"));
        let e2: GraphError = PrecedenceCycle { nodes: vec![] }.into();
        assert!(e2.to_string().contains("cyclic precedence"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<GraphError>();
    }
}
