//! Property tests for the constraint-graph substrate:
//! SPFA-vs-reference longest paths, journal undo, and topological
//! order invariants on random graphs.

use pas_graph::longest_path::{bellman_ford_reference, single_source_longest_paths};
use pas_graph::topo::{reaches, topological_order};
use pas_graph::units::{Power, Time, TimeSpan};
use pas_graph::{ConstraintGraph, NodeId, Resource, ResourceKind, Task, TaskId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random constraint graph from a seed: forward min edges
/// over the index order (acyclic skeleton), random max windows (which
/// may create infeasibility), and random release/lock edges.
fn random_graph(seed: u64, tasks: usize, edge_density: f64) -> ConstraintGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = ConstraintGraph::new();
    let r = g.add_resource(Resource::new("R", ResourceKind::Compute));
    let ids: Vec<TaskId> = (0..tasks)
        .map(|i| {
            g.add_task(Task::new(
                format!("t{i}"),
                r,
                TimeSpan::from_secs(rng.gen_range(1..=8)),
                Power::from_watts(rng.gen_range(0..5)),
            ))
        })
        .collect();
    for i in 0..tasks {
        for j in (i + 1)..tasks {
            if rng.gen_bool(edge_density) {
                g.min_separation(ids[i], ids[j], TimeSpan::from_secs(rng.gen_range(0..10)));
            }
            if rng.gen_bool(edge_density / 3.0) {
                g.max_separation(ids[i], ids[j], TimeSpan::from_secs(rng.gen_range(0..25)));
            }
        }
    }
    if tasks > 0 && rng.gen_bool(0.5) {
        let v = ids[rng.gen_range(0..tasks)];
        g.release(v, Time::from_secs(rng.gen_range(0..10)));
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The worklist SPFA and the textbook Bellman–Ford agree on both
    /// feasibility and every distance.
    #[test]
    fn spfa_matches_reference(seed in any::<u64>(), tasks in 1usize..14, density in 0.05f64..0.6) {
        let g = random_graph(seed, tasks, density);
        let a = single_source_longest_paths(&g, NodeId::ANCHOR);
        let b = bellman_ford_reference(&g, NodeId::ANCHOR);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                for t in g.task_ids() {
                    prop_assert_eq!(x.start_time(t), y.start_time(t));
                }
            }
            (Err(_), Err(_)) => {} // both infeasible
            (x, y) => prop_assert!(false, "disagreement: {x:?} vs {y:?}"),
        }
    }

    /// A reported positive cycle really is one: its edge weights sum
    /// to a strictly positive value along existing edges.
    #[test]
    fn reported_cycles_are_genuine(seed in any::<u64>(), tasks in 2usize..12) {
        let g = random_graph(seed, tasks, 0.5);
        if let Err(cycle) = bellman_ford_reference(&g, NodeId::ANCHOR) {
            prop_assert!(cycle.total_weight.is_positive());
            prop_assert!(!cycle.nodes.is_empty());
            // Every consecutive pair is connected by some edge.
            let n = cycle.nodes.len();
            for i in 0..n {
                let (u, v) = (cycle.nodes[i], cycle.nodes[(i + 1) % n]);
                prop_assert!(
                    g.out_edges(u).any(|(_, e)| e.to() == v),
                    "missing edge {u} -> {v} in reported cycle"
                );
            }
        }
    }

    /// Distances from the anchor satisfy every edge inequality
    /// (definition of longest path as the ASAP fixpoint).
    #[test]
    fn distances_satisfy_all_edges(seed in any::<u64>(), tasks in 1usize..14) {
        let g = random_graph(seed, tasks, 0.3);
        if let Ok(lp) = single_source_longest_paths(&g, NodeId::ANCHOR) {
            for (_, e) in g.edges() {
                let (Some(df), Some(dt)) = (lp.distance(e.from()), lp.distance(e.to())) else {
                    continue;
                };
                prop_assert!(dt >= df + e.weight(), "edge {e:?} violated");
            }
        }
    }

    /// mark/undo restores the exact edge set and the exact longest
    /// paths, whatever was added in between.
    #[test]
    fn journal_undo_is_exact(seed in any::<u64>(), tasks in 2usize..10) {
        let mut g = random_graph(seed, tasks, 0.2);
        let before_edges = g.num_edges();
        let before = single_source_longest_paths(&g, NodeId::ANCHOR);
        let mark = g.mark();
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        // Arbitrary speculative additions.
        let a = TaskId::from_index(rng.gen_range(0..tasks));
        let b = TaskId::from_index(rng.gen_range(0..tasks));
        g.release(a, Time::from_secs(rng.gen_range(0..20)));
        g.lock(b, Time::from_secs(rng.gen_range(0..20)));
        if a != b {
            g.serialize_after(a, b);
        }
        g.undo_to(mark);
        prop_assert_eq!(g.num_edges(), before_edges);
        let after = single_source_longest_paths(&g, NodeId::ANCHOR);
        match (before, after) {
            (Ok(x), Ok(y)) => {
                for t in g.task_ids() {
                    prop_assert_eq!(x.start_time(t), y.start_time(t));
                }
            }
            (Err(_), Err(_)) => {}
            (x, y) => prop_assert!(false, "undo changed feasibility: {x:?} vs {y:?}"),
        }
    }

    /// Kahn's order is consistent with precedence reachability.
    #[test]
    fn topological_order_respects_reachability(seed in any::<u64>(), tasks in 1usize..12) {
        let g = random_graph(seed, tasks, 0.3);
        if let Ok(order) = topological_order(&g) {
            prop_assert_eq!(order.len(), g.num_nodes());
            let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
            for (_, e) in g.edges() {
                if e.is_precedence() {
                    prop_assert!(pos(e.from()) < pos(e.to()));
                }
            }
            // Reachability is consistent with the order.
            for t in g.task_ids() {
                if reaches(&g, NodeId::ANCHOR, t.node()) {
                    prop_assert!(pos(NodeId::ANCHOR) < pos(t.node()));
                }
            }
        }
    }
}
