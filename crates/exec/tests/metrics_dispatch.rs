//! Dispatch events feed the `pas-obs` metrics registry: a dispatcher
//! run piped into a [`MetricsRegistry`] surfaces its task counts in
//! the Prometheus exposition.

use pas_core::example::paper_example;
use pas_exec::{execute, execute_observed, JitterModel};
use pas_obs::MetricsRegistry;
use pas_sched::PowerAwareScheduler;

#[test]
fn dispatch_events_land_in_the_metrics_registry() {
    let (mut problem, _) = paper_example();
    let outcome = PowerAwareScheduler::default()
        .schedule(&mut problem)
        .expect("paper example schedules");
    let durations = JitterModel::nominal_durations(problem.graph());

    let mut registry = MetricsRegistry::new();
    let observed = execute_observed(&problem, &outcome.schedule, &durations, &mut registry);
    assert_eq!(
        observed,
        execute(&problem, &outcome.schedule, &durations),
        "metrics collection must not perturb dispatch"
    );

    let n = problem.graph().num_tasks() as u64;
    let text = registry.render_prometheus();
    assert!(text.contains(&format!(
        "pas_events_total{{counter=\"tasks_dispatched\"}} {n}"
    )));
    assert!(text.contains(&format!(
        "pas_events_total{{counter=\"tasks_completed\"}} {n}"
    )));
    assert!(text.contains("pas_events_total{counter=\"window_faults\"} 0"));
}
