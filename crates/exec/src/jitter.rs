//! Execution-time jitter models.
//!
//! The paper assumes bounded execution delays (`d(v)` is exact). A
//! real rover's motors and heaters finish early or late; the runtime
//! dispatcher must absorb that. [`JitterModel`] perturbs every task's
//! duration deterministically from a seed so robustness experiments
//! are repeatable.

use pas_graph::units::TimeSpan;
use pas_graph::ConstraintGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A bounded multiplicative perturbation of task durations.
///
/// Each task's actual duration is drawn uniformly from
/// `[d·(1 − underrun), d·(1 + overrun)]`, rounded to whole seconds and
/// clamped to at least 1 s.
///
/// # Examples
/// ```
/// use pas_exec::JitterModel;
/// let nominal = JitterModel::none();
/// assert_eq!(nominal.overrun_percent, 0);
/// let sloppy = JitterModel::symmetric(7, 20);
/// assert_eq!(sloppy.underrun_percent, 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JitterModel {
    /// RNG seed (equal seeds draw equal durations).
    pub seed: u64,
    /// Maximum overrun as a percentage of the nominal duration.
    pub overrun_percent: u32,
    /// Maximum underrun as a percentage of the nominal duration.
    pub underrun_percent: u32,
}

impl JitterModel {
    /// No jitter: every task takes exactly its nominal duration.
    pub fn none() -> Self {
        JitterModel {
            seed: 0,
            overrun_percent: 0,
            underrun_percent: 0,
        }
    }

    /// Same bound in both directions.
    pub fn symmetric(seed: u64, percent: u32) -> Self {
        JitterModel {
            seed,
            overrun_percent: percent,
            underrun_percent: percent,
        }
    }

    /// Only overruns (the dangerous direction for a non-preemptive
    /// dispatcher).
    pub fn overrun_only(seed: u64, percent: u32) -> Self {
        JitterModel {
            seed,
            overrun_percent: percent,
            underrun_percent: 0,
        }
    }

    /// Draws an actual duration for every task of `graph`, indexed by
    /// [`pas_graph::TaskId`].
    pub fn draw_durations(&self, graph: &ConstraintGraph) -> Vec<TimeSpan> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        graph
            .tasks()
            .map(|(_, task)| {
                let d = task.delay().as_secs();
                let lo = d - d * self.underrun_percent as i64 / 100;
                let hi = d + d * self.overrun_percent as i64 / 100;
                let drawn = if lo >= hi { lo } else { rng.gen_range(lo..=hi) };
                TimeSpan::from_secs(drawn.max(1))
            })
            .collect()
    }

    /// The worst-case (all-overrun) durations, for deterministic
    /// bounds instead of sampling.
    pub fn worst_case_durations(&self, graph: &ConstraintGraph) -> Vec<TimeSpan> {
        graph
            .tasks()
            .map(|(_, task)| {
                let d = task.delay().as_secs();
                TimeSpan::from_secs((d + d * self.overrun_percent as i64 / 100).max(1))
            })
            .collect()
    }

    /// Convenience: the nominal durations of every task.
    pub fn nominal_durations(graph: &ConstraintGraph) -> Vec<TimeSpan> {
        graph.task_ids().map(|t| graph.task(t).delay()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_graph::units::Power;
    use pas_graph::{Resource, ResourceKind, Task};

    fn graph() -> ConstraintGraph {
        let mut g = ConstraintGraph::new();
        let r = g.add_resource(Resource::new("R", ResourceKind::Compute));
        for i in 0..6 {
            g.add_task(Task::new(
                format!("t{i}"),
                r,
                TimeSpan::from_secs(10),
                Power::ZERO,
            ));
        }
        g
    }

    #[test]
    fn none_is_identity() {
        let g = graph();
        assert_eq!(
            JitterModel::none().draw_durations(&g),
            JitterModel::nominal_durations(&g)
        );
    }

    #[test]
    fn draws_stay_within_bounds_and_are_seeded() {
        let g = graph();
        let m = JitterModel::symmetric(42, 30);
        let a = m.draw_durations(&g);
        let b = m.draw_durations(&g);
        assert_eq!(a, b, "same seed, same draws");
        for d in &a {
            assert!(d.as_secs() >= 7 && d.as_secs() <= 13, "{d}");
        }
        let c = JitterModel::symmetric(43, 30).draw_durations(&g);
        assert_ne!(a, c, "different seed should differ (overwhelmingly)");
    }

    #[test]
    fn worst_case_is_the_upper_bound() {
        let g = graph();
        let m = JitterModel::overrun_only(1, 25);
        for d in m.worst_case_durations(&g) {
            assert_eq!(d.as_secs(), 12, "10 s + 25%, floored");
        }
        // And no sampled draw exceeds it.
        for (drawn, worst) in m.draw_durations(&g).iter().zip(m.worst_case_durations(&g)) {
            assert!(*drawn <= worst);
        }
    }

    #[test]
    fn durations_never_drop_below_one_second() {
        let mut g = ConstraintGraph::new();
        let r = g.add_resource(Resource::new("R", ResourceKind::Compute));
        g.add_task(Task::new("t", r, TimeSpan::from_secs(1), Power::ZERO));
        let m = JitterModel::symmetric(7, 100);
        assert!(m.draw_durations(&g)[0].as_secs() >= 1);
    }
}
