//! # pas-exec — runtime dispatch simulation for static schedules
//!
//! The DAC 2001 scheduler is *static*: start times are computed
//! offline and a lightweight runtime dispatcher executes them (§5.3
//! makes the schedules quasi-static across constraint ranges). This
//! crate closes the loop by simulating that dispatcher under
//! execution-time **jitter** — motors and heaters finishing early or
//! late — and reporting what survives:
//!
//! * [`JitterModel`] — seeded bounded perturbations of task durations
//!   (plus deterministic worst-case bounds);
//! * [`execute`] — a work-conserving, order-preserving dispatcher:
//!   tasks become eligible at their static start, wait for their
//!   resource and their min separations (against *actual* predecessor
//!   starts), and run to their actual completion;
//! * [`ExecutionTrace`] — actual timeline, finish-time slip, actual
//!   peak power, exceeded max-separation windows
//!   ([`WindowFault`]) and power-budget faults;
//! * [`overrun_tolerance`] — the largest uniform overrun a schedule
//!   absorbs with every hard guarantee intact.
//!
//! ## Example
//!
//! ```
//! use pas_exec::{execute, JitterModel};
//! use pas_rover::{build_rover_problem, EnvCase};
//! use pas_sched::PowerAwareScheduler;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rover = build_rover_problem(EnvCase::Worst, 1);
//! let outcome = PowerAwareScheduler::default().schedule(&mut rover.problem)?;
//! // Nominal execution reproduces the plan exactly.
//! let durations = JitterModel::nominal_durations(rover.problem.graph());
//! let trace = execute(&rover.problem, &outcome.schedule, &durations);
//! assert!(trace.is_clean());
//! assert_eq!(trace.finish_time, outcome.analysis.finish_time);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod dispatch;
mod jitter;

pub use campaign::{jitter_campaign, planned_finish, CampaignStats};
pub use dispatch::{execute, execute_observed, overrun_tolerance, ExecutionTrace, WindowFault};
pub use jitter::JitterModel;
