//! Monte-Carlo jitter campaigns: many seeded executions of one
//! schedule, aggregated into robustness statistics.

use crate::dispatch::execute;
use crate::jitter::JitterModel;
use pas_core::{Problem, Schedule};
use pas_graph::units::{Power, Time, TimeSpan};

/// Aggregate statistics over a campaign of jittered executions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignStats {
    /// Executions performed.
    pub runs: u32,
    /// Executions with no window or power fault.
    pub clean_runs: u32,
    /// Largest finish-time slip observed (relative to the plan).
    pub worst_slip: TimeSpan,
    /// Largest actual peak power observed.
    pub worst_peak: Power,
    /// Total window faults across all runs.
    pub window_faults: u64,
    /// Total power faults across all runs.
    pub power_faults: u64,
}

impl CampaignStats {
    /// Fraction of fault-free runs in `[0, 1]`.
    pub fn clean_fraction(&self) -> f64 {
        if self.runs == 0 {
            return 1.0;
        }
        self.clean_runs as f64 / self.runs as f64
    }
}

/// Executes `schedule` `runs` times under fresh draws of `model`
/// (seeds `model.seed`, `model.seed + 1`, …) and aggregates the
/// outcome. Deterministic for a fixed model and run count.
///
/// # Examples
/// ```
/// use pas_exec::{jitter_campaign, JitterModel};
/// use pas_rover::{build_rover_problem, EnvCase};
/// use pas_sched::PowerAwareScheduler;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rover = build_rover_problem(EnvCase::Worst, 1);
/// let outcome = PowerAwareScheduler::default().schedule(&mut rover.problem)?;
/// let stats = jitter_campaign(
///     &rover.problem,
///     &outcome.schedule,
///     JitterModel::symmetric(1, 5),
///     50,
/// );
/// assert_eq!(stats.runs, 50);
/// assert!(stats.clean_fraction() > 0.5);
/// # Ok(())
/// # }
/// ```
pub fn jitter_campaign(
    problem: &Problem,
    schedule: &Schedule,
    model: JitterModel,
    runs: u32,
) -> CampaignStats {
    let planned = schedule.finish_time(problem.graph());
    let mut stats = CampaignStats {
        runs,
        clean_runs: 0,
        worst_slip: TimeSpan::from_secs(i64::MIN / 4),
        worst_peak: Power::ZERO,
        window_faults: 0,
        power_faults: 0,
    };
    if runs == 0 {
        stats.worst_slip = TimeSpan::ZERO;
        return stats;
    }
    for k in 0..runs {
        let run_model = JitterModel {
            seed: model.seed.wrapping_add(k as u64),
            ..model
        };
        let durations = run_model.draw_durations(problem.graph());
        let trace = execute(problem, schedule, &durations);
        if trace.is_clean() {
            stats.clean_runs += 1;
        }
        stats.worst_slip = stats.worst_slip.max(trace.slip(planned));
        stats.worst_peak = stats.worst_peak.max(trace.peak_power);
        stats.window_faults += trace.window_faults.len() as u64;
        stats.power_faults += trace.power_faults as u64;
    }
    stats
}

/// The planned finish time used as the slip baseline (exposed for
/// report symmetry).
pub fn planned_finish(problem: &Problem, schedule: &Schedule) -> Time {
    schedule.finish_time(problem.graph())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_core::PowerConstraints;
    use pas_graph::{ConstraintGraph, Resource, ResourceKind, Task};

    fn problem() -> (Problem, Schedule) {
        let mut g = ConstraintGraph::new();
        let r0 = g.add_resource(Resource::new("A", ResourceKind::Compute));
        let r1 = g.add_resource(Resource::new("B", ResourceKind::Compute));
        g.add_task(Task::new(
            "a",
            r0,
            TimeSpan::from_secs(10),
            Power::from_watts(4),
        ));
        g.add_task(Task::new(
            "b",
            r1,
            TimeSpan::from_secs(10),
            Power::from_watts(4),
        ));
        let p = Problem::new("c", g, PowerConstraints::max_only(Power::from_watts(10)));
        let s = Schedule::from_starts(vec![Time::ZERO, Time::ZERO]);
        (p, s)
    }

    #[test]
    fn zero_jitter_campaign_is_all_clean() {
        let (p, s) = problem();
        let stats = jitter_campaign(&p, &s, JitterModel::none(), 10);
        assert_eq!(stats.clean_runs, 10);
        assert_eq!(stats.worst_slip, TimeSpan::ZERO);
        assert_eq!(stats.worst_peak, Power::from_watts(8));
        assert!((stats.clean_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn campaign_is_deterministic_and_bounded() {
        let (p, s) = problem();
        let model = JitterModel::symmetric(9, 20);
        let a = jitter_campaign(&p, &s, model, 40);
        let b = jitter_campaign(&p, &s, model, 40);
        assert_eq!(a, b);
        // Slip can never exceed the overrun bound on the longest task.
        assert!(a.worst_slip <= TimeSpan::from_secs(2));
        assert_eq!(planned_finish(&p, &s), Time::from_secs(10));
    }

    #[test]
    fn tight_budget_counts_power_faults() {
        let (mut p, s) = problem();
        // Both tasks at 4 W, budget exactly 8 W: any overlap is fine,
        // but drop the budget below the overlap level.
        p.set_constraints(PowerConstraints::max_only(Power::from_watts(7)));
        let stats = jitter_campaign(&p, &s, JitterModel::none(), 5);
        assert_eq!(stats.clean_runs, 0);
        assert_eq!(stats.power_faults, 5);
        assert!((stats.clean_fraction() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn empty_campaign_is_trivially_clean() {
        let (p, s) = problem();
        let stats = jitter_campaign(&p, &s, JitterModel::none(), 0);
        assert!((stats.clean_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(stats.worst_slip, TimeSpan::ZERO);
    }
}
