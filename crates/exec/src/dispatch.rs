//! The runtime dispatcher: executes a static schedule under actual
//! (jittered) task durations and reports what really happened.
//!
//! Dispatch rule (work-conserving, order-preserving): task `v`
//! becomes eligible at its static start time `σ(v)`; it actually
//! starts once (a) its resource is free, tasks taken in static order,
//! and (b) every *precedence-like* separation (min edges) holds
//! against the **actual** start times of its predecessors. Max
//! separations cannot be enforced by waiting — exceeding one is a
//! fault the dispatcher can only report, which is exactly how a
//! flight system would treat a missed heater window.

use crate::jitter::JitterModel;
use pas_core::{PowerProfile, Problem, Schedule};
use pas_graph::units::{Power, Time, TimeSpan};
use pas_graph::{ConstraintGraph, EdgeId, TaskId};
use pas_obs::{NullObserver, Observer, StageKind, TraceEvent};

/// A max-separation window that the execution exceeded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowFault {
    /// The violated (max-separation) edge.
    pub edge: EdgeId,
    /// Source task of the original window.
    pub from: TaskId,
    /// Target task of the original window.
    pub to: TaskId,
    /// Allowed separation.
    pub allowed: TimeSpan,
    /// Actual separation observed.
    pub actual: TimeSpan,
}

/// What actually happened when the schedule ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionTrace {
    /// Actual start times, indexed by [`TaskId`].
    pub starts: Vec<Time>,
    /// Actual completion times.
    pub ends: Vec<Time>,
    /// When the last task completed.
    pub finish_time: Time,
    /// Peak of the actual power profile.
    pub peak_power: Power,
    /// Instants where the actual profile exceeded `P_max`.
    pub power_faults: usize,
    /// Max-separation windows that were exceeded.
    pub window_faults: Vec<WindowFault>,
}

impl ExecutionTrace {
    /// `true` when the execution kept every hard guarantee: all
    /// windows held and the power budget was never exceeded.
    pub fn is_clean(&self) -> bool {
        self.window_faults.is_empty() && self.power_faults == 0
    }

    /// Slip of the finish time relative to the static plan.
    pub fn slip(&self, planned: Time) -> TimeSpan {
        self.finish_time - planned
    }
}

/// Executes `schedule` on `problem` with explicit per-task `durations`
/// (from a [`JitterModel`] or measured data).
///
/// # Panics
/// Panics if `durations` does not cover every task.
pub fn execute(problem: &Problem, schedule: &Schedule, durations: &[TimeSpan]) -> ExecutionTrace {
    execute_observed(problem, schedule, durations, &mut NullObserver)
}

/// [`execute`] with a [`pas_obs::Observer`] receiving the dispatch
/// decisions: a [`TraceEvent::TaskDispatched`] per actual start (with
/// its planned time), a [`TraceEvent::TaskCompleted`] per finish, and
/// a [`TraceEvent::WindowFaultDetected`] per exceeded max-separation
/// window, bracketed by the `Dispatch` stage markers.
///
/// # Panics
/// Panics if `durations` does not cover every task.
pub fn execute_observed<O: Observer>(
    problem: &Problem,
    schedule: &Schedule,
    durations: &[TimeSpan],
    obs: &mut O,
) -> ExecutionTrace {
    let graph = problem.graph();
    assert_eq!(
        durations.len(),
        graph.num_tasks(),
        "need one duration per task"
    );

    if obs.is_enabled() {
        obs.on_event(&TraceEvent::StageStarted {
            stage: StageKind::Dispatch,
        });
    }

    // Dispatch in static start order (ties by id — the same order the
    // static serialization implies).
    let mut order: Vec<TaskId> = graph.task_ids().collect();
    order.sort_by_key(|&t| (schedule.start(t), t));

    let n = graph.num_tasks();
    let mut starts = vec![Time::ZERO; n];
    let mut ends = vec![Time::ZERO; n];
    let mut done = vec![false; n];
    let mut resource_free: Vec<Time> = vec![Time::ZERO; graph.num_resources()];

    for &v in &order {
        let mut start = schedule.start(v); // eligible at the static time
                                           // Resource gate.
        start = start.max(resource_free[graph.task(v).resource().index()]);
        // Min separations against actual predecessor starts.
        for (_, e) in graph.in_edges(v.node()) {
            if e.weight().is_negative() {
                continue; // max windows are checked post-hoc
            }
            if let Some(u) = e.from().task() {
                if done[u.index()] {
                    start = start.max(starts[u.index()] + e.weight());
                }
            }
        }
        starts[v.index()] = start;
        ends[v.index()] = start + durations[v.index()];
        done[v.index()] = true;
        resource_free[graph.task(v).resource().index()] = ends[v.index()];
        if obs.is_enabled() {
            obs.on_event(&TraceEvent::TaskDispatched {
                task: v,
                planned: schedule.start(v),
                actual: start,
            });
            obs.on_event(&TraceEvent::TaskCompleted {
                task: v,
                at: ends[v.index()],
            });
        }
    }

    // Post-hoc checks against the actual timeline.
    let mut window_faults = Vec::new();
    for (id, e) in graph.edges() {
        if !e.weight().is_negative() {
            continue;
        }
        // Stored reversed: edge v→u with weight −k means
        // σ(v) ≤ σ(u) + k, i.e. window (u, v, k).
        let (Some(v), Some(u)) = (e.from().task(), e.to().task()) else {
            continue;
        };
        let allowed = -e.weight();
        let actual = starts[v.index()] - starts[u.index()];
        if actual > allowed {
            window_faults.push(WindowFault {
                edge: id,
                from: u,
                to: v,
                allowed,
                actual,
            });
        }
    }

    window_faults.sort_by_key(|f| (f.from, f.to, f.edge));

    if obs.is_enabled() {
        for f in &window_faults {
            obs.on_event(&TraceEvent::WindowFaultDetected {
                from: f.from,
                to: f.to,
                allowed: f.allowed,
                actual: f.actual,
            });
        }
    }

    // Profile with the *actual* durations: the constant powers are
    // unchanged, so evaluate on a clone of the graph whose delays are
    // the measured ones.
    let profile = actual_profile(graph, &starts, durations, problem.background_power());
    let p_max = problem.constraints().p_max();
    let power_faults = profile.spikes(p_max).len();

    if obs.is_enabled() {
        obs.on_event(&TraceEvent::StageFinished {
            stage: StageKind::Dispatch,
        });
    }

    ExecutionTrace {
        finish_time: graph
            .task_ids()
            .map(|t| ends[t.index()])
            .max()
            .unwrap_or(Time::ZERO),
        peak_power: profile.peak(),
        power_faults,
        window_faults,
        starts,
        ends,
    }
}

/// Power profile of an execution with per-task durations.
fn actual_profile(
    graph: &ConstraintGraph,
    starts: &[Time],
    durations: &[TimeSpan],
    background: Power,
) -> PowerProfile {
    let mut clone = ConstraintGraph::new();
    for (_, r) in graph.resources() {
        clone.add_resource(r.clone());
    }
    for (id, task) in graph.tasks() {
        clone.add_task(pas_graph::Task::new(
            task.name(),
            task.resource(),
            durations[id.index()],
            task.power(),
        ));
    }
    let schedule = Schedule::from_starts(starts.to_vec());
    PowerProfile::of_schedule(&clone, &schedule, background)
}

/// Sweeps overrun percentages and returns the largest sampled overrun
/// (in whole percent, up to `max_percent`) for which the execution of
/// `schedule` stays clean under worst-case (all-tasks-overrun)
/// durations. Returns `None` when even 1 % overruns fault.
pub fn overrun_tolerance(problem: &Problem, schedule: &Schedule, max_percent: u32) -> Option<u32> {
    let mut best = None;
    for percent in 1..=max_percent {
        let durations = JitterModel::overrun_only(0, percent).worst_case_durations(problem.graph());
        let trace = execute(problem, schedule, &durations);
        if trace.is_clean() {
            best = Some(percent);
        } else {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_core::PowerConstraints;
    use pas_graph::{Resource, ResourceKind, Task};

    /// heat (5 s) must run 5–20 s before drive (10 s); both plus a
    /// parallel filler under a 12 W budget.
    fn problem() -> (Problem, TaskId, TaskId, TaskId) {
        let mut g = ConstraintGraph::new();
        let rh = g.add_resource(Resource::new("heater", ResourceKind::Thermal));
        let rd = g.add_resource(Resource::new("drive", ResourceKind::Mechanical));
        let rf = g.add_resource(Resource::new("filler", ResourceKind::Compute));
        let heat = g.add_task(Task::new(
            "heat",
            rh,
            TimeSpan::from_secs(5),
            Power::from_watts(4),
        ));
        let drive = g.add_task(Task::new(
            "drive",
            rd,
            TimeSpan::from_secs(10),
            Power::from_watts(6),
        ));
        let filler = g.add_task(Task::new(
            "filler",
            rf,
            TimeSpan::from_secs(8),
            Power::from_watts(3),
        ));
        g.min_separation(heat, drive, TimeSpan::from_secs(5));
        g.max_separation(heat, drive, TimeSpan::from_secs(20));
        let p = Problem::new("exec", g, PowerConstraints::max_only(Power::from_watts(12)));
        (p, heat, drive, filler)
    }

    fn static_schedule() -> Schedule {
        // heat@0, drive@5, filler@0 → peak 4+6+3 = 13? No: heat ends
        // at 5 when drive starts: [0,5): 4+3=7, [5,8): 6+3=9, ok.
        Schedule::from_starts(vec![Time::ZERO, Time::from_secs(5), Time::ZERO])
    }

    #[test]
    fn nominal_execution_matches_the_plan() {
        let (p, heat, drive, _) = problem();
        let s = static_schedule();
        let durations = JitterModel::nominal_durations(p.graph());
        let trace = execute(&p, &s, &durations);
        assert!(trace.is_clean());
        assert_eq!(trace.starts[heat.index()], Time::ZERO);
        assert_eq!(trace.starts[drive.index()], Time::from_secs(5));
        assert_eq!(trace.finish_time, Time::from_secs(15));
        assert_eq!(trace.slip(Time::from_secs(15)), TimeSpan::ZERO);
    }

    #[test]
    fn overruns_push_dependents_and_report_slip() {
        let (p, _, drive, _) = problem();
        let s = static_schedule();
        // drive overruns by 50% (15 s); heat and filler run nominal,
        // so no extra overlap appears — just finish-time slip.
        let durations = vec![
            TimeSpan::from_secs(5),
            TimeSpan::from_secs(15),
            TimeSpan::from_secs(8),
        ];
        let trace = execute(&p, &s, &durations);
        assert_eq!(trace.starts[drive.index()], Time::from_secs(5));
        assert_eq!(trace.finish_time, Time::from_secs(20));
        assert_eq!(trace.slip(Time::from_secs(15)), TimeSpan::from_secs(5));
        assert!(trace.is_clean(), "no window or power fault here");
    }

    #[test]
    fn resource_contention_serializes_actual_starts() {
        let mut g = ConstraintGraph::new();
        let r = g.add_resource(Resource::new("R", ResourceKind::Compute));
        let _a = g.add_task(Task::new("a", r, TimeSpan::from_secs(5), Power::ZERO));
        let b = g.add_task(Task::new("b", r, TimeSpan::from_secs(5), Power::ZERO));
        let p = Problem::new("serial", g, PowerConstraints::unconstrained());
        let s = Schedule::from_starts(vec![Time::ZERO, Time::from_secs(5)]);
        // a overruns to 9 s: b must wait for the resource.
        let trace = execute(&p, &s, &[TimeSpan::from_secs(9), TimeSpan::from_secs(5)]);
        assert_eq!(trace.starts[b.index()], Time::from_secs(9));
        assert!(trace.is_clean());
    }

    #[test]
    fn missed_window_is_reported_as_fault() {
        let (p, heat, drive, _) = problem();
        // Schedule drive at the very edge of its 20 s window…
        let s = Schedule::from_starts(vec![Time::ZERO, Time::from_secs(20), Time::ZERO]);
        // …and let a same-resource intruder… there is none, so use a
        // big filler overrun that delays nothing. Instead delay drive
        // via its own resource: impossible — so force the fault by
        // overrunning heat enough that a *min* separation pushes
        // drive… min is start-to-start (5 s) and already satisfied.
        // The realistic fault: drive's resource blocked by an earlier
        // drive. Model it directly: shift drive's eligible time via
        // the static schedule to 21 s.
        let s2 = Schedule::from_starts(vec![Time::ZERO, Time::from_secs(21), Time::ZERO]);
        let durations = JitterModel::nominal_durations(p.graph());
        let ok = execute(&p, &s, &durations);
        assert!(ok.is_clean());
        let bad = execute(&p, &s2, &durations);
        assert_eq!(bad.window_faults.len(), 1);
        let f = &bad.window_faults[0];
        assert_eq!((f.from, f.to), (heat, drive));
        assert_eq!(f.allowed, TimeSpan::from_secs(20));
        assert_eq!(f.actual, TimeSpan::from_secs(21));
        assert!(!bad.is_clean());
    }

    #[test]
    fn power_fault_detected_when_overlap_grows() {
        let (p, heat, drive, filler) = problem();
        // drive at 5, filler 8 s: nominal peak 9 W. Stretch heat to
        // overlap drive: heat 4 W + drive 6 W + filler 3 W = 13 W > 12.
        let s = static_schedule();
        let durations = vec![
            TimeSpan::from_secs(7), // heat now overlaps drive
            TimeSpan::from_secs(10),
            TimeSpan::from_secs(8),
        ];
        let trace = execute(&p, &s, &durations);
        assert!(trace.power_faults > 0);
        assert_eq!(trace.peak_power, Power::from_watts(13));
        let _ = (heat, drive, filler);
    }

    #[test]
    fn observed_execution_matches_plain_and_records_dispatch_events() {
        use pas_obs::{EventCounts, RecordingObserver};

        let (p, heat, drive, _) = problem();
        // The 21 s plan from `missed_window_is_reported_as_fault`:
        // one window fault, three dispatches.
        let s = Schedule::from_starts(vec![Time::ZERO, Time::from_secs(21), Time::ZERO]);
        let durations = JitterModel::nominal_durations(p.graph());

        let plain = execute(&p, &s, &durations);
        let mut rec = RecordingObserver::new();
        let observed = execute_observed(&p, &s, &durations, &mut rec);
        assert_eq!(plain, observed, "observation must not perturb execution");

        let events = rec.into_events();
        assert_eq!(
            events.first(),
            Some(&TraceEvent::StageStarted {
                stage: StageKind::Dispatch
            })
        );
        assert_eq!(
            events.last(),
            Some(&TraceEvent::StageFinished {
                stage: StageKind::Dispatch
            })
        );
        let counts = EventCounts::from_events(&events);
        assert_eq!(counts.tasks_dispatched, 3);
        assert_eq!(counts.tasks_completed, 3);
        assert_eq!(counts.window_faults, 1);
        assert!(events.contains(&TraceEvent::TaskDispatched {
            task: drive,
            planned: Time::from_secs(21),
            actual: Time::from_secs(21),
        }));
        assert!(events.contains(&TraceEvent::WindowFaultDetected {
            from: heat,
            to: drive,
            allowed: TimeSpan::from_secs(20),
            actual: TimeSpan::from_secs(21),
        }));
    }

    #[test]
    fn overrun_tolerance_finds_the_break_point() {
        let (p, _, _, _) = problem();
        let s = static_schedule();
        let tol = overrun_tolerance(&p, &s, 100);
        // heat (5 s) may stretch to <10 s before it overlaps drive@5…
        // actually heat@0 + overrun% ≤ 5 s gap ⇒ tolerance < 100% of
        // 5 s. At +39% heat runs 6 s (floored) — overlapping drive:
        // 13 W fault. Floor math: 5·1.19 = 5 s still; 5·1.2 = 6 s.
        assert_eq!(tol, Some(19));
    }
}
