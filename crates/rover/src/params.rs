//! Mars rover parameters, transcribed from Tables 1 and 2 of the
//! paper.
//!
//! Power consumption tracks the environmental temperature (which
//! tracks sunlight intensity); the paper evaluates three operating
//! points. All values are exact in milliwatts.

use pas_graph::units::{Power, TimeSpan};

/// The three environment cases of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnvCase {
    /// Noon: −40 °C, 14.9 W solar.
    Best,
    /// Typical: −60 °C, 12 W solar.
    Typical,
    /// Dusk: −80 °C, 9 W solar.
    Worst,
}

impl EnvCase {
    /// All cases, best first.
    pub const ALL: [EnvCase; 3] = [EnvCase::Best, EnvCase::Typical, EnvCase::Worst];

    /// Solar panel output (Table 2, "Solar panel").
    pub fn solar_power(self) -> Power {
        Power::from_watts_milli(match self {
            EnvCase::Best => 14_900,
            EnvCase::Typical => 12_000,
            EnvCase::Worst => 9_000,
        })
    }

    /// Maximum battery output: 10 W in every case.
    pub fn battery_power(self) -> Power {
        Power::from_watts_milli(10_000)
    }

    /// The max power constraint: available solar plus max battery
    /// output (§3).
    pub fn p_max(self) -> Power {
        self.solar_power() + self.battery_power()
    }

    /// The min power constraint: the free solar level (§3).
    pub fn p_min(self) -> Power {
        self.solar_power()
    }

    /// Ambient temperature in °C (for display).
    pub fn temperature_celsius(self) -> i32 {
        match self {
            EnvCase::Best => -40,
            EnvCase::Typical => -60,
            EnvCase::Worst => -80,
        }
    }

    /// Constant CPU draw (Table 2, "CPU").
    pub fn cpu_power(self) -> Power {
        Power::from_watts_milli(match self {
            EnvCase::Best => 2_500,
            EnvCase::Typical => 3_100,
            EnvCase::Worst => 3_700,
        })
    }

    /// One heater task heating two motors (Table 2, "Heating two
    /// motors").
    pub fn heating_power(self) -> Power {
        Power::from_watts_milli(match self {
            EnvCase::Best => 7_600,
            EnvCase::Typical => 9_500,
            EnvCase::Worst => 11_300,
        })
    }

    /// Driving the six wheel motors (Table 2, "Driving").
    pub fn driving_power(self) -> Power {
        Power::from_watts_milli(match self {
            EnvCase::Best => 7_500,
            EnvCase::Typical => 10_900,
            EnvCase::Worst => 13_800,
        })
    }

    /// Steering the four steering motors (Table 2, "Steering").
    pub fn steering_power(self) -> Power {
        Power::from_watts_milli(match self {
            EnvCase::Best => 4_300,
            EnvCase::Typical => 6_200,
            EnvCase::Worst => 8_100,
        })
    }

    /// Laser-guided hazard detection (Table 2, "Hazard detection").
    pub fn hazard_power(self) -> Power {
        Power::from_watts_milli(match self {
            EnvCase::Best => 5_100,
            EnvCase::Typical => 6_100,
            EnvCase::Worst => 7_300,
        })
    }

    /// The most capable operating case supported by an observed solar
    /// level: the rover plans against the case whose assumed solar
    /// output it can actually count on. Returns `None` below the
    /// worst-case level (night — the rover sleeps, §1.1).
    ///
    /// # Examples
    /// ```
    /// use pas_graph::units::Power;
    /// use pas_rover::EnvCase;
    /// assert_eq!(EnvCase::for_solar(Power::from_watts_milli(13_000)),
    ///            Some(EnvCase::Typical));
    /// assert_eq!(EnvCase::for_solar(Power::from_watts(5)), None);
    /// ```
    pub fn for_solar(available: Power) -> Option<EnvCase> {
        EnvCase::ALL
            .into_iter()
            .find(|case| available >= case.solar_power())
    }

    /// Short label used in reports ("best" / "typical" / "worst").
    pub fn label(self) -> &'static str {
        match self {
            EnvCase::Best => "best",
            EnvCase::Typical => "typical",
            EnvCase::Worst => "worst",
        }
    }
}

impl core::fmt::Display for EnvCase {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} ({} °C, {} solar)",
            self.label(),
            self.temperature_celsius(),
            self.solar_power()
        )
    }
}

/// Task durations (Tables 1 and 2); identical in every case.
pub mod durations {
    use super::TimeSpan;

    /// Heating two motors: 5 s.
    pub const HEATING: TimeSpan = TimeSpan::from_secs(5);
    /// Hazard detection: 10 s.
    pub const HAZARD: TimeSpan = TimeSpan::from_secs(10);
    /// Steering: 5 s.
    pub const STEERING: TimeSpan = TimeSpan::from_secs(5);
    /// Driving one step (≈7 cm): 10 s.
    pub const DRIVING: TimeSpan = TimeSpan::from_secs(10);
}

/// Timing windows (Table 1).
pub mod windows {
    use super::TimeSpan;

    /// Heating at least 5 s before the operation it warms up.
    pub const HEAT_MIN_BEFORE: TimeSpan = TimeSpan::from_secs(5);
    /// Heating at most 50 s before the operation it warms up.
    pub const HEAT_MAX_BEFORE: TimeSpan = TimeSpan::from_secs(50);
    /// Hazard detection at least 10 s before steering.
    pub const HAZARD_BEFORE_STEER: TimeSpan = TimeSpan::from_secs(10);
    /// Steering at least 5 s before driving.
    pub const STEER_BEFORE_DRIVE: TimeSpan = TimeSpan::from_secs(5);
    /// Driving at least 10 s before the next hazard detection.
    pub const DRIVE_BEFORE_HAZARD: TimeSpan = TimeSpan::from_secs(10);
}

/// Steps the rover advances per schedule iteration (each iteration
/// drives the wheels twice; one step ≈ 7 cm).
pub const STEPS_PER_ITERATION: u32 = 2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_constraint_levels() {
        assert_eq!(EnvCase::Best.p_max(), Power::from_watts_milli(24_900));
        assert_eq!(EnvCase::Typical.p_max(), Power::from_watts_milli(22_000));
        assert_eq!(EnvCase::Worst.p_max(), Power::from_watts_milli(19_000));
        assert_eq!(EnvCase::Worst.p_min(), Power::from_watts_milli(9_000));
    }

    #[test]
    fn powers_increase_as_temperature_drops() {
        for f in [
            EnvCase::heating_power as fn(EnvCase) -> Power,
            EnvCase::driving_power,
            EnvCase::steering_power,
            EnvCase::hazard_power,
            EnvCase::cpu_power,
        ] {
            assert!(f(EnvCase::Best) < f(EnvCase::Typical));
            assert!(f(EnvCase::Typical) < f(EnvCase::Worst));
        }
    }

    #[test]
    fn display_mentions_temperature() {
        assert_eq!(EnvCase::Worst.to_string(), "worst (-80 °C, 9W solar)");
    }

    #[test]
    fn every_single_task_fits_under_its_budget() {
        // Sanity: no single task (plus CPU) exceeds P_max in any case,
        // otherwise the rover could not operate at all.
        for case in EnvCase::ALL {
            for p in [
                case.heating_power(),
                case.driving_power(),
                case.steering_power(),
                case.hazard_power(),
            ] {
                assert!(p + case.cpu_power() <= case.p_max(), "{case}: {p}");
            }
        }
    }
}
