//! Constraint-graph construction for the rover (Fig. 8 of the paper).
//!
//! Resource reconstruction (§6): "We assume all heaters are
//! independent resources and one heater can heat two motors at a
//! time. Therefore there are a total of five thermal heaters. Four
//! steering motors are considered a single steering mechanical
//! resource. The six wheel motors are modeled as one mechanical unit
//! for driving. There is also a laser guided digital component for
//! hazard detection." The CPU is a constant background consumer.
//!
//! Each schedule iteration moves the rover two steps: hazard →
//! steer → drive, twice, with the Table 1 windows. The five heater
//! tasks warm the motors once per iteration; their min/max windows
//! bind them to the iteration's *first* use of the steering/driving
//! motors (the reconstruction choice that reproduces the paper's JPL
//! reference metrics exactly — see DESIGN.md §3).

use crate::params::{durations, windows, EnvCase, STEPS_PER_ITERATION};
use pas_core::{PowerConstraints, Problem};
use pas_graph::units::TimeSpan;
use pas_graph::{ConstraintGraph, Resource, ResourceKind, Task, TaskId};

/// Task handles for one iteration (two steps) of the rover schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationTasks {
    /// Two steering-motor heater tasks (one heater warms two motors).
    pub heat_steering: [TaskId; 2],
    /// Three wheel-motor heater tasks.
    pub heat_wheels: [TaskId; 3],
    /// Hazard detection, steering and driving for step 1.
    pub step1: StepTasks,
    /// Hazard detection, steering and driving for step 2.
    pub step2: StepTasks,
}

/// The three mechanical/digital operations of a single step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepTasks {
    /// Laser-guided hazard detection (10 s).
    pub hazard: TaskId,
    /// Steering (5 s).
    pub steer: TaskId,
    /// Driving one step (10 s).
    pub drive: TaskId,
}

/// A fully-built rover scheduling problem.
#[derive(Debug, Clone)]
pub struct RoverProblem {
    /// The problem (graph + constraints + CPU background power).
    pub problem: Problem,
    /// Task handles per iteration.
    pub iterations: Vec<IterationTasks>,
    /// The environment case the powers were drawn from.
    pub case: EnvCase,
}

impl RoverProblem {
    /// Steps the rover completes when the whole schedule runs.
    pub fn total_steps(&self) -> u32 {
        self.iterations.len() as u32 * STEPS_PER_ITERATION
    }

    /// Per-task `(min, typical, max)` power corners across the
    /// temperature cases (best = coolest draw, worst = hottest), for
    /// the §4.1 corner analysis. Indexed by [`TaskId`].
    pub fn power_ranges(&self) -> Vec<pas_core::power_model::PowerRange> {
        use crate::params::EnvCase::{Best, Typical, Worst};
        self.problem
            .graph()
            .tasks()
            .map(|(_, task)| {
                let by_case = |case: EnvCase| {
                    let name = task.name();
                    if name.starts_with("heat") {
                        case.heating_power()
                    } else if name.starts_with("hazard") {
                        case.hazard_power()
                    } else if name.starts_with("steer") {
                        case.steering_power()
                    } else {
                        case.driving_power()
                    }
                };
                pas_core::power_model::PowerRange::new(
                    by_case(Best),
                    by_case(Typical),
                    by_case(Worst),
                )
            })
            .collect()
    }

    /// The canonical JPL serialization order (heaters, then
    /// hazard/steer/drive twice, per iteration) used by the baseline.
    pub fn jpl_order(&self) -> Vec<TaskId> {
        let mut order = Vec::new();
        for it in &self.iterations {
            order.extend_from_slice(&it.heat_steering);
            order.extend_from_slice(&it.heat_wheels);
            for step in [&it.step1, &it.step2] {
                order.push(step.hazard);
                order.push(step.steer);
                order.push(step.drive);
            }
        }
        order
    }
}

/// Builds the rover problem for `case` spanning `iterations`
/// two-step iterations.
///
/// # Panics
/// Panics if `iterations == 0`.
///
/// # Examples
/// ```
/// use pas_rover::{build_rover_problem, EnvCase};
/// let rover = build_rover_problem(EnvCase::Typical, 1);
/// assert_eq!(rover.problem.graph().num_tasks(), 11);
/// assert_eq!(rover.total_steps(), 2);
/// ```
pub fn build_rover_problem(case: EnvCase, iterations: usize) -> RoverProblem {
    assert!(iterations > 0, "at least one iteration is required");
    let mut g = ConstraintGraph::new();

    // Resources: five heaters, steering unit, driving unit, hazard
    // detector.
    let heater_s = [
        g.add_resource(Resource::new("heater-s0", ResourceKind::Thermal)),
        g.add_resource(Resource::new("heater-s1", ResourceKind::Thermal)),
    ];
    let heater_w = [
        g.add_resource(Resource::new("heater-w0", ResourceKind::Thermal)),
        g.add_resource(Resource::new("heater-w1", ResourceKind::Thermal)),
        g.add_resource(Resource::new("heater-w2", ResourceKind::Thermal)),
    ];
    let steering = g.add_resource(Resource::new("steering", ResourceKind::Mechanical));
    let driving = g.add_resource(Resource::new("driving", ResourceKind::Mechanical));
    let hazard = g.add_resource(Resource::new("hazard", ResourceKind::Compute));

    let mut its: Vec<IterationTasks> = Vec::with_capacity(iterations);
    for i in 0..iterations {
        let tag = |name: &str| {
            if iterations == 1 {
                name.to_string()
            } else {
                format!("{name}#{i}")
            }
        };
        let heat_steering = [
            g.add_task(Task::new(
                tag("heatS0"),
                heater_s[0],
                durations::HEATING,
                case.heating_power(),
            )),
            g.add_task(Task::new(
                tag("heatS1"),
                heater_s[1],
                durations::HEATING,
                case.heating_power(),
            )),
        ];
        let heat_wheels = [
            g.add_task(Task::new(
                tag("heatW0"),
                heater_w[0],
                durations::HEATING,
                case.heating_power(),
            )),
            g.add_task(Task::new(
                tag("heatW1"),
                heater_w[1],
                durations::HEATING,
                case.heating_power(),
            )),
            g.add_task(Task::new(
                tag("heatW2"),
                heater_w[2],
                durations::HEATING,
                case.heating_power(),
            )),
        ];
        let mut step = |s: usize| StepTasks {
            hazard: g.add_task(Task::new(
                tag(&format!("hazard{s}")),
                hazard,
                durations::HAZARD,
                case.hazard_power(),
            )),
            steer: g.add_task(Task::new(
                tag(&format!("steer{s}")),
                steering,
                durations::STEERING,
                case.steering_power(),
            )),
            drive: g.add_task(Task::new(
                tag(&format!("drive{s}")),
                driving,
                durations::DRIVING,
                case.driving_power(),
            )),
        };
        let step1 = step(1);
        let step2 = step(2);
        its.push(IterationTasks {
            heat_steering,
            heat_wheels,
            step1,
            step2,
        });
    }

    // Timing constraints (Table 1).
    for (i, it) in its.iter().enumerate() {
        // Heaters warm the iteration's first steering / driving.
        for &h in &it.heat_steering {
            g.min_separation(h, it.step1.steer, windows::HEAT_MIN_BEFORE);
            g.max_separation(h, it.step1.steer, windows::HEAT_MAX_BEFORE);
        }
        for &h in &it.heat_wheels {
            g.min_separation(h, it.step1.drive, windows::HEAT_MIN_BEFORE);
            g.max_separation(h, it.step1.drive, windows::HEAT_MAX_BEFORE);
        }
        // hazard → steer → drive within each step; drive → next hazard.
        for step in [&it.step1, &it.step2] {
            g.min_separation(step.hazard, step.steer, windows::HAZARD_BEFORE_STEER);
            g.min_separation(step.steer, step.drive, windows::STEER_BEFORE_DRIVE);
        }
        g.min_separation(
            it.step1.drive,
            it.step2.hazard,
            windows::DRIVE_BEFORE_HAZARD,
        );
        // Chain iterations.
        if i + 1 < its.len() {
            let next = &its[i + 1];
            g.min_separation(
                it.step2.drive,
                next.step1.hazard,
                windows::DRIVE_BEFORE_HAZARD,
            );
            // The next iteration's heaters follow this iteration's
            // heaters on the same physical heater resources; the
            // timing scheduler serializes them, no extra edges needed.
        }
    }

    let constraints = PowerConstraints::new(case.p_max(), case.p_min());
    let problem = Problem::with_background(
        format!("rover-{}-{}it", case.label(), iterations),
        g,
        constraints,
        case.cpu_power(),
    );
    RoverProblem {
        problem,
        iterations: its,
        case,
    }
}

/// Duration of a minimal (zero-separation beyond the windows)
/// hazard → steer → drive chain, for sanity checks: 10 + 5 + 10 = 25 s
/// per step when fully pipelined start-to-start.
pub fn minimal_step_span() -> TimeSpan {
    windows::HAZARD_BEFORE_STEER + windows::STEER_BEFORE_DRIVE + durations::DRIVING
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_core::Schedule;
    use pas_graph::longest_path::single_source_longest_paths;
    use pas_graph::NodeId;

    #[test]
    fn one_iteration_has_eleven_tasks_and_eight_resources() {
        let r = build_rover_problem(EnvCase::Worst, 1);
        assert_eq!(r.problem.graph().num_tasks(), 11);
        assert_eq!(r.problem.graph().num_resources(), 8);
        assert_eq!(r.total_steps(), 2);
    }

    #[test]
    fn constraints_are_feasible_in_all_cases() {
        for case in EnvCase::ALL {
            let r = build_rover_problem(case, 2);
            assert!(
                single_source_longest_paths(r.problem.graph(), NodeId::ANCHOR).is_ok(),
                "{case} must be timing-feasible"
            );
        }
    }

    #[test]
    fn asap_schedule_satisfies_table1_windows() {
        let r = build_rover_problem(EnvCase::Typical, 1);
        let lp = single_source_longest_paths(r.problem.graph(), NodeId::ANCHOR).unwrap();
        let s = Schedule::from_longest_paths(r.problem.graph(), &lp);
        let it = &r.iterations[0];
        // Steering no earlier than 10 s after hazard detection starts.
        assert!(s.start(it.step1.steer) - s.start(it.step1.hazard) >= windows::HAZARD_BEFORE_STEER);
        // Driving at least 5 s after steering starts.
        assert!(s.start(it.step1.drive) - s.start(it.step1.steer) >= windows::STEER_BEFORE_DRIVE);
        // Heaters within their 5–50 s windows before first use.
        for &h in &it.heat_wheels {
            let sep = s.start(it.step1.drive) - s.start(h);
            assert!(sep >= windows::HEAT_MIN_BEFORE && sep <= windows::HEAT_MAX_BEFORE);
        }
    }

    #[test]
    fn jpl_order_covers_every_task_once() {
        let r = build_rover_problem(EnvCase::Best, 3);
        let order = r.jpl_order();
        assert_eq!(order.len(), r.problem.graph().num_tasks());
        let mut seen = std::collections::HashSet::new();
        assert!(order.iter().all(|t| seen.insert(*t)));
    }

    #[test]
    fn task_names_are_tagged_per_iteration() {
        let r = build_rover_problem(EnvCase::Best, 2);
        let g = r.problem.graph();
        assert!(g.task_by_name("drive2#0").is_some());
        assert!(g.task_by_name("drive2#1").is_some());
        let single = build_rover_problem(EnvCase::Best, 1);
        assert!(single.problem.graph().task_by_name("drive2").is_some());
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_rejected() {
        let _ = build_rover_problem(EnvCase::Best, 0);
    }

    #[test]
    fn minimal_step_span_is_25s() {
        assert_eq!(minimal_step_span(), TimeSpan::from_secs(25));
    }
}
