//! # pas-rover — the NASA/JPL Mars Pathfinder rover model
//!
//! The paper's motivating example (§3, §6): a rover whose major power
//! consumers are mechanical and thermal subsystems, powered by a solar
//! panel (free energy) plus a non-rechargeable battery (costly
//! energy). This crate rebuilds:
//!
//! * [`EnvCase`] — the three operating points of Table 2 (solar
//!   14.9 / 12 / 9 W at −40 / −60 / −80 °C) with every task power;
//! * [`build_rover_problem`] — the Fig. 8 constraint graph: five
//!   heater resources, steering, driving, hazard detection, the
//!   Table 1 min/max windows, for any number of two-step iterations;
//! * [`jpl_schedule`] — the hand-crafted, fully-serialized baseline
//!   flown on the past mission (exactly reproduces the paper's JPL
//!   column of Table 3: 0 J/60%, 55 J/91%, 388 J/100%, τ = 75 s);
//! * [`power_aware_schedule`] / [`table3`] — our schedules and the
//!   Table 3 comparison.
//!
//! ## Example
//!
//! ```
//! use pas_core::analyze;
//! use pas_rover::{jpl_schedule, EnvCase};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (rover, schedule) = jpl_schedule(EnvCase::Worst)?;
//! let report = analyze(&rover.problem, &schedule);
//! assert_eq!(report.energy_cost.as_joules_f64(), 388.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod model;
mod params;

pub use analysis::{jpl_schedule, power_aware_schedule, table3, CaseMetrics, Table3Row};
pub use model::{build_rover_problem, minimal_step_span, IterationTasks, RoverProblem, StepTasks};
pub use params::{durations, windows, EnvCase, STEPS_PER_ITERATION};
