//! Table 3 analysis: JPL baseline vs. power-aware schedules per
//! environment case.

use crate::model::{build_rover_problem, RoverProblem};
use crate::params::EnvCase;
use pas_core::{analyze, Ratio, Schedule, ScheduleAnalysis};
use pas_graph::units::{Energy, Time};
use pas_sched::{baseline, PowerAwareScheduler, ScheduleError, SchedulerConfig};

/// The Table 3 metrics of one schedule in one case.
#[derive(Debug, Clone)]
pub struct CaseMetrics {
    /// Environment case.
    pub case: EnvCase,
    /// Scheduler label (`"jpl"` or `"power-aware"`).
    pub scheme: &'static str,
    /// Energy cost `Ec_σ(P_min)` — battery draw per iteration.
    pub energy_cost: Energy,
    /// Min-power utilization `ρ_σ(P_min)`.
    pub utilization: Ratio,
    /// Finish time `τ_σ` of one iteration (two steps).
    pub finish_time: Time,
}

/// One row of Table 3: both schemes for one case.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// The JPL fixed serial baseline.
    pub jpl: CaseMetrics,
    /// Our power-aware schedule.
    pub power_aware: CaseMetrics,
}

/// The JPL baseline schedule (fully serialized, fixed order) for one
/// iteration of `case`, with its analysis.
///
/// # Errors
/// Propagates scheduling failure (cannot happen for the rover model;
/// the serialization order is feasible by construction).
pub fn jpl_schedule(case: EnvCase) -> Result<(RoverProblem, Schedule), ScheduleError> {
    let mut rover = build_rover_problem(case, 1);
    let order = rover.jpl_order();
    let schedule = baseline::fully_serialized(rover.problem.graph_mut(), &order)?;
    Ok((rover, schedule))
}

/// The power-aware schedule for one iteration of `case` (full
/// three-stage pipeline).
///
/// # Errors
/// Propagates scheduling failure.
pub fn power_aware_schedule(
    case: EnvCase,
    config: &SchedulerConfig,
) -> Result<(RoverProblem, Schedule), ScheduleError> {
    let mut rover = build_rover_problem(case, 1);
    let outcome = PowerAwareScheduler::new(config.clone()).schedule(&mut rover.problem)?;
    Ok((rover, outcome.schedule))
}

fn metrics(case: EnvCase, scheme: &'static str, analysis: &ScheduleAnalysis) -> CaseMetrics {
    CaseMetrics {
        case,
        scheme,
        energy_cost: analysis.energy_cost,
        utilization: analysis.utilization,
        finish_time: analysis.finish_time,
    }
}

/// Computes the full Table 3: both schemes across the three cases.
///
/// # Errors
/// Propagates scheduling failure from either scheme.
pub fn table3(config: &SchedulerConfig) -> Result<Vec<Table3Row>, ScheduleError> {
    EnvCase::ALL
        .into_iter()
        .map(|case| {
            let (jp, js) = jpl_schedule(case)?;
            let ja = analyze(&jp.problem, &js);
            let (pp, ps) = power_aware_schedule(case, config)?;
            let pa = analyze(&pp.problem, &ps);
            Ok(Table3Row {
                jpl: metrics(case, "jpl", &ja),
                power_aware: metrics(case, "power-aware", &pa),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_core::is_time_valid;
    use pas_graph::units::Power;

    /// The paper's Table 3, JPL columns — these are *exact* targets
    /// derived from Tables 1–2 (see DESIGN.md §3).
    #[test]
    fn jpl_metrics_match_table3_exactly() {
        let expect = [
            (EnvCase::Best, 0i64, Ratio::new(2690, 4470), 75i64),
            (EnvCase::Typical, 55_000, Ratio::new(817, 900), 75),
            (EnvCase::Worst, 388_000, Ratio::ONE, 75),
        ];
        for (case, ec_mj, rho, tau) in expect {
            let (p, s) = jpl_schedule(case).unwrap();
            let a = analyze(&p.problem, &s);
            assert!(a.is_valid(), "{case}: JPL schedule must be valid");
            assert_eq!(
                a.energy_cost,
                Energy::from_millijoules(ec_mj),
                "{case} energy"
            );
            assert_eq!(a.utilization, rho, "{case} utilization");
            assert_eq!(a.finish_time, Time::from_secs(tau), "{case} finish");
        }
    }

    /// Paper Table 3 prints 60% / 91% / 100%; check our exact ratios
    /// round to the same figures.
    #[test]
    fn jpl_utilization_rounds_to_paper_percentages() {
        let shown: Vec<String> = EnvCase::ALL
            .into_iter()
            .map(|c| {
                let (p, s) = jpl_schedule(c).unwrap();
                analyze(&p.problem, &s).utilization.to_string()
            })
            .collect();
        assert_eq!(shown, vec!["60.2%", "90.8%", "100%"]);
    }

    #[test]
    fn jpl_peak_power_never_exceeds_budget() {
        for case in EnvCase::ALL {
            let (p, s) = jpl_schedule(case).unwrap();
            let a = analyze(&p.problem, &s);
            assert!(a.peak_power <= case.p_max());
            // The JPL design is low-power: one consumer at a time, so
            // the peak is the largest single task plus the CPU.
            let biggest = case
                .driving_power()
                .max(case.heating_power())
                .max(case.steering_power())
                .max(case.hazard_power());
            assert!(a.peak_power <= biggest + case.cpu_power());
        }
    }

    #[test]
    fn power_aware_is_valid_and_no_slower_than_jpl() {
        let cfg = SchedulerConfig::default();
        for case in EnvCase::ALL {
            let (p, s) = power_aware_schedule(case, &cfg).unwrap();
            let a = analyze(&p.problem, &s);
            assert!(a.is_valid(), "{case}: power-aware schedule invalid");
            assert!(is_time_valid(p.problem.graph(), &s));
            assert!(
                a.finish_time <= Time::from_secs(75),
                "{case}: power-aware must not be slower than the serial baseline, got {}",
                a.finish_time
            );
        }
    }

    #[test]
    fn power_aware_beats_jpl_in_the_best_case() {
        // The headline claim: with free solar power the rover can
        // overlap operations and finish faster.
        let cfg = SchedulerConfig::default();
        let (p, s) = power_aware_schedule(EnvCase::Best, &cfg).unwrap();
        let a = analyze(&p.problem, &s);
        assert!(
            a.finish_time < Time::from_secs(75),
            "best case should be faster than serial, got {}",
            a.finish_time
        );
    }

    #[test]
    fn worst_case_power_budget_forces_serial_behaviour() {
        // In the worst case no two major consumers fit under 19 W, so
        // peak power stays at the serial level.
        let cfg = SchedulerConfig::default();
        let (p, s) = power_aware_schedule(EnvCase::Worst, &cfg).unwrap();
        let a = analyze(&p.problem, &s);
        assert!(a.peak_power <= Power::from_watts_milli(19_000));
        assert_eq!(a.finish_time, Time::from_secs(75));
    }

    #[test]
    fn table3_has_three_rows_and_consistent_cases() {
        let rows = table3(&SchedulerConfig::default()).unwrap();
        assert_eq!(rows.len(), 3);
        for (row, case) in rows.iter().zip(EnvCase::ALL) {
            assert_eq!(row.jpl.case, case);
            assert_eq!(row.power_aware.case, case);
            assert_eq!(row.jpl.scheme, "jpl");
        }
    }
}
