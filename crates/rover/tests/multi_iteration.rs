//! Multi-iteration rover schedules: chaining invariants across
//! environment cases.

use pas_core::analyze;
use pas_graph::units::TimeSpan;
use pas_rover::{build_rover_problem, EnvCase, STEPS_PER_ITERATION};
use pas_sched::PowerAwareScheduler;

/// Chained iterations are never slower per iteration than standalone
/// ones (the scheduler may overlap heating across the boundary, and
/// compaction removes idle seams).
#[test]
fn chaining_never_hurts_throughput() {
    for case in EnvCase::ALL {
        let mut one = build_rover_problem(case, 1);
        let t1 = PowerAwareScheduler::default()
            .schedule(&mut one.problem)
            .unwrap()
            .analysis
            .finish_time;
        let mut two = build_rover_problem(case, 2);
        let t2 = PowerAwareScheduler::default()
            .schedule(&mut two.problem)
            .unwrap()
            .analysis
            .finish_time;
        assert!(
            t2 - t1 <= t1.since_origin(),
            "{case}: marginal iteration ({}) slower than standalone ({})",
            t2 - t1,
            t1
        );
        assert!(t2 > t1, "{case}: two iterations must take longer than one");
    }
}

/// Every multi-iteration schedule remains valid with the iteration
/// count it claims, and drives the expected distance.
#[test]
fn three_iterations_stay_valid_in_every_case() {
    for case in EnvCase::ALL {
        let mut rover = build_rover_problem(case, 3);
        assert_eq!(rover.total_steps(), 3 * STEPS_PER_ITERATION);
        let outcome = PowerAwareScheduler::default()
            .schedule(&mut rover.problem)
            .unwrap();
        assert!(outcome.analysis.is_valid(), "{case}");
        // Steps execute in order: iteration k's first drive precedes
        // iteration k+1's first hazard scan.
        let s = &outcome.schedule;
        for w in rover.iterations.windows(2) {
            assert!(
                s.start(w[1].step1.hazard) - s.start(w[0].step2.drive) >= TimeSpan::from_secs(10),
                "{case}: iteration chaining separation violated"
            );
        }
    }
}

/// The worst case is exactly periodic: N iterations take N × 75 s and
/// cost N × 388 J — the fixed serial pattern the paper's rover flew.
#[test]
fn worst_case_is_exactly_periodic() {
    for n in 1..=3usize {
        let mut rover = build_rover_problem(EnvCase::Worst, n);
        let outcome = PowerAwareScheduler::default()
            .schedule(&mut rover.problem)
            .unwrap();
        let a = analyze(&rover.problem, &outcome.schedule);
        assert_eq!(a.finish_time.as_secs(), 75 * n as i64, "n={n}");
        assert_eq!(a.energy_cost.as_millijoules(), 388_000 * n as i64, "n={n}");
        assert!(a.utilization.is_one(), "n={n}");
    }
}

/// Power ranges cover every task and order correctly across cases.
#[test]
fn power_ranges_cover_and_order() {
    use pas_core::power_model::Corner;
    let rover = build_rover_problem(EnvCase::Typical, 2);
    let ranges = rover.power_ranges();
    assert_eq!(ranges.len(), rover.problem.graph().num_tasks());
    for ((_, task), range) in rover.problem.graph().tasks().zip(&ranges) {
        assert_eq!(
            range.at(Corner::Typical),
            task.power(),
            "typical corner must equal the built power for {}",
            task.name()
        );
        assert!(range.at(Corner::Min) <= range.at(Corner::Max));
    }
}
