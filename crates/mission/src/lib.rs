//! # pas-mission — the Table 4 mission scenario simulator
//!
//! §6 of the DAC 2001 paper evaluates the power-aware schedules on a
//! mission: travel 48 steps while the solar output decays
//! 14.9 → 12 → 9 W at 10-minute boundaries. The JPL baseline drives a
//! fixed 75 s serial iteration regardless of the environment; the
//! power-aware rover selects the per-case schedule quasi-statically
//! and therefore front-loads distance into the phases where energy is
//! free — finishing both faster *and* cheaper.
//!
//! * [`SolarTimeline`] — the piecewise environment;
//! * [`Battery`] — non-rechargeable energy accounting;
//! * [`MissionPlan`] / [`jpl_plan`] / [`power_aware_plan`] — per-case
//!   iteration costs (with the paper's loop-unrolling amortization as
//!   the initial/steady split, plus a no-chaining ablation);
//! * [`simulate`] — executes a [`Scenario`] and produces the Table 4
//!   rows.
//!
//! ## Example
//!
//! ```
//! use pas_mission::{jpl_plan, power_aware_plan, simulate, Scenario};
//! use pas_sched::SchedulerConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = Scenario::table4();
//! let jpl = simulate(&scenario, &jpl_plan()?);
//! let ours = simulate(&scenario, &power_aware_plan(&SchedulerConfig::default())?);
//! assert!(ours.total_time < jpl.total_time);
//! assert!(ours.total_cost < jpl.total_cost);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod battery;
mod plan;
mod sim;
mod solar;

pub use battery::Battery;
pub use plan::{
    jpl_plan, power_aware_plan, power_aware_plan_standalone, CasePlan, IterationCost, MissionPlan,
};
pub use sim::{
    improvement_percent, minimum_battery, simulate, MissionReport, PhaseReport, Scenario,
};
pub use solar::SolarTimeline;
