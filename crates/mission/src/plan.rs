//! Mission plans: per-case iteration costs for a schedule policy.
//!
//! A *plan* answers, for every environment case, "how long does one
//! two-step iteration take and how much battery does it cost?". Two
//! figures are kept per case:
//!
//! * **initial** — a cold iteration (nothing pre-heated);
//! * **steady** — a follow-on iteration chained directly behind the
//!   previous one, which can amortize work (the paper's "the second
//!   iteration can be repeated with less energy cost", §6).
//!
//! For the JPL baseline the two are identical: its fixed serial
//! schedule never overlaps iterations.

use pas_core::analyze;
use pas_graph::units::{Energy, TimeSpan};
use pas_rover::{build_rover_problem, jpl_schedule, EnvCase, STEPS_PER_ITERATION};
use pas_sched::{PowerAwareScheduler, ScheduleError, SchedulerConfig};

/// Duration and battery cost of one rover iteration (two steps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterationCost {
    /// Wall-clock duration of the iteration.
    pub duration: TimeSpan,
    /// Battery energy drawn (`Ec_σ(P_min)` at the case's solar level).
    pub battery_cost: Energy,
}

/// Iteration costs for one environment case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CasePlan {
    /// First iteration after an idle period or a case change.
    pub initial: IterationCost,
    /// Each directly-chained subsequent iteration.
    pub steady: IterationCost,
}

/// A complete mission plan: one [`CasePlan`] per environment case,
/// plus a label for reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissionPlan {
    label: &'static str,
    plans: [CasePlan; 3],
}

impl MissionPlan {
    /// Builds a plan from explicit per-case costs (ordered as
    /// [`EnvCase::ALL`]).
    pub fn from_parts(label: &'static str, plans: [CasePlan; 3]) -> Self {
        MissionPlan { label, plans }
    }

    /// The plan's display label.
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// The per-case costs.
    pub fn case_plan(&self, case: EnvCase) -> CasePlan {
        let idx = EnvCase::ALL
            .iter()
            .position(|&c| c == case)
            .expect("EnvCase::ALL covers every case");
        self.plans[idx]
    }

    /// Steps per iteration (constant: 2).
    pub fn steps_per_iteration(&self) -> u32 {
        STEPS_PER_ITERATION
    }
}

/// The JPL baseline plan: the fixed, fully-serialized 75 s schedule in
/// every case; initial and steady iterations are identical.
///
/// # Errors
/// Propagates scheduling failure (cannot happen for the rover model).
pub fn jpl_plan() -> Result<MissionPlan, ScheduleError> {
    let mut plans = Vec::with_capacity(3);
    for case in EnvCase::ALL {
        let (rover, schedule) = jpl_schedule(case)?;
        let a = analyze(&rover.problem, &schedule);
        let cost = IterationCost {
            duration: a.finish_time.since_origin(),
            battery_cost: a.energy_cost,
        };
        plans.push(CasePlan {
            initial: cost,
            steady: cost,
        });
    }
    Ok(MissionPlan::from_parts(
        "jpl",
        [plans[0], plans[1], plans[2]],
    ))
}

/// The power-aware plan: per case, the pipeline schedules one
/// iteration (initial cost) and two chained iterations (whose
/// difference is the steady-state cost — the paper's unrolled loop).
///
/// # Errors
/// Propagates scheduling failure from the pipeline.
pub fn power_aware_plan(config: &SchedulerConfig) -> Result<MissionPlan, ScheduleError> {
    let scheduler = PowerAwareScheduler::new(config.clone());
    let mut plans = Vec::with_capacity(3);
    for case in EnvCase::ALL {
        let mut one = build_rover_problem(case, 1);
        let o1 = scheduler.schedule(&mut one.problem)?;
        let a1 = analyze(&one.problem, &o1.schedule);

        let mut two = build_rover_problem(case, 2);
        let o2 = scheduler.schedule(&mut two.problem)?;
        let a2 = analyze(&two.problem, &o2.schedule);

        let initial = IterationCost {
            duration: a1.finish_time.since_origin(),
            battery_cost: a1.energy_cost,
        };
        let marginal_duration = a2.finish_time - a1.finish_time;
        let marginal_cost = a2.energy_cost - a1.energy_cost;
        // Guard against a pathological 2-iteration schedule that is
        // worse than repeating the 1-iteration one.
        let steady = if marginal_duration.is_positive() && marginal_duration <= initial.duration {
            IterationCost {
                duration: marginal_duration,
                battery_cost: marginal_cost.max(Energy::ZERO),
            }
        } else {
            initial
        };
        plans.push(CasePlan { initial, steady });
    }
    Ok(MissionPlan::from_parts(
        "power-aware",
        [plans[0], plans[1], plans[2]],
    ))
}

/// Ablation: the power-aware plan without iteration chaining (steady
/// = initial). Isolates the benefit of the paper's loop unrolling.
///
/// # Errors
/// Propagates scheduling failure from the pipeline.
pub fn power_aware_plan_standalone(config: &SchedulerConfig) -> Result<MissionPlan, ScheduleError> {
    let full = power_aware_plan(config)?;
    let mk = |case| {
        let cp: CasePlan = full.case_plan(case);
        CasePlan {
            initial: cp.initial,
            steady: cp.initial,
        }
    };
    Ok(MissionPlan::from_parts(
        "power-aware-standalone",
        [mk(EnvCase::Best), mk(EnvCase::Typical), mk(EnvCase::Worst)],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_graph::units::Energy;

    #[test]
    fn jpl_plan_matches_table3() {
        let plan = jpl_plan().unwrap();
        let best = plan.case_plan(EnvCase::Best);
        assert_eq!(best.initial.duration, TimeSpan::from_secs(75));
        assert_eq!(best.initial.battery_cost, Energy::ZERO);
        assert_eq!(best.initial, best.steady);
        let worst = plan.case_plan(EnvCase::Worst);
        assert_eq!(worst.initial.battery_cost, Energy::from_joules(388));
    }

    #[test]
    fn power_aware_plan_is_never_slower_than_jpl() {
        let pa = power_aware_plan(&SchedulerConfig::default()).unwrap();
        let jpl = jpl_plan().unwrap();
        for case in EnvCase::ALL {
            assert!(
                pa.case_plan(case).initial.duration <= jpl.case_plan(case).initial.duration,
                "{case}"
            );
            assert!(
                pa.case_plan(case).steady.duration <= jpl.case_plan(case).steady.duration,
                "{case}"
            );
        }
    }

    #[test]
    fn best_case_steady_iteration_is_much_cheaper() {
        // The paper's unrolling effect: after the first iteration the
        // heaters ride the free solar window of the previous one.
        let pa = power_aware_plan(&SchedulerConfig::default()).unwrap();
        let best = pa.case_plan(EnvCase::Best);
        assert!(
            best.steady.battery_cost < best.initial.battery_cost,
            "steady {} vs initial {}",
            best.steady.battery_cost,
            best.initial.battery_cost
        );
    }

    #[test]
    fn standalone_ablation_has_equal_costs() {
        let p = power_aware_plan_standalone(&SchedulerConfig::default()).unwrap();
        for case in EnvCase::ALL {
            assert_eq!(p.case_plan(case).initial, p.case_plan(case).steady);
        }
        assert_eq!(p.label(), "power-aware-standalone");
    }
}
