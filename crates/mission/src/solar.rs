//! Time-varying solar environment.

use pas_graph::units::{Power, Time};
use pas_rover::EnvCase;

/// A piecewise-constant environment timeline: the case in force as a
/// function of mission time ("the mission starts with maximum solar
/// power at 14.9 W. Then, it drops to 12 W after 10 minutes, then
/// falls to the worst case at 9 W 10 minutes later", §6).
///
/// # Examples
/// ```
/// use pas_graph::units::Time;
/// use pas_mission::SolarTimeline;
/// use pas_rover::EnvCase;
///
/// let timeline = SolarTimeline::table4();
/// assert_eq!(timeline.case_at(Time::from_secs(0)), EnvCase::Best);
/// assert_eq!(timeline.case_at(Time::from_secs(600)), EnvCase::Typical);
/// assert_eq!(timeline.case_at(Time::from_secs(5000)), EnvCase::Worst);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolarTimeline {
    /// `(phase start, case)`, sorted by start; the first phase must
    /// start at time 0 and the last extends forever.
    phases: Vec<(Time, EnvCase)>,
}

impl SolarTimeline {
    /// Builds a timeline from `(start, case)` pairs.
    ///
    /// # Panics
    /// Panics if `phases` is empty, does not start at time 0, or is
    /// not strictly increasing in start time.
    pub fn new(phases: Vec<(Time, EnvCase)>) -> Self {
        assert!(!phases.is_empty(), "timeline needs at least one phase");
        assert_eq!(phases[0].0, Time::ZERO, "first phase must start at 0");
        assert!(
            phases.windows(2).all(|w| w[0].0 < w[1].0),
            "phase starts must be strictly increasing"
        );
        SolarTimeline { phases }
    }

    /// The Table 4 scenario: best for 10 minutes, typical for 10
    /// minutes, then worst until the mission ends.
    pub fn table4() -> Self {
        SolarTimeline::new(vec![
            (Time::ZERO, EnvCase::Best),
            (Time::from_secs(600), EnvCase::Typical),
            (Time::from_secs(1200), EnvCase::Worst),
        ])
    }

    /// Quantizes raw solar-output samples into a case timeline: each
    /// sample maps to the most capable case its wattage supports
    /// (via [`EnvCase::for_solar`]); consecutive equal cases merge.
    ///
    /// # Errors
    /// Returns the offending `(time, power)` when a sample is below
    /// the worst-case solar level (night — no case can run).
    ///
    /// # Panics
    /// Panics if `samples` is empty, does not start at time 0, or is
    /// not strictly increasing in time.
    ///
    /// # Examples
    /// ```
    /// use pas_graph::units::{Power, Time};
    /// use pas_mission::SolarTimeline;
    /// use pas_rover::EnvCase;
    /// let tl = SolarTimeline::from_samples(&[
    ///     (Time::ZERO, Power::from_watts_milli(9_500)),
    ///     (Time::from_secs(300), Power::from_watts_milli(13_200)),
    ///     (Time::from_secs(600), Power::from_watts_milli(15_000)),
    /// ]).unwrap();
    /// assert_eq!(tl.case_at(Time::from_secs(400)), EnvCase::Typical);
    /// ```
    pub fn from_samples(samples: &[(Time, Power)]) -> Result<Self, (Time, Power)> {
        assert!(!samples.is_empty(), "timeline needs at least one sample");
        assert_eq!(samples[0].0, Time::ZERO, "first sample must be at time 0");
        assert!(
            samples.windows(2).all(|w| w[0].0 < w[1].0),
            "sample times must be strictly increasing"
        );
        let mut phases: Vec<(Time, EnvCase)> = Vec::new();
        for &(t, p) in samples {
            let case = EnvCase::for_solar(p).ok_or((t, p))?;
            if phases.last().map(|&(_, c)| c) != Some(case) {
                phases.push((t, case));
            }
        }
        Ok(SolarTimeline::new(phases))
    }

    /// The environment case in force at instant `t` (clamped to the
    /// first phase for negative `t`).
    pub fn case_at(&self, t: Time) -> EnvCase {
        let mut current = self.phases[0].1;
        for &(start, case) in &self.phases {
            if t >= start {
                current = case;
            } else {
                break;
            }
        }
        current
    }

    /// The solar output at instant `t`.
    pub fn solar_at(&self, t: Time) -> Power {
        self.case_at(t).solar_power()
    }

    /// Iterates the `(start, case)` phases.
    pub fn phases(&self) -> impl Iterator<Item = (Time, EnvCase)> + '_ {
        self.phases.iter().copied()
    }

    /// Start of the phase following the one containing `t`, if any.
    pub fn next_phase_start(&self, t: Time) -> Option<Time> {
        self.phases.iter().map(|&(s, _)| s).find(|&s| s > t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_boundaries() {
        let tl = SolarTimeline::table4();
        assert_eq!(tl.case_at(Time::from_secs(599)), EnvCase::Best);
        assert_eq!(tl.case_at(Time::from_secs(600)), EnvCase::Typical);
        assert_eq!(tl.case_at(Time::from_secs(1199)), EnvCase::Typical);
        assert_eq!(tl.case_at(Time::from_secs(1200)), EnvCase::Worst);
        assert_eq!(tl.solar_at(Time::ZERO), Power::from_watts_milli(14_900));
        assert_eq!(tl.next_phase_start(Time::ZERO), Some(Time::from_secs(600)));
        assert_eq!(
            tl.next_phase_start(Time::from_secs(600)),
            Some(Time::from_secs(1200))
        );
        assert_eq!(tl.next_phase_start(Time::from_secs(1200)), None);
        assert_eq!(tl.phases().count(), 3);
    }

    #[test]
    fn from_samples_quantizes_and_merges() {
        let tl = SolarTimeline::from_samples(&[
            (Time::ZERO, Power::from_watts_milli(9_100)),
            (Time::from_secs(100), Power::from_watts_milli(10_000)), // still worst
            (Time::from_secs(200), Power::from_watts_milli(12_000)),
            (Time::from_secs(300), Power::from_watts_milli(14_900)),
            (Time::from_secs(400), Power::from_watts_milli(20_000)), // clamps to best
        ])
        .unwrap();
        assert_eq!(tl.phases().count(), 3, "adjacent equal cases merge");
        assert_eq!(tl.case_at(Time::from_secs(150)), EnvCase::Worst);
        assert_eq!(tl.case_at(Time::from_secs(250)), EnvCase::Typical);
        assert_eq!(tl.case_at(Time::from_secs(450)), EnvCase::Best);
    }

    #[test]
    fn from_samples_rejects_night() {
        let err = SolarTimeline::from_samples(&[
            (Time::ZERO, Power::from_watts_milli(9_000)),
            (Time::from_secs(10), Power::from_watts_milli(2_000)),
        ])
        .unwrap_err();
        assert_eq!(err.0, Time::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "first phase must start at 0")]
    fn late_first_phase_rejected() {
        let _ = SolarTimeline::new(vec![(Time::from_secs(5), EnvCase::Best)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_phases_rejected() {
        let _ = SolarTimeline::new(vec![
            (Time::ZERO, EnvCase::Best),
            (Time::ZERO, EnvCase::Worst),
        ]);
    }
}
