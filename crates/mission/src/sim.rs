//! The mission simulator (Table 4 of the paper).
//!
//! "Suppose the mission is to travel to a target location in a
//! distance of 48 steps" under the Table 4 solar timeline. The
//! simulator executes iterations back to back, re-reading the
//! environment at each iteration start (the quasi-static runtime
//! scheduling of §5.3: the statically computed per-case schedules are
//! selected by the dynamically changing constraints).

use crate::battery::Battery;
use crate::plan::MissionPlan;
use crate::solar::SolarTimeline;
use pas_graph::units::{Energy, Time, TimeSpan};
use pas_rover::EnvCase;

/// A mission: reach `target_steps` under `timeline`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// The environment timeline.
    pub timeline: SolarTimeline,
    /// Distance to travel, in wheel steps (≈7 cm each).
    pub target_steps: u32,
    /// Battery energy available for the whole mission.
    pub battery: Battery,
}

impl Scenario {
    /// The paper's Table 4 case study: 48 steps, solar
    /// 14.9 → 12 → 9 W at 10-minute boundaries, ample battery.
    pub fn table4() -> Scenario {
        Scenario {
            timeline: SolarTimeline::table4(),
            target_steps: 48,
            battery: Battery::new(Energy::from_joules(150_000)),
        }
    }
}

/// Aggregated activity within one environment phase (a Table 4 row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseReport {
    /// The case in force.
    pub case: EnvCase,
    /// First iteration start inside this phase.
    pub start: Time,
    /// End of the last iteration inside this phase.
    pub end: Time,
    /// Steps travelled.
    pub steps: u32,
    /// Time spent executing iterations.
    pub time_spent: TimeSpan,
    /// Battery energy drawn.
    pub battery_cost: Energy,
}

/// The simulation outcome (all Table 4 rows plus totals).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissionReport {
    /// Which plan produced this run.
    pub plan_label: String,
    /// Per-phase rows in execution order.
    pub phases: Vec<PhaseReport>,
    /// Total steps travelled.
    pub total_steps: u32,
    /// Mission completion time (when the last iteration finished).
    pub total_time: TimeSpan,
    /// Total battery energy drawn.
    pub total_cost: Energy,
    /// `true` when the target distance was reached before the battery
    /// ran out.
    pub completed: bool,
}

/// Runs `plan` against `scenario`.
///
/// Iterations execute back to back; the environment case is sampled
/// at each iteration's start. The first iteration in a new phase (or
/// after a depleted pause — which does not occur in the paper's
/// scenario) pays the plan's *initial* cost; directly-chained
/// same-case iterations pay the *steady* cost.
///
/// # Examples
/// ```
/// use pas_mission::{jpl_plan, simulate, Scenario};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let report = simulate(&Scenario::table4(), &jpl_plan()?);
/// assert_eq!(report.total_steps, 48);
/// assert_eq!(report.total_time.as_secs(), 1800); // the paper's 30 min
/// # Ok(())
/// # }
/// ```
pub fn simulate(scenario: &Scenario, plan: &MissionPlan) -> MissionReport {
    let mut battery = scenario.battery;
    let mut t = Time::ZERO;
    let mut steps = 0u32;
    let mut phases: Vec<PhaseReport> = Vec::new();
    let mut last_case: Option<EnvCase> = None;
    let mut completed = true;

    while steps < scenario.target_steps {
        let case = scenario.timeline.case_at(t);
        let chained = last_case == Some(case);
        let cp = plan.case_plan(case);
        let cost = if chained { cp.steady } else { cp.initial };

        if !battery.drain(cost.battery_cost) {
            completed = false;
            break;
        }

        let end = t + cost.duration;
        match phases.last_mut() {
            Some(ph) if ph.case == case => {
                ph.end = end;
                ph.steps += plan.steps_per_iteration();
                ph.time_spent += cost.duration;
                ph.battery_cost += cost.battery_cost;
            }
            _ => phases.push(PhaseReport {
                case,
                start: t,
                end,
                steps: plan.steps_per_iteration(),
                time_spent: cost.duration,
                battery_cost: cost.battery_cost,
            }),
        }
        steps += plan.steps_per_iteration();
        t = end;
        last_case = Some(case);
    }

    MissionReport {
        plan_label: plan.label().to_string(),
        phases,
        total_steps: steps,
        total_time: t.since_origin(),
        total_cost: battery.used(),
        completed,
    }
}

/// The smallest battery capacity with which `plan` completes
/// `scenario` (its battery field is ignored). Because iteration costs
/// are fixed per (case, chained) pair, this is exactly the total cost
/// of an amply-powered run — but computing it through the simulator
/// keeps it correct if the policy model grows battery-dependent
/// behaviour.
///
/// Returns `None` when even an unlimited battery cannot finish (the
/// plan makes no forward progress).
///
/// # Examples
/// ```
/// use pas_mission::{jpl_plan, minimum_battery, Scenario};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let need = minimum_battery(&Scenario::table4(), &jpl_plan()?).unwrap();
/// assert_eq!(need.as_joules_f64(), 3544.0);
/// # Ok(())
/// # }
/// ```
pub fn minimum_battery(scenario: &Scenario, plan: &MissionPlan) -> Option<Energy> {
    let mut ample = scenario.clone();
    ample.battery = Battery::new(Energy::from_millijoules(i64::MAX / 4));
    let report = simulate(&ample, plan);
    if report.completed {
        Some(report.total_cost)
    } else {
        None
    }
}

/// Relative improvement of `ours` over `baseline`, in percent, using
/// the paper's convention `(baseline − ours) / ours × 100` (Table 4
/// reports 33.3% time and 32.7% energy improvements this way).
pub fn improvement_percent(baseline: i64, ours: i64) -> f64 {
    if ours == 0 {
        return f64::INFINITY;
    }
    (baseline - ours) as f64 / ours as f64 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{jpl_plan, power_aware_plan};
    use pas_sched::SchedulerConfig;

    #[test]
    fn jpl_reproduces_table4_baseline_exactly() {
        let report = simulate(&Scenario::table4(), &jpl_plan().unwrap());
        assert!(report.completed);
        assert_eq!(report.total_steps, 48);
        assert_eq!(report.total_time, TimeSpan::from_secs(1800));
        // Paper: 0 + 440 + 3114 ≈ 3554 J. Our exact model gives
        // 8 iterations per phase at 0 / 55 / 388 J.
        assert_eq!(report.total_cost, Energy::from_joules(8 * 55 + 8 * 388));
        assert_eq!(report.phases.len(), 3);
        for ph in &report.phases {
            assert_eq!(ph.steps, 16);
            assert_eq!(ph.time_spent, TimeSpan::from_secs(600));
        }
    }

    #[test]
    fn power_aware_wins_both_time_and_energy() {
        let jpl = simulate(&Scenario::table4(), &jpl_plan().unwrap());
        let pa = simulate(
            &Scenario::table4(),
            &power_aware_plan(&SchedulerConfig::default()).unwrap(),
        );
        assert!(pa.completed);
        assert_eq!(pa.total_steps, 48);
        assert!(
            pa.total_time < jpl.total_time,
            "power-aware {} vs jpl {}",
            pa.total_time,
            jpl.total_time
        );
        assert!(
            pa.total_cost < jpl.total_cost,
            "power-aware {} vs jpl {}",
            pa.total_cost,
            jpl.total_cost
        );
    }

    #[test]
    fn power_aware_front_loads_distance_into_cheap_phases() {
        let pa = simulate(
            &Scenario::table4(),
            &power_aware_plan(&SchedulerConfig::default()).unwrap(),
        );
        // At least as much distance in the best phase as in any later
        // phase ("the rover finishes 50% of its work in the first 10
        // minutes"), and at least the paper's 24 steps there.
        assert_eq!(pa.phases[0].case, EnvCase::Best);
        assert!(pa.phases[0].steps >= 24, "got {}", pa.phases[0].steps);
        for ph in &pa.phases[1..] {
            assert!(ph.steps <= pa.phases[0].steps);
        }
    }

    #[test]
    fn depleted_battery_aborts_the_mission() {
        let mut scenario = Scenario::table4();
        scenario.battery = Battery::new(Energy::from_joules(100));
        let report = simulate(&scenario, &jpl_plan().unwrap());
        assert!(!report.completed);
        assert!(report.total_steps < 48);
        // Phase 1 is free for JPL; it dies somewhere in phase 2.
        assert!(report.total_cost <= Energy::from_joules(100));
    }

    #[test]
    fn minimum_battery_sizes_the_missions() {
        let jpl = minimum_battery(&Scenario::table4(), &jpl_plan().unwrap()).unwrap();
        assert_eq!(jpl, Energy::from_joules(3_544));
        let pa = minimum_battery(
            &Scenario::table4(),
            &power_aware_plan(&SchedulerConfig::default()).unwrap(),
        )
        .unwrap();
        assert!(pa < jpl, "power-aware missions need a smaller battery");
        // And exactly that much completes while one millijoule less
        // strands the rover.
        let mut s = Scenario::table4();
        s.battery = Battery::new(jpl);
        assert!(simulate(&s, &jpl_plan().unwrap()).completed);
        s.battery = Battery::new(jpl - Energy::from_millijoules(1));
        assert!(!simulate(&s, &jpl_plan().unwrap()).completed);
    }

    #[test]
    fn improvement_percent_matches_paper_convention() {
        // Paper: 1800 s vs 1350 s → 33.3%.
        let x = improvement_percent(1800, 1350);
        assert!((x - 33.333).abs() < 0.01, "{x}");
        assert!(improvement_percent(1, 0).is_infinite());
    }
}
