//! The rover's non-rechargeable battery.
//!
//! "Its power sources consist of a non-rechargeable battery and a
//! solar panel. The life-time of its mission is limited by the amount
//! of remaining battery energy" (§3). Excess solar power cannot be
//! stored — which is exactly why the min power constraint exists.

use pas_graph::units::Energy;

/// A non-rechargeable battery: energy only ever flows out.
///
/// # Examples
/// ```
/// use pas_graph::units::Energy;
/// use pas_mission::Battery;
///
/// let mut b = Battery::new(Energy::from_joules(100));
/// assert!(b.drain(Energy::from_joules(40)));
/// assert_eq!(b.remaining(), Energy::from_joules(60));
/// assert!(!b.drain(Energy::from_joules(100)), "would over-drain");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Battery {
    capacity: Energy,
    drained: Energy,
}

impl Battery {
    /// A fresh battery holding `capacity`.
    ///
    /// # Panics
    /// Panics if `capacity` is negative.
    pub fn new(capacity: Energy) -> Self {
        assert!(
            capacity >= Energy::ZERO,
            "battery capacity must be non-negative"
        );
        Battery {
            capacity,
            drained: Energy::ZERO,
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> Energy {
        self.capacity
    }

    /// Energy drawn so far.
    pub fn used(&self) -> Energy {
        self.drained
    }

    /// Energy still available.
    pub fn remaining(&self) -> Energy {
        self.capacity - self.drained
    }

    /// `true` when nothing is left.
    pub fn is_depleted(&self) -> bool {
        self.remaining() == Energy::ZERO
    }

    /// Attempts to draw `amount`. Returns `false` (drawing nothing)
    /// when the remaining energy is insufficient.
    ///
    /// # Panics
    /// Panics if `amount` is negative (this battery cannot charge).
    pub fn drain(&mut self, amount: Energy) -> bool {
        assert!(
            amount >= Energy::ZERO,
            "cannot charge a non-rechargeable battery"
        );
        if amount > self.remaining() {
            return false;
        }
        self.drained += amount;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let mut b = Battery::new(Energy::from_joules(10));
        assert_eq!(b.capacity(), Energy::from_joules(10));
        assert!(b.drain(Energy::from_joules(10)));
        assert!(b.is_depleted());
        assert_eq!(b.used(), Energy::from_joules(10));
        assert!(!b.drain(Energy::from_millijoules(1)));
        assert!(b.drain(Energy::ZERO), "zero drain always succeeds");
    }

    #[test]
    #[should_panic(expected = "cannot charge")]
    fn charging_rejected() {
        let mut b = Battery::new(Energy::from_joules(1));
        let _ = b.drain(Energy::from_millijoules(-1));
    }
}
