//! The [`Observer`] trait and the built-in observer implementations.
//!
//! Schedulers are generic over `O: Observer` so the disabled path
//! monomorphizes away: [`NullObserver::is_enabled`] is a constant
//! `false`, emission sites guard on it, and the optimizer removes
//! event construction entirely.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::event::TraceEvent;

/// Sink for [`TraceEvent`]s emitted by the scheduling pipeline.
///
/// Implementations must be cheap: they run inside the schedulers'
/// inner loops. Heavyweight sinks should buffer (see
/// [`crate::JsonlWriter`]).
pub trait Observer {
    /// Receives one event.
    fn on_event(&mut self, event: &TraceEvent);

    /// Whether this observer wants events at all.
    ///
    /// Emission sites check this *before* constructing an event, so a
    /// `false` here (constant-folded for [`NullObserver`]) makes
    /// tracing zero-cost. Defaults to `true`.
    #[inline]
    fn is_enabled(&self) -> bool {
        true
    }
}

impl<T: Observer + ?Sized> Observer for &mut T {
    #[inline]
    fn on_event(&mut self, event: &TraceEvent) {
        (**self).on_event(event)
    }

    #[inline]
    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }
}

/// The default no-op observer: reports itself disabled so guarded
/// emission sites compile to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl Observer for NullObserver {
    #[inline]
    fn on_event(&mut self, _event: &TraceEvent) {}

    #[inline]
    fn is_enabled(&self) -> bool {
        false
    }
}

/// Per-variant event tallies accumulated by [`CountingObserver`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Total events observed.
    pub total: u64,
    /// `StageStarted` events.
    pub stage_starts: u64,
    /// `StageFinished` events.
    pub stage_finishes: u64,
    /// `TaskCommitted` events.
    pub tasks_committed: u64,
    /// `TopoBacktrack` events.
    pub topo_backtracks: u64,
    /// `SerializationAdded` events.
    pub serializations: u64,
    /// `SpikeDetected` events.
    pub spikes_detected: u64,
    /// `VictimDelayed` events.
    pub victim_delays: u64,
    /// `ZeroSlackLocked` events.
    pub zero_slack_locks: u64,
    /// `PowerRecursion` events.
    pub power_recursions: u64,
    /// `RespinStarted` events.
    pub respins: u64,
    /// `GapScanStarted` events.
    pub gap_scans: u64,
    /// `GapScanFinished` events.
    pub gap_scan_finishes: u64,
    /// `GapFound` events.
    pub gaps_found: u64,
    /// `MoveAccepted` events.
    pub moves_accepted: u64,
    /// `MoveRejected` events.
    pub moves_rejected: u64,
    /// `TaskDispatched` events.
    pub tasks_dispatched: u64,
    /// `TaskCompleted` events.
    pub tasks_completed: u64,
    /// `WindowFaultDetected` events.
    pub window_faults: u64,
    /// `LintStarted` events.
    pub lint_runs: u64,
    /// `LintFinding` events.
    pub lint_findings: u64,
    /// `LintVerdict` events with `rejected == true`.
    pub lint_rejections: u64,
    /// `IncrementalCacheHit` events.
    pub incremental_cache_hits: u64,
    /// `IncrementalDelta` events.
    pub incremental_deltas: u64,
    /// `IncrementalFallback` events.
    pub incremental_fallbacks: u64,
    /// `TaskBound` events.
    pub tasks_bound: u64,
    /// `OutcomeRecorded` events.
    pub outcomes_recorded: u64,
    /// `WorkerStarted` events (stitched parallel trace segments).
    pub worker_starts: u64,
    /// `WorkerFinished` events.
    pub worker_finishes: u64,
    /// `SearchSample` events (periodic search telemetry).
    pub search_samples: u64,
    /// `IncumbentImproved` events.
    pub incumbent_improvements: u64,
    /// `SearchStatsRecorded` events (end-of-search summaries).
    pub search_stats: u64,
    /// `Unknown` events (forward-compat lines from newer writers).
    pub unknown_events: u64,
}

impl EventCounts {
    /// Tallies one event.
    pub fn record(&mut self, event: &TraceEvent) {
        self.total += 1;
        match event {
            TraceEvent::StageStarted { .. } => self.stage_starts += 1,
            TraceEvent::StageFinished { .. } => self.stage_finishes += 1,
            TraceEvent::TaskCommitted { .. } => self.tasks_committed += 1,
            TraceEvent::TopoBacktrack { .. } => self.topo_backtracks += 1,
            TraceEvent::SerializationAdded { .. } => self.serializations += 1,
            TraceEvent::SpikeDetected { .. } => self.spikes_detected += 1,
            TraceEvent::VictimDelayed { .. } => self.victim_delays += 1,
            TraceEvent::ZeroSlackLocked { .. } => self.zero_slack_locks += 1,
            TraceEvent::PowerRecursion { .. } => self.power_recursions += 1,
            TraceEvent::RespinStarted { .. } => self.respins += 1,
            TraceEvent::GapScanStarted { .. } => self.gap_scans += 1,
            TraceEvent::GapScanFinished { .. } => self.gap_scan_finishes += 1,
            TraceEvent::GapFound { .. } => self.gaps_found += 1,
            TraceEvent::MoveAccepted { .. } => self.moves_accepted += 1,
            TraceEvent::MoveRejected { .. } => self.moves_rejected += 1,
            TraceEvent::TaskDispatched { .. } => self.tasks_dispatched += 1,
            TraceEvent::TaskCompleted { .. } => self.tasks_completed += 1,
            TraceEvent::WindowFaultDetected { .. } => self.window_faults += 1,
            TraceEvent::LintStarted { .. } => self.lint_runs += 1,
            TraceEvent::LintFinding { .. } => self.lint_findings += 1,
            TraceEvent::LintVerdict { rejected, .. } => {
                if *rejected {
                    self.lint_rejections += 1;
                }
            }
            TraceEvent::IncrementalCacheHit { .. } => self.incremental_cache_hits += 1,
            TraceEvent::IncrementalDelta { .. } => self.incremental_deltas += 1,
            TraceEvent::IncrementalFallback { .. } => self.incremental_fallbacks += 1,
            TraceEvent::TaskBound { .. } => self.tasks_bound += 1,
            TraceEvent::OutcomeRecorded { .. } => self.outcomes_recorded += 1,
            TraceEvent::WorkerStarted { .. } => self.worker_starts += 1,
            TraceEvent::WorkerFinished { .. } => self.worker_finishes += 1,
            TraceEvent::SearchSample { .. } => self.search_samples += 1,
            TraceEvent::IncumbentImproved { .. } => self.incumbent_improvements += 1,
            TraceEvent::SearchStatsRecorded { .. } => self.search_stats += 1,
            TraceEvent::Unknown { .. } => self.unknown_events += 1,
        }
    }

    /// The per-variant tallies as `(name, value)` pairs, in declaration
    /// order, excluding `total`.
    ///
    /// The names double as stable label values for metrics exposition
    /// and as row keys for trace diffing.
    pub fn named(&self) -> [(&'static str, u64); 32] {
        [
            ("stage_starts", self.stage_starts),
            ("stage_finishes", self.stage_finishes),
            ("tasks_committed", self.tasks_committed),
            ("topo_backtracks", self.topo_backtracks),
            ("serializations", self.serializations),
            ("spikes_detected", self.spikes_detected),
            ("victim_delays", self.victim_delays),
            ("zero_slack_locks", self.zero_slack_locks),
            ("power_recursions", self.power_recursions),
            ("respins", self.respins),
            ("gap_scans", self.gap_scans),
            ("gap_scan_finishes", self.gap_scan_finishes),
            ("gaps_found", self.gaps_found),
            ("moves_accepted", self.moves_accepted),
            ("moves_rejected", self.moves_rejected),
            ("tasks_dispatched", self.tasks_dispatched),
            ("tasks_completed", self.tasks_completed),
            ("window_faults", self.window_faults),
            ("lint_runs", self.lint_runs),
            ("lint_findings", self.lint_findings),
            ("lint_rejections", self.lint_rejections),
            ("incremental_cache_hits", self.incremental_cache_hits),
            ("incremental_deltas", self.incremental_deltas),
            ("incremental_fallbacks", self.incremental_fallbacks),
            ("tasks_bound", self.tasks_bound),
            ("outcomes_recorded", self.outcomes_recorded),
            ("worker_starts", self.worker_starts),
            ("worker_finishes", self.worker_finishes),
            ("search_samples", self.search_samples),
            ("incumbent_improvements", self.incumbent_improvements),
            ("search_stats", self.search_stats),
            ("unknown_events", self.unknown_events),
        ]
    }

    /// Tallies a whole recorded stream, e.g. to reconcile a trace file
    /// against live counters.
    pub fn from_events<'a, I: IntoIterator<Item = &'a TraceEvent>>(events: I) -> Self {
        let mut counts = EventCounts::default();
        for event in events {
            counts.record(event);
        }
        counts
    }
}

/// Observer that keeps per-variant tallies and discards payloads.
///
/// This is the cheapest *enabled* observer; the schedulers use it
/// internally to derive their `SchedulerStats`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingObserver {
    counts: EventCounts,
}

impl CountingObserver {
    /// Creates a fresh counter.
    pub fn new() -> Self {
        CountingObserver::default()
    }

    /// The tallies accumulated so far.
    pub fn counts(&self) -> EventCounts {
        self.counts
    }
}

impl Observer for CountingObserver {
    #[inline]
    fn on_event(&mut self, event: &TraceEvent) {
        self.counts.record(event);
    }
}

/// Observer that records events into a bounded ring buffer.
///
/// When full, the oldest events are evicted and counted in
/// [`RecordingObserver::dropped`].
#[derive(Debug, Clone, Default)]
pub struct RecordingObserver {
    buf: VecDeque<TraceEvent>,
    capacity: Option<usize>,
    dropped: u64,
}

impl RecordingObserver {
    /// Creates an unbounded recorder.
    pub fn new() -> Self {
        RecordingObserver::default()
    }

    /// Creates a recorder that keeps at most the last `capacity`
    /// events.
    pub fn with_capacity(capacity: usize) -> Self {
        RecordingObserver {
            buf: VecDeque::with_capacity(capacity.min(1 << 16)),
            capacity: Some(capacity),
            dropped: 0,
        }
    }

    /// Recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Consumes the recorder and returns the events, oldest first.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.buf.into_iter().collect()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Observer for RecordingObserver {
    fn on_event(&mut self, event: &TraceEvent) {
        if let Some(cap) = self.capacity {
            if cap == 0 {
                self.dropped += 1;
                return;
            }
            while self.buf.len() >= cap {
                self.buf.pop_front();
                self.dropped += 1;
            }
        }
        self.buf.push_back(event.clone());
    }
}

/// Fans events out to two observers.
///
/// Nest `Tee`s for wider fan-out: `Tee(a, Tee(b, c))`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tee<A, B>(
    /// First sink.
    pub A,
    /// Second sink.
    pub B,
);

impl<A: Observer, B: Observer> Observer for Tee<A, B> {
    #[inline]
    fn on_event(&mut self, event: &TraceEvent) {
        if self.0.is_enabled() {
            self.0.on_event(event);
        }
        if self.1.is_enabled() {
            self.1.on_event(event);
        }
    }

    #[inline]
    fn is_enabled(&self) -> bool {
        self.0.is_enabled() || self.1.is_enabled()
    }
}

/// A clonable, thread-safe handle around any observer.
///
/// Clones share one underlying sink behind an `Arc<Mutex<_>>`, so
/// several worker threads can fold events into the same
/// [`crate::MetricsRegistry`] (or any other observer) concurrently
/// without losing increments. The lock is taken per event — fine for
/// request-granularity streams; inner scheduler loops should keep
/// using a thread-local observer and merge afterwards.
///
/// A poisoned lock (a panicking holder) is recovered rather than
/// propagated: metrics are a diagnostic surface and must not turn one
/// panic into many.
#[derive(Debug, Default)]
pub struct SharedObserver<O> {
    inner: Arc<Mutex<O>>,
}

impl<O> Clone for SharedObserver<O> {
    fn clone(&self) -> Self {
        SharedObserver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<O> SharedObserver<O> {
    /// Wraps `observer` in a shared handle.
    pub fn new(observer: O) -> Self {
        SharedObserver {
            inner: Arc::new(Mutex::new(observer)),
        }
    }

    /// Runs `f` with the underlying observer locked.
    pub fn with<R>(&self, f: impl FnOnce(&mut O) -> R) -> R {
        let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut guard)
    }

    /// Recovers the underlying observer if this is the last handle;
    /// otherwise returns the handle unchanged.
    pub fn try_into_inner(self) -> Result<O, Self> {
        match Arc::try_unwrap(self.inner) {
            Ok(mutex) => Ok(mutex.into_inner().unwrap_or_else(|e| e.into_inner())),
            Err(inner) => Err(SharedObserver { inner }),
        }
    }
}

impl<O: Observer> Observer for SharedObserver<O> {
    fn on_event(&mut self, event: &TraceEvent) {
        self.with(|obs| obs.on_event(event));
    }

    fn is_enabled(&self) -> bool {
        self.with(|obs| obs.is_enabled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_graph::TaskId;

    fn ev(i: usize) -> TraceEvent {
        TraceEvent::TaskCommitted {
            task: TaskId::from_index(i),
        }
    }

    #[test]
    fn null_observer_is_disabled() {
        assert!(!NullObserver.is_enabled());
    }

    #[test]
    fn counting_observer_tallies_by_variant() {
        let mut obs = CountingObserver::new();
        obs.on_event(&ev(0));
        obs.on_event(&ev(1));
        obs.on_event(&TraceEvent::TopoBacktrack {
            task: TaskId::from_index(1),
        });
        let counts = obs.counts();
        assert_eq!(counts.total, 3);
        assert_eq!(counts.tasks_committed, 2);
        assert_eq!(counts.topo_backtracks, 1);
    }

    #[test]
    fn recording_observer_ring_evicts_oldest() {
        let mut obs = RecordingObserver::with_capacity(2);
        obs.on_event(&ev(0));
        obs.on_event(&ev(1));
        obs.on_event(&ev(2));
        assert_eq!(obs.len(), 2);
        assert_eq!(obs.dropped(), 1);
        let kept: Vec<_> = obs.into_events();
        assert_eq!(kept, vec![ev(1), ev(2)]);
    }

    #[test]
    fn tee_fans_out_and_ors_enablement() {
        let mut tee = Tee(CountingObserver::new(), RecordingObserver::new());
        assert!(tee.is_enabled());
        tee.on_event(&ev(0));
        assert_eq!(tee.0.counts().total, 1);
        assert_eq!(tee.1.len(), 1);

        let null_tee = Tee(NullObserver, NullObserver);
        assert!(!null_tee.is_enabled());
    }

    #[test]
    fn blanket_mut_ref_impl_forwards() {
        let mut counter = CountingObserver::new();
        {
            let by_ref: &mut CountingObserver = &mut counter;
            assert!(by_ref.is_enabled());
            by_ref.on_event(&ev(0));
        }
        assert_eq!(counter.counts().total, 1);

        // And through a trait object, as the pipeline facade uses it.
        let dynamic: &mut dyn Observer = &mut counter;
        dynamic.on_event(&ev(1));
        assert_eq!(counter.counts().total, 2);
    }

    #[test]
    fn named_counts_mirror_the_fields() {
        let mut counts = EventCounts::default();
        counts.record(&ev(0));
        counts.record(&TraceEvent::Unknown {
            name: "FutureEvent".to_string(),
            line: r#"{"event":"FutureEvent"}"#.to_string(),
        });
        let named = counts.named();
        let mut names: Vec<_> = named.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), named.len(), "counter names must be unique");
        let get = |key: &str| named.iter().find(|(n, _)| *n == key).unwrap().1;
        assert_eq!(get("tasks_committed"), 1);
        assert_eq!(get("unknown_events"), 1);
        assert_eq!(counts.total, 2);
    }

    #[test]
    fn counts_from_events_matches_live_counting() {
        let events = vec![ev(0), ev(1), ev(2)];
        let replay = EventCounts::from_events(&events);
        let mut live = CountingObserver::new();
        for e in &events {
            live.on_event(e);
        }
        assert_eq!(replay, live.counts());
    }
}
