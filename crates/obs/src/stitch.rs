//! Stitching per-worker trace buffers into one causally-ordered
//! stream.
//!
//! Parallel pipeline stages record into private [`RecordingObserver`]
//! buffers — one per deterministic unit of work (portfolio attempt,
//! B&B frontier branch) — instead of streaming into the shared
//! observer from multiple threads. After the scoped threads join, the
//! buffers are emitted **in unit index order**, each bracketed by
//! [`TraceEvent::WorkerStarted`] / [`TraceEvent::WorkerFinished`]
//! markers carrying the unit index as the worker id.
//!
//! Because the id is the unit index (never an OS thread id) and the
//! merge order is the unit order (never the completion order), the
//! stitched stream is byte-identical for any thread count — the
//! determinism CI job diffs `--threads 1` against `--threads 8`
//! traces and requires a clean result.

use crate::event::TraceEvent;
use crate::observer::Observer;

/// Emits one worker's buffered segment into `obs`, bracketed by
/// worker markers. Empty segments still emit their bracket so the
/// stitched trace enumerates every unit of work.
pub fn stitch_segment<O: Observer + ?Sized>(obs: &mut O, worker: u32, events: Vec<TraceEvent>) {
    if !obs.is_enabled() {
        return;
    }
    obs.on_event(&TraceEvent::WorkerStarted { worker });
    for event in &events {
        obs.on_event(event);
    }
    obs.on_event(&TraceEvent::WorkerFinished { worker });
}

/// Stitches a batch of per-worker buffers into `obs` in index order.
///
/// `segments[i]` is emitted with worker id `i` (plus `base`), so the
/// caller can fan several stitched regions into one trace without id
/// collisions.
pub fn stitch_all<O: Observer + ?Sized>(obs: &mut O, base: u32, segments: Vec<Vec<TraceEvent>>) {
    for (index, events) in segments.into_iter().enumerate() {
        stitch_segment(obs, base + index as u32, events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::RecordingObserver;
    use crate::StageKind;

    fn marker(stage: StageKind) -> TraceEvent {
        TraceEvent::StageStarted { stage }
    }

    #[test]
    fn segments_are_bracketed_in_index_order() {
        let mut obs = RecordingObserver::new();
        stitch_all(
            &mut obs,
            0,
            vec![
                vec![marker(StageKind::Timing)],
                vec![],
                vec![marker(StageKind::MinPower)],
            ],
        );
        let events = obs.into_events();
        assert_eq!(
            events,
            vec![
                TraceEvent::WorkerStarted { worker: 0 },
                marker(StageKind::Timing),
                TraceEvent::WorkerFinished { worker: 0 },
                TraceEvent::WorkerStarted { worker: 1 },
                TraceEvent::WorkerFinished { worker: 1 },
                TraceEvent::WorkerStarted { worker: 2 },
                marker(StageKind::MinPower),
                TraceEvent::WorkerFinished { worker: 2 },
            ]
        );
    }

    #[test]
    fn disabled_observers_skip_stitching_entirely() {
        let mut obs = crate::observer::NullObserver;
        // Must not panic and must stay a no-op.
        stitch_segment(&mut obs, 9, vec![marker(StageKind::Timing)]);
    }

    #[test]
    fn base_offsets_worker_ids() {
        let mut obs = RecordingObserver::new();
        stitch_all(&mut obs, 10, vec![vec![], vec![]]);
        let ids: Vec<u32> = obs
            .into_events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::WorkerStarted { worker } => Some(*worker),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec![10, 11]);
    }
}
