//! The trace-event vocabulary: one variant per algorithmic decision in
//! the scheduling pipeline, plus a dependency-free JSONL codec.
//!
//! Events are deliberately *value-typed* — no references into the
//! constraint graph — so a recorded stream stays valid after the graph
//! is mutated, can be shipped across threads, and round-trips through
//! the line-oriented JSON encoding ([`TraceEvent::to_json`] /
//! [`TraceEvent::from_json`]) without loss.
//!
//! Encoding conventions (kept stable for external tooling):
//!
//! * every event is one flat JSON object on one line;
//! * the discriminant is the `"event"` key, spelled exactly like the
//!   variant name;
//! * tasks are raw arena indices (`TaskId::index`), times and spans
//!   are integer seconds, powers are integer milliwatts;
//! * exact rationals ([`Ratio`]) are `"num/den"` strings so no
//!   precision is lost.

use std::fmt;

use pas_core::Ratio;
use pas_graph::units::{Energy, Power, Time, TimeSpan};
use pas_graph::TaskId;

/// Pipeline stage (or runtime phase) a trace span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StageKind {
    /// Stage 0 — static lint guard (pas-lint): rejects provably
    /// broken problems before any search runs.
    Lint,
    /// Stage 1 — timing scheduler (paper Fig. 3): backtracking search
    /// over resource serializations.
    Timing,
    /// Stage 2 — max-power spike elimination (paper Fig. 4).
    MaxPower,
    /// Stage 3 — min-power gap filling (paper Fig. 6).
    MinPower,
    /// Runtime dispatch of a finished schedule (pas-exec).
    Dispatch,
}

impl StageKind {
    /// All stages in pipeline order.
    pub const ALL: [StageKind; 5] = [
        StageKind::Lint,
        StageKind::Timing,
        StageKind::MaxPower,
        StageKind::MinPower,
        StageKind::Dispatch,
    ];

    /// Stable wire name (`"lint"`, `"timing"`, `"max-power"`, …).
    pub const fn as_str(self) -> &'static str {
        match self {
            StageKind::Lint => "lint",
            StageKind::Timing => "timing",
            StageKind::MaxPower => "max-power",
            StageKind::MinPower => "min-power",
            StageKind::Dispatch => "dispatch",
        }
    }

    /// Dense index into [`StageKind::ALL`].
    pub const fn index(self) -> usize {
        match self {
            StageKind::Lint => 0,
            StageKind::Timing => 1,
            StageKind::MaxPower => 2,
            StageKind::MinPower => 3,
            StageKind::Dispatch => 4,
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "lint" => StageKind::Lint,
            "timing" => StageKind::Timing,
            "max-power" => StageKind::MaxPower,
            "min-power" => StageKind::MinPower,
            "dispatch" => StageKind::Dispatch,
            _ => return None,
        })
    }
}

impl fmt::Display for StageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Direction a min-power gap scan walks the schedule in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScanKind {
    /// Earliest gap first.
    Forward,
    /// Latest gap first.
    Reverse,
    /// Randomised order.
    Random,
}

impl ScanKind {
    /// Stable wire name.
    pub const fn as_str(self) -> &'static str {
        match self {
            ScanKind::Forward => "forward",
            ScanKind::Reverse => "reverse",
            ScanKind::Random => "random",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "forward" => ScanKind::Forward,
            "reverse" => ScanKind::Reverse,
            "random" => ScanKind::Random,
            _ => return None,
        })
    }
}

impl fmt::Display for ScanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a min-power move places the task inside the gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotKind {
    /// Task starts exactly at the gap start.
    StartAtGap,
    /// Task finishes exactly at the gap end.
    FinishAtGapEnd,
    /// Randomised placement within the gap.
    Random,
}

impl SlotKind {
    /// Stable wire name.
    pub const fn as_str(self) -> &'static str {
        match self {
            SlotKind::StartAtGap => "start-at-gap",
            SlotKind::FinishAtGapEnd => "finish-at-gap-end",
            SlotKind::Random => "random",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "start-at-gap" => SlotKind::StartAtGap,
            "finish-at-gap-end" => SlotKind::FinishAtGapEnd,
            "random" => SlotKind::Random,
            _ => return None,
        })
    }
}

impl fmt::Display for SlotKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What pins a task's committed start time — the payload of
/// [`TraceEvent::TaskBound`].
///
/// A schedule assigns every task the largest lower bound among its
/// in-edges (`σ(v) ≥ σ(u) + w`), unless a power-stage decision holds
/// it even later. The binding records which case applied, giving
/// `explain` its causal chain without re-running the scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Binding {
    /// An anchor edge is tight: the task sits at its release/lock
    /// offset from `t = 0` and no task-to-task constraint pins it.
    Anchor,
    /// A task-to-task constraint edge is tight:
    /// `start == start(pred) + weight`.
    Edge {
        /// The binding predecessor task.
        pred: TaskId,
        /// Edge-kind wire name (fixed vocabulary: `"min"`, `"max"`,
        /// `"serialize"`).
        kind: String,
        /// The tight edge's weight (negative for max windows).
        weight: TimeSpan,
    },
    /// The task sits strictly above every timing bound: a power-stage
    /// decision (max-power compaction or a min-power gap move) holds
    /// it there.
    Power,
}

/// One algorithmic decision somewhere in the scheduling pipeline.
///
/// Variants map one-to-one onto the decision points of the three
/// paper algorithms plus the runtime dispatcher; see the crate docs
/// for the full vocabulary table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A pipeline stage began.
    StageStarted {
        /// Which stage.
        stage: StageKind,
    },
    /// A pipeline stage finished (successfully or not).
    StageFinished {
        /// Which stage.
        stage: StageKind,
    },
    /// The lint guard began analyzing a problem.
    LintStarted {
        /// Number of tasks in the problem.
        tasks: u64,
        /// Number of constraint edges in the problem.
        edges: u64,
    },
    /// The lint guard produced one finding.
    LintFinding {
        /// The stable `PASnnn` code (fixed vocabulary, escape-free).
        code: String,
        /// `"error"` or `"warning"`.
        severity: String,
    },
    /// The lint guard finished with a verdict.
    LintVerdict {
        /// Error-level findings.
        errors: u64,
        /// Warning-level findings.
        warnings: u64,
        /// `true` when the pipeline rejected the problem.
        rejected: bool,
    },
    /// Timing scheduler committed a task onto its resource.
    TaskCommitted {
        /// The committed task.
        task: TaskId,
    },
    /// Timing scheduler undid a commitment and backtracked.
    TopoBacktrack {
        /// The task whose commitment was undone.
        task: TaskId,
    },
    /// Timing scheduler added a serialization edge between two tasks
    /// sharing a resource.
    SerializationAdded {
        /// Task committed to run first.
        committed: TaskId,
        /// Task forced to wait for `committed`.
        serialized: TaskId,
    },
    /// Max-power stage found a segment exceeding the power budget.
    SpikeDetected {
        /// Segment start time.
        t: Time,
        /// Aggregate power of the offending segment.
        power: Power,
        /// The maximum-power budget it violates.
        budget: Power,
    },
    /// Max-power stage delayed a victim task to dissolve a spike.
    VictimDelayed {
        /// The delayed task.
        task: TaskId,
        /// The victim's slack when chosen.
        slack: TimeSpan,
        /// How far it was pushed.
        delta: TimeSpan,
    },
    /// Max-power stage locked a zero-slack task at its start time
    /// before recursing.
    ZeroSlackLocked {
        /// The locked task.
        task: TaskId,
        /// The start time it is pinned to.
        at: Time,
    },
    /// Max-power stage recursed after a forced exit re-timing.
    PowerRecursion {
        /// Recursion depth reached (1 = first recursion).
        depth: u32,
    },
    /// Max-power stage restarted with a rotated configuration.
    RespinStarted {
        /// Respin attempt number (1-based).
        attempt: u32,
    },
    /// Min-power stage began one scan pass over the schedule.
    GapScanStarted {
        /// Pass number (1-based across the whole stage).
        pass: u32,
        /// Direction of the scan.
        order: ScanKind,
        /// Slot placement policy for the scan.
        slot: SlotKind,
    },
    /// Min-power stage finished one scan pass.
    GapScanFinished {
        /// Pass number matching the corresponding start event.
        pass: u32,
        /// Moves accepted during the pass.
        moves: u64,
    },
    /// Min-power stage found a gap below the power floor.
    GapFound {
        /// Gap instant considered.
        t: Time,
        /// Aggregate power at the gap.
        power: Power,
        /// The minimum-power floor it undershoots.
        floor: Power,
    },
    /// Min-power stage accepted a candidate move into a gap.
    MoveAccepted {
        /// The moved task.
        task: TaskId,
        /// Signed shift applied to its start time.
        delta: TimeSpan,
        /// Power utilization ρ before the move.
        rho_before: Ratio,
        /// Power utilization ρ after the move.
        rho_after: Ratio,
    },
    /// Min-power stage evaluated and rejected a candidate move.
    MoveRejected {
        /// The candidate task.
        task: TaskId,
        /// Signed shift that was evaluated.
        delta: TimeSpan,
        /// Power utilization ρ before the hypothetical move.
        rho_before: Ratio,
        /// Power utilization ρ the move would have produced.
        rho_after: Ratio,
    },
    /// The incremental engine served a longest-paths query straight
    /// from its cache (the constraint graph was unchanged).
    IncrementalCacheHit {
        /// The stage whose query was served.
        stage: StageKind,
    },
    /// The incremental engine brought its cache up to date by
    /// relaxing only the newly added constraint edges.
    IncrementalDelta {
        /// The stage whose query was served.
        stage: StageKind,
        /// Number of journal edges applied by the delta.
        edges: u64,
        /// Number of distance improvements performed.
        relaxations: u64,
    },
    /// The incremental engine fell back to a full recomputation.
    IncrementalFallback {
        /// The stage whose query was served.
        stage: StageKind,
        /// Why the delta path was not applicable (fixed vocabulary:
        /// `"init"`, `"resize"`, `"removal"`, `"cycle-suspect"`,
        /// `"budget"`).
        reason: String,
    },
    /// Runtime dispatcher released a task.
    TaskDispatched {
        /// The released task.
        task: TaskId,
        /// Static (planned) start time.
        planned: Time,
        /// Actual release time under jitter.
        actual: Time,
    },
    /// Runtime dispatcher observed a task completing.
    TaskCompleted {
        /// The finished task.
        task: TaskId,
        /// Actual completion time.
        at: Time,
    },
    /// Runtime dispatcher detected a violated max-separation window.
    WindowFaultDetected {
        /// Window source task.
        from: TaskId,
        /// Window sink task.
        to: TaskId,
        /// Maximum allowed separation.
        allowed: TimeSpan,
        /// Observed separation.
        actual: TimeSpan,
    },
    /// Provenance for one task of a stage's committed schedule: its
    /// final start time and the constraint that pins it there. Emitted
    /// once per task after each stage outcome, so the last group in a
    /// trace describes the final schedule.
    TaskBound {
        /// The stage whose outcome this belongs to.
        stage: StageKind,
        /// The task.
        task: TaskId,
        /// Its committed start time.
        start: Time,
        /// What pins the start time.
        binding: Binding,
    },
    /// Committed metrics of a stage's outcome schedule, closing the
    /// stage's `TaskBound` group.
    OutcomeRecorded {
        /// The stage whose outcome this summarizes.
        stage: StageKind,
        /// Finish time τ of the schedule.
        tau: Time,
        /// Energy cost `Ec` (energy drawn above the free/background
        /// supply).
        energy_cost: Energy,
        /// Min-power utilization ρ.
        utilization: Ratio,
        /// Peak aggregate power.
        peak: Power,
    },
    /// A parallel worker's stitched trace segment begins. Emitted by
    /// the trace stitcher when per-worker buffers are merged into one
    /// causally-ordered stream; the id is the worker's *deterministic*
    /// unit-of-work index (portfolio attempt, B&B frontier branch),
    /// never an OS thread id, so stitched traces are identical across
    /// thread counts.
    WorkerStarted {
        /// Deterministic worker id.
        worker: u32,
    },
    /// A parallel worker's stitched trace segment ends, closing the
    /// matching [`TraceEvent::WorkerStarted`].
    WorkerFinished {
        /// Deterministic worker id.
        worker: u32,
    },
    /// Periodic search-telemetry sample, emitted every N expanded
    /// nodes by the exact B&B and the backtracking timing scheduler.
    /// Sampling is **node-count-triggered, never wall-clock**, so a
    /// trace with telemetry enabled is still bit-identical across
    /// thread counts (see DESIGN.md §13).
    SearchSample {
        /// Deterministic worker id (frontier branch / portfolio
        /// attempt), `0` for sequential searches.
        worker: u32,
        /// Nodes expanded by this worker when the sample fired.
        nodes: u64,
        /// Search depth at the sampling instant.
        depth: u32,
        /// Incumbent finish time in seconds, or `-1` while no
        /// incumbent exists yet.
        best: i64,
    },
    /// The search found a new incumbent (a strictly better complete
    /// solution), timestamped in *nodes expanded* — the deterministic
    /// clock of the search.
    IncumbentImproved {
        /// Deterministic worker id, `0` for sequential searches.
        worker: u32,
        /// Nodes expanded by this worker when the incumbent improved.
        nodes: u64,
        /// The new incumbent finish time.
        finish: Time,
    },
    /// End-of-search summary for one worker: nodes, prunes by reason,
    /// deepest level reached, and the node budget the worker was
    /// given (so budget utilization is `nodes / budget`).
    SearchStatsRecorded {
        /// Deterministic worker id, `0` for sequential searches.
        worker: u32,
        /// Total nodes expanded.
        nodes: u64,
        /// Subtrees cut because they could not beat the incumbent
        /// (or the shared bound in partitioned searches).
        pruned_incumbent: u64,
        /// Candidate placements skipped by dominance/feasibility
        /// checks.
        pruned_dominance: u64,
        /// Candidate start times past the optimality horizon.
        pruned_horizon: u64,
        /// Searches cut short by the node/backtrack budget (0 or 1
        /// for the B&B; backtracks consumed for the timing stage).
        pruned_budget: u64,
        /// Subtrees cut by lint-derived admissible bounds (completion
        /// tails / makespan lower-bound early stop); 0 when the
        /// search ran without lint bounds.
        pruned_bound: u64,
        /// Deepest search level reached.
        max_depth: u32,
        /// The node (or backtrack) budget this worker was given.
        budget: u64,
    },
    /// An event this build of the codec does not understand — a trace
    /// written by a newer binary. The raw line is preserved verbatim
    /// so re-encoding is lossless.
    Unknown {
        /// The wire name carried in the `"event"` field.
        name: String,
        /// The trimmed original JSON line.
        line: String,
    },
}

impl TraceEvent {
    /// The variant name, as spelled on the wire. For
    /// [`TraceEvent::Unknown`] this is the foreign name the line
    /// carried.
    pub fn name(&self) -> &str {
        match self {
            TraceEvent::StageStarted { .. } => "StageStarted",
            TraceEvent::StageFinished { .. } => "StageFinished",
            TraceEvent::LintStarted { .. } => "LintStarted",
            TraceEvent::LintFinding { .. } => "LintFinding",
            TraceEvent::LintVerdict { .. } => "LintVerdict",
            TraceEvent::TaskCommitted { .. } => "TaskCommitted",
            TraceEvent::TopoBacktrack { .. } => "TopoBacktrack",
            TraceEvent::SerializationAdded { .. } => "SerializationAdded",
            TraceEvent::SpikeDetected { .. } => "SpikeDetected",
            TraceEvent::VictimDelayed { .. } => "VictimDelayed",
            TraceEvent::ZeroSlackLocked { .. } => "ZeroSlackLocked",
            TraceEvent::PowerRecursion { .. } => "PowerRecursion",
            TraceEvent::RespinStarted { .. } => "RespinStarted",
            TraceEvent::GapScanStarted { .. } => "GapScanStarted",
            TraceEvent::GapScanFinished { .. } => "GapScanFinished",
            TraceEvent::GapFound { .. } => "GapFound",
            TraceEvent::MoveAccepted { .. } => "MoveAccepted",
            TraceEvent::MoveRejected { .. } => "MoveRejected",
            TraceEvent::IncrementalCacheHit { .. } => "IncrementalCacheHit",
            TraceEvent::IncrementalDelta { .. } => "IncrementalDelta",
            TraceEvent::IncrementalFallback { .. } => "IncrementalFallback",
            TraceEvent::TaskDispatched { .. } => "TaskDispatched",
            TraceEvent::TaskCompleted { .. } => "TaskCompleted",
            TraceEvent::WindowFaultDetected { .. } => "WindowFaultDetected",
            TraceEvent::TaskBound { .. } => "TaskBound",
            TraceEvent::OutcomeRecorded { .. } => "OutcomeRecorded",
            TraceEvent::WorkerStarted { .. } => "WorkerStarted",
            TraceEvent::WorkerFinished { .. } => "WorkerFinished",
            TraceEvent::SearchSample { .. } => "SearchSample",
            TraceEvent::IncumbentImproved { .. } => "IncumbentImproved",
            TraceEvent::SearchStatsRecorded { .. } => "SearchStatsRecorded",
            TraceEvent::Unknown { name, .. } => name,
        }
    }

    /// Serializes the event as one flat JSON object (no trailing
    /// newline). [`TraceEvent::Unknown`] returns its preserved
    /// original line, so re-encoding a replayed trace is lossless.
    pub fn to_json(&self) -> String {
        if let TraceEvent::Unknown { line, .. } = self {
            return line.clone();
        }
        let mut w = JsonObject::new(self.name());
        match self {
            TraceEvent::StageStarted { stage } | TraceEvent::StageFinished { stage } => {
                w.str_field("stage", stage.as_str());
            }
            TraceEvent::LintStarted { tasks, edges } => {
                w.int_field("tasks", *tasks as i128);
                w.int_field("edges", *edges as i128);
            }
            TraceEvent::LintFinding { code, severity } => {
                w.str_field("code", code);
                w.str_field("severity", severity);
            }
            TraceEvent::LintVerdict {
                errors,
                warnings,
                rejected,
            } => {
                w.int_field("errors", *errors as i128);
                w.int_field("warnings", *warnings as i128);
                w.int_field("rejected", *rejected as i128);
            }
            TraceEvent::TaskCommitted { task } | TraceEvent::TopoBacktrack { task } => {
                w.int_field("task", task.index() as i128);
            }
            TraceEvent::SerializationAdded {
                committed,
                serialized,
            } => {
                w.int_field("committed", committed.index() as i128);
                w.int_field("serialized", serialized.index() as i128);
            }
            TraceEvent::SpikeDetected { t, power, budget } => {
                w.int_field("t", t.as_secs() as i128);
                w.int_field("power", power.as_milliwatts() as i128);
                w.int_field("budget", budget.as_milliwatts() as i128);
            }
            TraceEvent::VictimDelayed { task, slack, delta } => {
                w.int_field("task", task.index() as i128);
                w.int_field("slack", slack.as_secs() as i128);
                w.int_field("delta", delta.as_secs() as i128);
            }
            TraceEvent::ZeroSlackLocked { task, at } => {
                w.int_field("task", task.index() as i128);
                w.int_field("at", at.as_secs() as i128);
            }
            TraceEvent::PowerRecursion { depth } => {
                w.int_field("depth", *depth as i128);
            }
            TraceEvent::RespinStarted { attempt } => {
                w.int_field("attempt", *attempt as i128);
            }
            TraceEvent::GapScanStarted { pass, order, slot } => {
                w.int_field("pass", *pass as i128);
                w.str_field("order", order.as_str());
                w.str_field("slot", slot.as_str());
            }
            TraceEvent::GapScanFinished { pass, moves } => {
                w.int_field("pass", *pass as i128);
                w.int_field("moves", *moves as i128);
            }
            TraceEvent::GapFound { t, power, floor } => {
                w.int_field("t", t.as_secs() as i128);
                w.int_field("power", power.as_milliwatts() as i128);
                w.int_field("floor", floor.as_milliwatts() as i128);
            }
            TraceEvent::MoveAccepted {
                task,
                delta,
                rho_before,
                rho_after,
            }
            | TraceEvent::MoveRejected {
                task,
                delta,
                rho_before,
                rho_after,
            } => {
                w.int_field("task", task.index() as i128);
                w.int_field("delta", delta.as_secs() as i128);
                w.ratio_field("rho_before", *rho_before);
                w.ratio_field("rho_after", *rho_after);
            }
            TraceEvent::IncrementalCacheHit { stage } => {
                w.str_field("stage", stage.as_str());
            }
            TraceEvent::IncrementalDelta {
                stage,
                edges,
                relaxations,
            } => {
                w.str_field("stage", stage.as_str());
                w.int_field("edges", *edges as i128);
                w.int_field("relaxations", *relaxations as i128);
            }
            TraceEvent::IncrementalFallback { stage, reason } => {
                w.str_field("stage", stage.as_str());
                w.str_field("reason", reason);
            }
            TraceEvent::TaskDispatched {
                task,
                planned,
                actual,
            } => {
                w.int_field("task", task.index() as i128);
                w.int_field("planned", planned.as_secs() as i128);
                w.int_field("actual", actual.as_secs() as i128);
            }
            TraceEvent::TaskCompleted { task, at } => {
                w.int_field("task", task.index() as i128);
                w.int_field("at", at.as_secs() as i128);
            }
            TraceEvent::WindowFaultDetected {
                from,
                to,
                allowed,
                actual,
            } => {
                w.int_field("from", from.index() as i128);
                w.int_field("to", to.index() as i128);
                w.int_field("allowed", allowed.as_secs() as i128);
                w.int_field("actual", actual.as_secs() as i128);
            }
            TraceEvent::TaskBound {
                stage,
                task,
                start,
                binding,
            } => {
                w.str_field("stage", stage.as_str());
                w.int_field("task", task.index() as i128);
                w.int_field("start", start.as_secs() as i128);
                match binding {
                    Binding::Anchor => w.str_field("via", "anchor"),
                    Binding::Power => w.str_field("via", "power"),
                    Binding::Edge { pred, kind, weight } => {
                        w.str_field("via", "edge");
                        w.int_field("pred", pred.index() as i128);
                        w.str_field("kind", kind);
                        w.int_field("weight", weight.as_secs() as i128);
                    }
                }
            }
            TraceEvent::OutcomeRecorded {
                stage,
                tau,
                energy_cost,
                utilization,
                peak,
            } => {
                w.str_field("stage", stage.as_str());
                w.int_field("tau", tau.as_secs() as i128);
                w.int_field("ec", energy_cost.as_millijoules() as i128);
                w.ratio_field("rho", *utilization);
                w.int_field("peak", peak.as_milliwatts() as i128);
            }
            TraceEvent::WorkerStarted { worker } | TraceEvent::WorkerFinished { worker } => {
                w.int_field("worker", *worker as i128);
            }
            TraceEvent::SearchSample {
                worker,
                nodes,
                depth,
                best,
            } => {
                w.int_field("worker", *worker as i128);
                w.int_field("nodes", *nodes as i128);
                w.int_field("depth", *depth as i128);
                w.int_field("best", *best as i128);
            }
            TraceEvent::IncumbentImproved {
                worker,
                nodes,
                finish,
            } => {
                w.int_field("worker", *worker as i128);
                w.int_field("nodes", *nodes as i128);
                w.int_field("finish", finish.as_secs() as i128);
            }
            TraceEvent::SearchStatsRecorded {
                worker,
                nodes,
                pruned_incumbent,
                pruned_dominance,
                pruned_horizon,
                pruned_budget,
                pruned_bound,
                max_depth,
                budget,
            } => {
                w.int_field("worker", *worker as i128);
                w.int_field("nodes", *nodes as i128);
                w.int_field("pruned_incumbent", *pruned_incumbent as i128);
                w.int_field("pruned_dominance", *pruned_dominance as i128);
                w.int_field("pruned_horizon", *pruned_horizon as i128);
                w.int_field("pruned_budget", *pruned_budget as i128);
                w.int_field("pruned_bound", *pruned_bound as i128);
                w.int_field("max_depth", *max_depth as i128);
                w.int_field("budget", *budget as i128);
            }
            TraceEvent::Unknown { .. } => unreachable!("handled above"),
        }
        w.finish()
    }

    /// Parses one JSON line produced by [`TraceEvent::to_json`].
    ///
    /// Forward compatibility: a structurally valid line that this
    /// build cannot interpret exactly — an unknown event name,
    /// missing/extra fields, or unknown vocabulary strings written by
    /// a newer binary — parses as a lossless [`TraceEvent::Unknown`]
    /// instead of an error, so old binaries can replay newer traces.
    /// Only malformed JSON (or a line without the `"event"`
    /// discriminant) is rejected.
    pub fn from_json(line: &str) -> Result<Self, TraceParseError> {
        let fields = parse_flat_object(line)?;
        let ctx = Fields::new(&fields);
        let name = ctx.str("event")?;
        match Self::parse_known(name, &ctx) {
            Ok(event) if event.field_keys_match(&fields) => Ok(event),
            _ => Ok(TraceEvent::Unknown {
                name: name.to_string(),
                line: line.trim().to_string(),
            }),
        }
    }

    /// Parses a known variant from its decoded fields. Any mismatch
    /// (including an unrecognized `name`) is an error; `from_json`
    /// degrades those to [`TraceEvent::Unknown`].
    fn parse_known(name: &str, ctx: &Fields<'_>) -> Result<Self, TraceParseError> {
        let event = match name {
            "StageStarted" => TraceEvent::StageStarted {
                stage: ctx.stage("stage")?,
            },
            "StageFinished" => TraceEvent::StageFinished {
                stage: ctx.stage("stage")?,
            },
            "LintStarted" => TraceEvent::LintStarted {
                tasks: ctx.u64("tasks")?,
                edges: ctx.u64("edges")?,
            },
            "LintFinding" => TraceEvent::LintFinding {
                code: ctx.str("code")?.to_string(),
                severity: ctx.str("severity")?.to_string(),
            },
            "LintVerdict" => TraceEvent::LintVerdict {
                errors: ctx.u64("errors")?,
                warnings: ctx.u64("warnings")?,
                rejected: ctx.u64("rejected")? != 0,
            },
            "TaskCommitted" => TraceEvent::TaskCommitted {
                task: ctx.task("task")?,
            },
            "TopoBacktrack" => TraceEvent::TopoBacktrack {
                task: ctx.task("task")?,
            },
            "SerializationAdded" => TraceEvent::SerializationAdded {
                committed: ctx.task("committed")?,
                serialized: ctx.task("serialized")?,
            },
            "SpikeDetected" => TraceEvent::SpikeDetected {
                t: ctx.time("t")?,
                power: ctx.power("power")?,
                budget: ctx.power("budget")?,
            },
            "VictimDelayed" => TraceEvent::VictimDelayed {
                task: ctx.task("task")?,
                slack: ctx.span("slack")?,
                delta: ctx.span("delta")?,
            },
            "ZeroSlackLocked" => TraceEvent::ZeroSlackLocked {
                task: ctx.task("task")?,
                at: ctx.time("at")?,
            },
            "PowerRecursion" => TraceEvent::PowerRecursion {
                depth: ctx.u32("depth")?,
            },
            "RespinStarted" => TraceEvent::RespinStarted {
                attempt: ctx.u32("attempt")?,
            },
            "GapScanStarted" => TraceEvent::GapScanStarted {
                pass: ctx.u32("pass")?,
                order: ctx.scan("order")?,
                slot: ctx.slot("slot")?,
            },
            "GapScanFinished" => TraceEvent::GapScanFinished {
                pass: ctx.u32("pass")?,
                moves: ctx.u64("moves")?,
            },
            "GapFound" => TraceEvent::GapFound {
                t: ctx.time("t")?,
                power: ctx.power("power")?,
                floor: ctx.power("floor")?,
            },
            "MoveAccepted" => TraceEvent::MoveAccepted {
                task: ctx.task("task")?,
                delta: ctx.span("delta")?,
                rho_before: ctx.ratio("rho_before")?,
                rho_after: ctx.ratio("rho_after")?,
            },
            "MoveRejected" => TraceEvent::MoveRejected {
                task: ctx.task("task")?,
                delta: ctx.span("delta")?,
                rho_before: ctx.ratio("rho_before")?,
                rho_after: ctx.ratio("rho_after")?,
            },
            "IncrementalCacheHit" => TraceEvent::IncrementalCacheHit {
                stage: ctx.stage("stage")?,
            },
            "IncrementalDelta" => TraceEvent::IncrementalDelta {
                stage: ctx.stage("stage")?,
                edges: ctx.u64("edges")?,
                relaxations: ctx.u64("relaxations")?,
            },
            "IncrementalFallback" => TraceEvent::IncrementalFallback {
                stage: ctx.stage("stage")?,
                reason: ctx.str("reason")?.to_string(),
            },
            "TaskDispatched" => TraceEvent::TaskDispatched {
                task: ctx.task("task")?,
                planned: ctx.time("planned")?,
                actual: ctx.time("actual")?,
            },
            "TaskCompleted" => TraceEvent::TaskCompleted {
                task: ctx.task("task")?,
                at: ctx.time("at")?,
            },
            "WindowFaultDetected" => TraceEvent::WindowFaultDetected {
                from: ctx.task("from")?,
                to: ctx.task("to")?,
                allowed: ctx.span("allowed")?,
                actual: ctx.span("actual")?,
            },
            "TaskBound" => TraceEvent::TaskBound {
                stage: ctx.stage("stage")?,
                task: ctx.task("task")?,
                start: ctx.time("start")?,
                binding: match ctx.str("via")? {
                    "anchor" => Binding::Anchor,
                    "power" => Binding::Power,
                    "edge" => Binding::Edge {
                        pred: ctx.task("pred")?,
                        kind: ctx.str("kind")?.to_string(),
                        weight: ctx.span("weight")?,
                    },
                    other => {
                        return Err(TraceParseError::new(format!(
                            "field \"via\" has unknown binding {other:?}"
                        )))
                    }
                },
            },
            "OutcomeRecorded" => TraceEvent::OutcomeRecorded {
                stage: ctx.stage("stage")?,
                tau: ctx.time("tau")?,
                energy_cost: ctx.energy("ec")?,
                utilization: ctx.ratio("rho")?,
                peak: ctx.power("peak")?,
            },
            "WorkerStarted" => TraceEvent::WorkerStarted {
                worker: ctx.u32("worker")?,
            },
            "WorkerFinished" => TraceEvent::WorkerFinished {
                worker: ctx.u32("worker")?,
            },
            "SearchSample" => TraceEvent::SearchSample {
                worker: ctx.u32("worker")?,
                nodes: ctx.u64("nodes")?,
                depth: ctx.u32("depth")?,
                best: ctx.i64("best")?,
            },
            "IncumbentImproved" => TraceEvent::IncumbentImproved {
                worker: ctx.u32("worker")?,
                nodes: ctx.u64("nodes")?,
                finish: ctx.time("finish")?,
            },
            "SearchStatsRecorded" => TraceEvent::SearchStatsRecorded {
                worker: ctx.u32("worker")?,
                nodes: ctx.u64("nodes")?,
                pruned_incumbent: ctx.u64("pruned_incumbent")?,
                pruned_dominance: ctx.u64("pruned_dominance")?,
                pruned_horizon: ctx.u64("pruned_horizon")?,
                pruned_budget: ctx.u64("pruned_budget")?,
                pruned_bound: ctx.u64("pruned_bound")?,
                max_depth: ctx.u32("max_depth")?,
                budget: ctx.u64("budget")?,
            },
            other => {
                return Err(TraceParseError::new(format!(
                    "unknown event name {other:?}"
                )))
            }
        };
        Ok(event)
    }

    /// Whether the decoded input carried exactly the fields this
    /// event's canonical encoding has — catches extra (newer-writer)
    /// fields that `parse_known`'s by-name lookups would silently
    /// ignore.
    fn field_keys_match(&self, fields: &[(String, JsonValue)]) -> bool {
        let own = parse_flat_object(&self.to_json()).expect("to_json emits valid flat objects");
        own.len() == fields.len()
            && own
                .iter()
                .all(|(k, _)| fields.iter().any(|(k2, _)| k2 == k))
    }

    /// Which pipeline stage this event is intrinsic to, if any.
    ///
    /// Stage markers themselves return their payload stage; events
    /// that can only be emitted by one stage return that stage.
    /// [`TraceEvent::Unknown`] has no known stage.
    pub const fn stage(&self) -> Option<StageKind> {
        Some(match self {
            TraceEvent::Unknown { .. } => return None,
            // Worker markers bracket a whole unit of parallel work,
            // which may span multiple stages: intrinsically stage-less.
            TraceEvent::WorkerStarted { .. } | TraceEvent::WorkerFinished { .. } => return None,
            // Search telemetry comes from both the timing scheduler
            // and the exact B&B (which is not a pipeline stage), so
            // the events carry a worker id rather than a stage.
            TraceEvent::SearchSample { .. }
            | TraceEvent::IncumbentImproved { .. }
            | TraceEvent::SearchStatsRecorded { .. } => return None,
            TraceEvent::StageStarted { stage } | TraceEvent::StageFinished { stage } => *stage,
            TraceEvent::LintStarted { .. }
            | TraceEvent::LintFinding { .. }
            | TraceEvent::LintVerdict { .. } => StageKind::Lint,
            TraceEvent::TaskCommitted { .. }
            | TraceEvent::TopoBacktrack { .. }
            | TraceEvent::SerializationAdded { .. } => StageKind::Timing,
            TraceEvent::SpikeDetected { .. }
            | TraceEvent::VictimDelayed { .. }
            | TraceEvent::ZeroSlackLocked { .. }
            | TraceEvent::PowerRecursion { .. }
            | TraceEvent::RespinStarted { .. } => StageKind::MaxPower,
            TraceEvent::GapScanStarted { .. }
            | TraceEvent::GapScanFinished { .. }
            | TraceEvent::GapFound { .. }
            | TraceEvent::MoveAccepted { .. }
            | TraceEvent::MoveRejected { .. } => StageKind::MinPower,
            TraceEvent::IncrementalCacheHit { stage }
            | TraceEvent::IncrementalDelta { stage, .. }
            | TraceEvent::IncrementalFallback { stage, .. } => *stage,
            TraceEvent::TaskDispatched { .. }
            | TraceEvent::TaskCompleted { .. }
            | TraceEvent::WindowFaultDetected { .. } => StageKind::Dispatch,
            TraceEvent::TaskBound { stage, .. } | TraceEvent::OutcomeRecorded { stage, .. } => {
                *stage
            }
        })
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

/// Error from [`TraceEvent::from_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    message: String,
}

impl TraceParseError {
    fn new(message: String) -> Self {
        TraceParseError { message }
    }
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error: {}", self.message)
    }
}

impl std::error::Error for TraceParseError {}

// ---------------------------------------------------------------------
// Flat-JSON writer
// ---------------------------------------------------------------------

struct JsonObject {
    buf: String,
}

impl JsonObject {
    fn new(event: &str) -> Self {
        let mut buf = String::with_capacity(96);
        buf.push_str("{\"event\":\"");
        buf.push_str(event);
        buf.push('"');
        JsonObject { buf }
    }

    fn int_field(&mut self, key: &str, value: i128) {
        self.key(key);
        self.buf.push_str(&value.to_string());
    }

    fn str_field(&mut self, key: &str, value: &str) {
        self.key(key);
        self.buf.push('"');
        // Wire strings are fixed vocabularies without escapes; assert
        // that stays true rather than silently corrupting output.
        debug_assert!(!value.contains(['"', '\\']));
        self.buf.push_str(value);
        self.buf.push('"');
    }

    fn ratio_field(&mut self, key: &str, value: Ratio) {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&value.numerator().to_string());
        self.buf.push('/');
        self.buf.push_str(&value.denominator().to_string());
        self.buf.push('"');
    }

    fn key(&mut self, key: &str) {
        self.buf.push_str(",\"");
        self.buf.push_str(key);
        self.buf.push_str("\":");
    }

    fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

// ---------------------------------------------------------------------
// Flat-JSON reader
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum JsonValue {
    Int(i128),
    Str(String),
}

/// Parses a single-line flat JSON object with integer and string
/// values only (exactly the shape [`TraceEvent::to_json`] emits,
/// though whitespace between tokens is tolerated).
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, TraceParseError> {
    let mut fields = Vec::new();
    let mut chars = line.trim().char_indices().peekable();
    let src = line.trim();

    let err = |msg: &str| TraceParseError::new(format!("{msg} in {src:?}"));

    match chars.next() {
        Some((_, '{')) => {}
        _ => return Err(err("expected '{'")),
    }

    loop {
        // Skip whitespace.
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }
        match chars.peek() {
            Some((_, '}')) => {
                chars.next();
                break;
            }
            Some((_, ',')) if !fields.is_empty() => {
                chars.next();
                while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
                    chars.next();
                }
            }
            Some((_, '"')) if fields.is_empty() => {}
            _ => return Err(err("expected ',' or '}'")),
        }

        // Key.
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err(err("expected '\"' starting a key")),
        }
        let mut key = String::new();
        loop {
            match chars.next() {
                Some((_, '"')) => break,
                Some((_, c)) if c != '\\' => key.push(c),
                _ => return Err(err("unterminated or escaped key")),
            }
        }

        // Colon.
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }
        match chars.next() {
            Some((_, ':')) => {}
            _ => return Err(err("expected ':'")),
        }
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }

        // Value: integer or string.
        let value = match chars.peek() {
            Some((_, '"')) => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some((_, '"')) => break,
                        Some((_, c)) if c != '\\' => s.push(c),
                        _ => return Err(err("unterminated or escaped string value")),
                    }
                }
                JsonValue::Str(s)
            }
            Some((_, c)) if *c == '-' || c.is_ascii_digit() => {
                let mut digits = String::new();
                if let Some((_, '-')) = chars.peek() {
                    digits.push('-');
                    chars.next();
                }
                while matches!(chars.peek(), Some((_, c)) if c.is_ascii_digit()) {
                    digits.push(chars.next().unwrap().1);
                }
                let n: i128 = digits.parse().map_err(|_| err("invalid integer literal"))?;
                JsonValue::Int(n)
            }
            _ => return Err(err("expected a value")),
        };

        fields.push((key, value));
    }

    while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
        chars.next();
    }
    if chars.next().is_some() {
        return Err(err("trailing garbage after '}'"));
    }
    Ok(fields)
}

/// Typed field accessors over a parsed flat object.
struct Fields<'a> {
    fields: &'a [(String, JsonValue)],
}

impl<'a> Fields<'a> {
    fn new(fields: &'a [(String, JsonValue)]) -> Self {
        Fields { fields }
    }

    fn get(&self, key: &str) -> Result<&'a JsonValue, TraceParseError> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| TraceParseError::new(format!("missing field {key:?}")))
    }

    fn str(&self, key: &str) -> Result<&'a str, TraceParseError> {
        match self.get(key)? {
            JsonValue::Str(s) => Ok(s),
            JsonValue::Int(_) => Err(TraceParseError::new(format!(
                "field {key:?} should be a string"
            ))),
        }
    }

    fn int(&self, key: &str) -> Result<i128, TraceParseError> {
        match self.get(key)? {
            JsonValue::Int(n) => Ok(*n),
            JsonValue::Str(_) => Err(TraceParseError::new(format!(
                "field {key:?} should be an integer"
            ))),
        }
    }

    fn i64(&self, key: &str) -> Result<i64, TraceParseError> {
        i64::try_from(self.int(key)?)
            .map_err(|_| TraceParseError::new(format!("field {key:?} overflows i64")))
    }

    fn u32(&self, key: &str) -> Result<u32, TraceParseError> {
        u32::try_from(self.int(key)?)
            .map_err(|_| TraceParseError::new(format!("field {key:?} overflows u32")))
    }

    fn u64(&self, key: &str) -> Result<u64, TraceParseError> {
        u64::try_from(self.int(key)?)
            .map_err(|_| TraceParseError::new(format!("field {key:?} overflows u64")))
    }

    fn task(&self, key: &str) -> Result<TaskId, TraceParseError> {
        let idx = self.int(key)?;
        let idx = usize::try_from(idx)
            .map_err(|_| TraceParseError::new(format!("field {key:?} is not a task index")))?;
        if idx > u32::MAX as usize {
            return Err(TraceParseError::new(format!(
                "field {key:?} exceeds the task-id range"
            )));
        }
        Ok(TaskId::from_index(idx))
    }

    fn time(&self, key: &str) -> Result<Time, TraceParseError> {
        Ok(Time::from_secs(self.i64(key)?))
    }

    fn span(&self, key: &str) -> Result<TimeSpan, TraceParseError> {
        Ok(TimeSpan::from_secs(self.i64(key)?))
    }

    fn power(&self, key: &str) -> Result<Power, TraceParseError> {
        Ok(Power::from_watts_milli(self.i64(key)?))
    }

    fn energy(&self, key: &str) -> Result<Energy, TraceParseError> {
        Ok(Energy::from_millijoules(self.i64(key)?))
    }

    fn ratio(&self, key: &str) -> Result<Ratio, TraceParseError> {
        let s = self.str(key)?;
        let (num, den) = s
            .split_once('/')
            .ok_or_else(|| TraceParseError::new(format!("field {key:?} is not \"num/den\"")))?;
        let num: i128 = num
            .parse()
            .map_err(|_| TraceParseError::new(format!("field {key:?} has a bad numerator")))?;
        let den: i128 = den
            .parse()
            .map_err(|_| TraceParseError::new(format!("field {key:?} has a bad denominator")))?;
        if den == 0 {
            return Err(TraceParseError::new(format!(
                "field {key:?} has a zero denominator"
            )));
        }
        Ok(Ratio::new(num, den))
    }

    fn stage(&self, key: &str) -> Result<StageKind, TraceParseError> {
        let s = self.str(key)?;
        StageKind::parse(s)
            .ok_or_else(|| TraceParseError::new(format!("field {key:?} has unknown stage {s:?}")))
    }

    fn scan(&self, key: &str) -> Result<ScanKind, TraceParseError> {
        let s = self.str(key)?;
        ScanKind::parse(s).ok_or_else(|| {
            TraceParseError::new(format!("field {key:?} has unknown scan order {s:?}"))
        })
    }

    fn slot(&self, key: &str) -> Result<SlotKind, TraceParseError> {
        let s = self.str(key)?;
        SlotKind::parse(s).ok_or_else(|| {
            TraceParseError::new(format!("field {key:?} has unknown slot policy {s:?}"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        let t = TaskId::from_index;
        vec![
            TraceEvent::LintStarted { tasks: 6, edges: 9 },
            TraceEvent::LintFinding {
                code: "PAS011".to_string(),
                severity: "warning".to_string(),
            },
            TraceEvent::LintVerdict {
                errors: 0,
                warnings: 1,
                rejected: false,
            },
            TraceEvent::StageStarted {
                stage: StageKind::Timing,
            },
            TraceEvent::TaskCommitted { task: t(0) },
            TraceEvent::SerializationAdded {
                committed: t(0),
                serialized: t(3),
            },
            TraceEvent::TopoBacktrack { task: t(3) },
            TraceEvent::StageFinished {
                stage: StageKind::Timing,
            },
            TraceEvent::StageStarted {
                stage: StageKind::MaxPower,
            },
            TraceEvent::SpikeDetected {
                t: Time::from_secs(4),
                power: Power::from_watts_milli(22_000),
                budget: Power::from_watts_milli(16_000),
            },
            TraceEvent::VictimDelayed {
                task: t(2),
                slack: TimeSpan::from_secs(5),
                delta: TimeSpan::from_secs(2),
            },
            TraceEvent::ZeroSlackLocked {
                task: t(1),
                at: Time::from_secs(0),
            },
            TraceEvent::PowerRecursion { depth: 1 },
            TraceEvent::RespinStarted { attempt: 2 },
            TraceEvent::StageFinished {
                stage: StageKind::MaxPower,
            },
            TraceEvent::GapScanStarted {
                pass: 1,
                order: ScanKind::Forward,
                slot: SlotKind::StartAtGap,
            },
            TraceEvent::GapFound {
                t: Time::from_secs(9),
                power: Power::from_watts_milli(4_000),
                floor: Power::from_watts_milli(8_000),
            },
            TraceEvent::MoveAccepted {
                task: t(4),
                delta: TimeSpan::from_secs(-3),
                rho_before: Ratio::new(5, 8),
                rho_after: Ratio::new(3, 4),
            },
            TraceEvent::MoveRejected {
                task: t(5),
                delta: TimeSpan::from_secs(1),
                rho_before: Ratio::new(3, 4),
                rho_after: Ratio::new(1, 2),
            },
            TraceEvent::GapScanFinished { pass: 1, moves: 1 },
            TraceEvent::IncrementalCacheHit {
                stage: StageKind::Timing,
            },
            TraceEvent::IncrementalDelta {
                stage: StageKind::MinPower,
                edges: 2,
                relaxations: 7,
            },
            TraceEvent::IncrementalFallback {
                stage: StageKind::MaxPower,
                reason: "removal".to_string(),
            },
            TraceEvent::TaskDispatched {
                task: t(0),
                planned: Time::from_secs(0),
                actual: Time::from_secs(1),
            },
            TraceEvent::TaskCompleted {
                task: t(0),
                at: Time::from_secs(11),
            },
            TraceEvent::WindowFaultDetected {
                from: t(0),
                to: t(2),
                allowed: TimeSpan::from_secs(10),
                actual: TimeSpan::from_secs(12),
            },
            TraceEvent::TaskBound {
                stage: StageKind::Timing,
                task: t(1),
                start: Time::from_secs(5),
                binding: Binding::Edge {
                    pred: t(0),
                    kind: "min".to_string(),
                    weight: TimeSpan::from_secs(5),
                },
            },
            TraceEvent::TaskBound {
                stage: StageKind::MaxPower,
                task: t(0),
                start: Time::from_secs(0),
                binding: Binding::Anchor,
            },
            TraceEvent::TaskBound {
                stage: StageKind::MinPower,
                task: t(4),
                start: Time::from_secs(17),
                binding: Binding::Power,
            },
            TraceEvent::OutcomeRecorded {
                stage: StageKind::MinPower,
                tau: Time::from_secs(45),
                energy_cost: Energy::from_millijoules(388_000),
                utilization: Ratio::new(449, 500),
                peak: Power::from_watts_milli(16_000),
            },
            TraceEvent::WorkerStarted { worker: 3 },
            TraceEvent::SearchSample {
                worker: 3,
                nodes: 4096,
                depth: 7,
                best: -1,
            },
            TraceEvent::IncumbentImproved {
                worker: 3,
                nodes: 5000,
                finish: Time::from_secs(45),
            },
            TraceEvent::SearchStatsRecorded {
                worker: 3,
                nodes: 6200,
                pruned_incumbent: 410,
                pruned_dominance: 77,
                pruned_horizon: 12,
                pruned_budget: 0,
                pruned_bound: 5,
                max_depth: 9,
                budget: 10_000,
            },
            TraceEvent::WorkerFinished { worker: 3 },
            TraceEvent::Unknown {
                name: "FutureEvent".to_string(),
                line: r#"{"event":"FutureEvent","frobs":3}"#.to_string(),
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        for event in sample_events() {
            let line = event.to_json();
            let parsed = TraceEvent::from_json(&line)
                .unwrap_or_else(|e| panic!("failed to parse {line}: {e}"));
            assert_eq!(parsed, event, "round trip mismatch for {line}");
        }
    }

    #[test]
    fn json_shape_is_flat_and_stable() {
        let event = TraceEvent::SpikeDetected {
            t: Time::from_secs(4),
            power: Power::from_watts_milli(22_000),
            budget: Power::from_watts_milli(16_000),
        };
        assert_eq!(
            event.to_json(),
            r#"{"event":"SpikeDetected","t":4,"power":22000,"budget":16000}"#
        );
        let event = TraceEvent::MoveAccepted {
            task: TaskId::from_index(4),
            delta: TimeSpan::from_secs(-3),
            rho_before: Ratio::new(5, 8),
            rho_after: Ratio::new(3, 4),
        };
        assert_eq!(
            event.to_json(),
            r#"{"event":"MoveAccepted","task":4,"delta":-3,"rho_before":"5/8","rho_after":"3/4"}"#
        );
    }

    #[test]
    fn parser_tolerates_whitespace() {
        let line = r#" { "event" : "PowerRecursion" , "depth" : 3 } "#;
        assert_eq!(
            TraceEvent::from_json(line).unwrap(),
            TraceEvent::PowerRecursion { depth: 3 }
        );
    }

    #[test]
    fn parser_rejects_structurally_malformed_lines() {
        for bad in [
            "",
            "{",
            "{}",
            r#"{"event":"PowerRecursion","depth":3} trailing"#,
        ] {
            assert!(
                TraceEvent::from_json(bad).is_err(),
                "expected parse failure for {bad:?}"
            );
        }
    }

    #[test]
    fn unrecognized_lines_degrade_to_lossless_unknown() {
        for (line, name) in [
            (r#"{"event":"NoSuchEvent"}"#, "NoSuchEvent"),
            (r#"{"event":"PowerRecursion"}"#, "PowerRecursion"),
            (
                r#"{"event":"PowerRecursion","depth":"three"}"#,
                "PowerRecursion",
            ),
            (
                r#"{"event":"TaskCommitted","task":3,"flux":9}"#,
                "TaskCommitted",
            ),
            (
                r#"{"event":"MoveAccepted","task":1,"delta":0,"rho_before":"1:2","rho_after":"1/2"}"#,
                "MoveAccepted",
            ),
            (
                r#"{"event":"MoveAccepted","task":1,"delta":0,"rho_before":"1/0","rho_after":"1/2"}"#,
                "MoveAccepted",
            ),
            (
                r#" {"event":"TaskBound","stage":"timing","task":0,"start":0,"via":"teleport"} "#,
                "TaskBound",
            ),
        ] {
            let parsed = TraceEvent::from_json(line)
                .unwrap_or_else(|e| panic!("expected Unknown for {line:?}, got error {e}"));
            match &parsed {
                TraceEvent::Unknown {
                    name: got_name,
                    line: got_line,
                } => {
                    assert_eq!(got_name, name, "wrong name for {line:?}");
                    assert_eq!(got_line, line.trim(), "Unknown must store the raw line");
                }
                other => panic!("expected Unknown for {line:?}, got {other:?}"),
            }
            assert_eq!(parsed.stage(), None, "Unknown events carry no stage");
            assert_eq!(
                parsed.to_json(),
                line.trim(),
                "Unknown must round-trip losslessly"
            );
        }
    }

    #[test]
    fn events_know_their_stage() {
        assert_eq!(
            TraceEvent::LintVerdict {
                errors: 1,
                warnings: 0,
                rejected: true
            }
            .stage(),
            Some(StageKind::Lint)
        );
        assert_eq!(
            TraceEvent::TaskCommitted {
                task: TaskId::from_index(0)
            }
            .stage(),
            Some(StageKind::Timing)
        );
        assert_eq!(
            TraceEvent::PowerRecursion { depth: 1 }.stage(),
            Some(StageKind::MaxPower)
        );
        assert_eq!(
            TraceEvent::GapScanFinished { pass: 1, moves: 0 }.stage(),
            Some(StageKind::MinPower)
        );
        assert_eq!(
            TraceEvent::TaskCompleted {
                task: TaskId::from_index(0),
                at: Time::from_secs(0)
            }
            .stage(),
            Some(StageKind::Dispatch)
        );
        assert_eq!(TraceEvent::WorkerStarted { worker: 0 }.stage(), None);
        assert_eq!(TraceEvent::WorkerFinished { worker: 7 }.stage(), None);
        assert_eq!(
            TraceEvent::SearchSample {
                worker: 0,
                nodes: 1024,
                depth: 3,
                best: 45
            }
            .stage(),
            None
        );
        assert_eq!(
            TraceEvent::IncumbentImproved {
                worker: 1,
                nodes: 10,
                finish: Time::from_secs(45)
            }
            .stage(),
            None
        );
    }
}
