//! Hand-written validator for the Prometheus *text exposition
//! format*.
//!
//! Born in the export-format test suite and promoted to the library
//! so live consumers — `impacct-cli top`, the `pas-server` smoke
//! tests, CI scrape jobs — can check a real `/metrics` scrape with
//! the exact strictness a Prometheus scraper applies: comment-line
//! grammar, metric-name charset, label escape decoding, and the
//! histogram invariants (cumulative buckets, mandatory `_sum` /
//! `_count`, `+Inf == _count`). No dependency is pulled in; the point
//! is to fail when an exporter drifts from what real scrapers accept.

use std::collections::HashMap;

/// Validates `text` against the Prometheus text exposition format and
/// the histogram invariants (cumulative buckets, mandatory series).
///
/// Returns the first violation as a human-readable message with a
/// line number.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    let mut types: HashMap<String, String> = HashMap::new();
    // name -> (bucket cumulative counts in order, has_sum, has_count, count value)
    let mut histograms: HashMap<String, (Vec<u64>, bool, bool, u64)> = HashMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut words = rest.splitn(3, ' ');
            match (words.next(), words.next(), words.next()) {
                (Some("HELP"), Some(name), Some(help)) => {
                    check_metric_name(name).map_err(|e| format!("line {n}: {e}"))?;
                    if help.trim().is_empty() {
                        return Err(format!("line {n}: empty HELP text"));
                    }
                }
                (Some("TYPE"), Some(name), Some(kind)) => {
                    check_metric_name(name).map_err(|e| format!("line {n}: {e}"))?;
                    if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                        return Err(format!("line {n}: unknown metric type {kind:?}"));
                    }
                    types.insert(name.to_string(), kind.to_string());
                }
                _ => return Err(format!("line {n}: malformed comment {line:?}")),
            }
            continue;
        }

        // Sample line: name[{labels}] value
        let (name_and_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: no sample value in {line:?}"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {n}: bad sample value {value:?}"))?;
        let (name, labels) = match name_and_labels.split_once('{') {
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {n}: unterminated label set"))?;
                (
                    name,
                    parse_labels(body).map_err(|e| format!("line {n}: {e}"))?,
                )
            }
            None => (name_and_labels, Vec::new()),
        };
        check_metric_name(name).map_err(|e| format!("line {n}: {e}"))?;

        // Resolve the histogram family for _bucket/_sum/_count series.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| name.strip_suffix(suffix).map(|base| (base, *suffix)))
            .filter(|(base, _)| types.get(*base).map(String::as_str) == Some("histogram"));
        match family {
            Some((base, "_bucket")) => {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.clone())
                    .ok_or_else(|| format!("line {n}: histogram bucket without le label"))?;
                if le != "+Inf" {
                    le.parse::<f64>()
                        .map_err(|_| format!("line {n}: bad le bound {le:?}"))?;
                }
                histograms
                    .entry(base.to_string())
                    .or_default()
                    .0
                    .push(value as u64);
            }
            Some((base, "_sum")) => histograms.entry(base.to_string()).or_default().1 = true,
            Some((base, "_count")) => {
                let entry = histograms.entry(base.to_string()).or_default();
                entry.2 = true;
                entry.3 = value as u64;
            }
            _ => {
                if !types.contains_key(name) {
                    return Err(format!("line {n}: sample {name:?} has no # TYPE"));
                }
            }
        }
    }

    for (name, (buckets, has_sum, has_count, count)) in &histograms {
        if buckets.is_empty() {
            return Err(format!("histogram {name}: no buckets"));
        }
        if !buckets.windows(2).all(|w| w[0] <= w[1]) {
            return Err(format!("histogram {name}: buckets are not cumulative"));
        }
        if !(*has_sum && *has_count) {
            return Err(format!("histogram {name}: missing _sum or _count"));
        }
        if buckets.last() != Some(count) {
            return Err(format!("histogram {name}: +Inf bucket != _count"));
        }
    }
    Ok(())
}

fn check_metric_name(name: &str) -> Result<(), String> {
    let mut chars = name.chars();
    let ok_first = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    if ok_first && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
        Ok(())
    } else {
        Err(format!("bad metric name {name:?}"))
    }
}

/// Parses a label body (`key="value",...`), decoding the exposition
/// format's escapes (`\\`, `\"`, `\n`) and rejecting raw `"` / `\` /
/// newline bytes inside values — exactly what a Prometheus scraper
/// enforces.
pub fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("missing '=' in label set {body:?}"))?;
        let key = &rest[..eq];
        check_metric_name(key)?;
        rest = &rest[eq + 1..];
        let mut chars = rest.char_indices();
        if !matches!(chars.next(), Some((_, '"'))) {
            return Err(format!("unquoted label value for {key:?}"));
        }
        let mut value = String::new();
        let mut after_quote = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => {
                        return Err(format!(
                            "bad escape in label value for {key:?}: \\{:?}",
                            other.map(|(_, c)| c)
                        ))
                    }
                },
                '"' => {
                    after_quote = Some(i + 1);
                    break;
                }
                '\n' => return Err(format!("raw newline in label value for {key:?}")),
                c => value.push(c),
            }
        }
        let after_quote =
            after_quote.ok_or_else(|| format!("unterminated label value for {key:?}"))?;
        labels.push((key.to_string(), value));
        rest = &rest[after_quote..];
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped;
        } else if !rest.is_empty() {
            return Err(format!("expected ',' between labels, found {rest:?}"));
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_well_formed_family() {
        let text = "# HELP m_total things\n# TYPE m_total counter\nm_total{kind=\"a\"} 3\n";
        validate_prometheus(text).unwrap();
    }

    #[test]
    fn rejects_untyped_samples_and_broken_histograms() {
        assert!(validate_prometheus("mystery 1\n").is_err());
        let h = "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 4\nh_sum 9\nh_count 4\n";
        assert!(
            validate_prometheus(h).unwrap_err().contains("cumulative"),
            "non-monotone buckets must be reported"
        );
    }

    #[test]
    fn label_escapes_round_trip() {
        let labels = parse_labels(r#"model="a\"b\\c\nd""#).unwrap();
        assert_eq!(
            labels,
            vec![("model".to_string(), "a\"b\\c\nd".to_string())]
        );
    }
}
