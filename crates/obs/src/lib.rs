//! # pas-obs — observability for the power-aware scheduling pipeline
//!
//! Zero-cost-when-disabled structured tracing, metrics, and profiling
//! hooks for the DAC 2001 scheduling pipeline:
//!
//! * [`TraceEvent`] — one variant per algorithmic decision across all
//!   three scheduler stages (timing, max-power, min-power) and the
//!   runtime dispatcher, with a dependency-free JSONL codec;
//! * [`Observer`] — the sink trait the schedulers are generic over.
//!   [`NullObserver`] (the default) reports itself disabled and
//!   monomorphizes to nothing; [`CountingObserver`] keeps per-variant
//!   tallies; [`RecordingObserver`] keeps the events themselves in a
//!   ring buffer; [`JsonlWriter`] streams them to disk; [`Tee`] fans
//!   out to two sinks at once; [`SharedObserver`] makes any sink
//!   clonable and thread-safe for multi-threaded request handling;
//! * [`StageProfiler`] — turns `StageStarted`/`StageFinished` markers
//!   into per-stage wall-clock [`StageProfile`]s without perturbing
//!   the deterministic event payloads, and keeps individual
//!   [`SpanRecord`]s for Chrome-trace (Perfetto-loadable) export;
//! * [`MetricsRegistry`] — counters plus log-bucketed [`Histogram`]s
//!   over the event stream, rendered as Prometheus text exposition;
//! * sliding-window instruments for long-running services:
//!   [`RollingCounter`] (per-second rates) and [`WindowedHistogram`]
//!   (windowed latency quantiles via [`Histogram::quantile`]).
//!
//! ## Event vocabulary
//!
//! | Stage | Events |
//! |---|---|
//! | lint (pas-lint guard) | `LintStarted`, `LintFinding`, `LintVerdict` |
//! | timing (Fig. 3) | `TaskCommitted`, `SerializationAdded`, `TopoBacktrack` |
//! | max-power (Fig. 4) | `SpikeDetected`, `VictimDelayed`, `ZeroSlackLocked`, `PowerRecursion`, `RespinStarted` |
//! | min-power (Fig. 6) | `GapScanStarted`, `GapFound`, `MoveAccepted`, `MoveRejected`, `GapScanFinished` |
//! | dispatch | `TaskDispatched`, `TaskCompleted`, `WindowFaultDetected` |
//! | incremental engine | `IncrementalCacheHit`, `IncrementalDelta`, `IncrementalFallback` |
//! | provenance (per stage outcome) | `TaskBound` (with a [`Binding`]), `OutcomeRecorded` |
//! | parallel trace stitching | `WorkerStarted`, `WorkerFinished` |
//! | search telemetry (B&B + timing backtracker) | `SearchSample`, `IncumbentImproved`, `SearchStatsRecorded` |
//! | all | `StageStarted`, `StageFinished` |
//!
//! Lines written by newer binaries that this build does not recognize
//! parse as `TraceEvent::Unknown`, preserving the raw line losslessly
//! so replay and diff tools can pass them through.
//!
//! ## Example
//!
//! ```
//! use pas_obs::{CountingObserver, Observer, TraceEvent, StageKind};
//!
//! let mut obs = CountingObserver::new();
//! if obs.is_enabled() {
//!     obs.on_event(&TraceEvent::StageStarted { stage: StageKind::Timing });
//! }
//! assert_eq!(obs.counts().stage_starts, 1);
//!
//! // Every event round-trips through its one-line JSON form.
//! let line = TraceEvent::PowerRecursion { depth: 2 }.to_json();
//! assert_eq!(line, r#"{"event":"PowerRecursion","depth":2}"#);
//! assert_eq!(
//!     TraceEvent::from_json(&line).unwrap(),
//!     TraceEvent::PowerRecursion { depth: 2 },
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod expo;
mod jsonl;
mod metrics;
mod observer;
mod profile;
mod stitch;

pub use event::{Binding, ScanKind, SlotKind, StageKind, TraceEvent, TraceParseError};
pub use jsonl::{parse_jsonl, JsonlWriter};
pub use metrics::{
    collapsed_stacks, escape_label_value, HighWater, Histogram, MetricsRegistry, RollingCounter,
    WindowedHistogram,
};
pub use observer::{
    CountingObserver, EventCounts, NullObserver, Observer, RecordingObserver, SharedObserver, Tee,
};
pub use profile::{render_profile_table, SpanRecord, StageProfile, StageProfiler};
pub use stitch::{stitch_all, stitch_segment};
