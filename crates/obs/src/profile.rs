//! Wall-clock profiling of pipeline stages driven by the event
//! stream.
//!
//! Timing lives on the observer side ([`StageProfiler`] reads
//! [`Instant::now`] when stage markers arrive) so the emitted
//! [`TraceEvent`]s themselves stay fully deterministic and
//! byte-reproducible across runs.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use crate::event::{StageKind, TraceEvent};
use crate::observer::{EventCounts, Observer};

/// Aggregated timing and event statistics for one pipeline stage.
#[derive(Debug, Clone, Default)]
pub struct StageProfile {
    /// Total wall time spent inside `StageStarted`/`StageFinished`
    /// spans of this stage.
    pub wall: Duration,
    /// Number of completed spans (a stage can run more than once, e.g.
    /// under portfolio restarts).
    pub runs: u64,
    /// Per-variant tallies of events attributed to this stage.
    pub counts: EventCounts,
    /// Wall time of each min-power gap-scan pass, in arrival order
    /// (empty for other stages).
    pub scan_walls: Vec<Duration>,
}

impl StageProfile {
    /// Events attributed to this stage, excluding the stage markers
    /// themselves.
    pub fn decision_events(&self) -> u64 {
        self.counts
            .total
            .saturating_sub(self.counts.stage_starts + self.counts.stage_finishes)
    }
}

/// One completed stage span, relative to the profiler's first event.
///
/// Spans are the raw material for the Chrome-trace export: each
/// `StageStarted`/`StageFinished` pair becomes one complete (`"ph":"X"`)
/// trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Which stage ran.
    pub stage: StageKind,
    /// Start offset from the first observed event.
    pub start: Duration,
    /// Wall-clock duration of the span.
    pub wall: Duration,
}

/// Observer that turns stage markers into [`StageProfile`]s.
///
/// * `StageStarted`/`StageFinished` pairs are timed with a monotonic
///   clock; nested or repeated spans accumulate.
/// * Every other event is attributed to the innermost open stage, or
///   to its intrinsic stage ([`TraceEvent::stage`]) when none is open.
/// * `GapScanStarted`/`GapScanFinished` additionally time individual
///   min-power passes into [`StageProfile::scan_walls`].
/// * Each completed span is also kept individually (see
///   [`StageProfiler::spans`]) and can be exported as Chrome-trace
///   JSON ([`StageProfiler::chrome_trace`]) loadable in Perfetto or
///   `chrome://tracing`.
///
/// Usually combined with another sink via [`crate::Tee`].
#[derive(Debug, Clone, Default)]
pub struct StageProfiler {
    profiles: [StageProfile; StageKind::ALL.len()],
    open: Vec<(StageKind, Instant)>,
    scan_open: Option<Instant>,
    origin: Option<Instant>,
    spans: Vec<SpanRecord>,
    worker_open: Vec<(u32, Instant)>,
    worker_spans: Vec<WorkerSpan>,
    counter_points: Vec<CounterPoint>,
}

/// One stitched worker segment (`WorkerStarted`→`WorkerFinished`),
/// exported as its own Chrome-trace lane. Offsets are observer-side
/// arrival times: live in sequential runs, stitch-time in parallel
/// runs (per-worker wall clocks come from `pas-par`, not the trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WorkerSpan {
    worker: u32,
    start: Duration,
    wall: Duration,
}

/// One `SearchSample` folded into a Chrome counter track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CounterPoint {
    worker: u32,
    at: Duration,
    nodes: u64,
    best: i64,
}

impl StageProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        StageProfiler::default()
    }

    /// The profile gathered for `stage` so far.
    pub fn profile(&self, stage: StageKind) -> &StageProfile {
        &self.profiles[stage.index()]
    }

    /// `(stage, profile)` pairs for every stage that saw at least one
    /// event, in pipeline order.
    pub fn profiles(&self) -> Vec<(StageKind, StageProfile)> {
        StageKind::ALL
            .iter()
            .filter(|s| self.profiles[s.index()].counts.total > 0)
            .map(|s| (*s, self.profiles[s.index()].clone()))
            .collect()
    }

    /// Renders an aligned plain-text summary table of all non-empty
    /// stages.
    pub fn render_table(&self) -> String {
        render_profile_table(&self.profiles())
    }

    /// Completed stage spans in completion order, offsets relative to
    /// the first observed event.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Renders the completed spans as Chrome-trace JSON (the
    /// "JSON Array Format" with complete events), loadable in Perfetto
    /// and `chrome://tracing`.
    ///
    /// Stage spans render on `tid 1`; each stitched worker segment
    /// gets its own lane (`tid = worker + 2`) named `worker-N`, and
    /// `SearchSample` telemetry becomes per-worker counter tracks
    /// (`"ph":"C"`) plotting nodes expanded and the incumbent bound.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if !first {
                out.push(',');
            }
            first = false;
        };
        for span in &self.spans {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"stage\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":1}}",
                span.stage,
                span.start.as_micros(),
                span.wall.as_micros(),
            );
        }
        for span in &self.worker_spans {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"worker-{}\",\"cat\":\"worker\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
                span.worker,
                span.start.as_micros(),
                span.wall.as_micros(),
                u64::from(span.worker) + 2,
            );
        }
        for point in &self.counter_points {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"search worker-{}\",\"cat\":\"search\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{\"nodes\":{},\"best\":{}}}}}",
                point.worker,
                point.at.as_micros(),
                u64::from(point.worker) + 2,
                point.nodes,
                point.best,
            );
        }
        out.push_str("]}");
        out
    }

    fn attribute(&mut self, event: &TraceEvent) -> Option<StageKind> {
        self.open
            .last()
            .map(|(stage, _)| *stage)
            .or_else(|| event.stage())
    }
}

impl Observer for StageProfiler {
    fn on_event(&mut self, event: &TraceEvent) {
        let now = Instant::now();
        let origin = *self.origin.get_or_insert(now);
        // Worker lanes and counter tracks, orthogonal to stage
        // attribution below.
        match event {
            TraceEvent::WorkerStarted { worker } => self.worker_open.push((*worker, now)),
            TraceEvent::WorkerFinished { worker } => {
                if let Some(pos) = self.worker_open.iter().rposition(|(w, _)| w == worker) {
                    let (_, started) = self.worker_open.remove(pos);
                    self.worker_spans.push(WorkerSpan {
                        worker: *worker,
                        start: started.duration_since(origin),
                        wall: now.duration_since(started),
                    });
                }
            }
            TraceEvent::SearchSample {
                worker,
                nodes,
                best,
                ..
            } => {
                self.counter_points.push(CounterPoint {
                    worker: *worker,
                    at: now.duration_since(origin),
                    nodes: *nodes,
                    best: *best,
                });
            }
            _ => {}
        }
        match event {
            TraceEvent::StageStarted { stage } => {
                self.profiles[stage.index()].counts.record(event);
                self.open.push((*stage, now));
            }
            TraceEvent::StageFinished { stage } => {
                let profile = &mut self.profiles[stage.index()];
                profile.counts.record(event);
                // Close the innermost matching span; tolerate a stray
                // finish with no matching start.
                if let Some(pos) = self.open.iter().rposition(|(s, _)| s == stage) {
                    let (_, started) = self.open.remove(pos);
                    let wall = now.duration_since(started);
                    profile.wall += wall;
                    profile.runs += 1;
                    self.spans.push(SpanRecord {
                        stage: *stage,
                        start: started.duration_since(origin),
                        wall,
                    });
                }
            }
            _ => {
                if let Some(stage) = self.attribute(event) {
                    let profile = &mut self.profiles[stage.index()];
                    profile.counts.record(event);
                    match event {
                        TraceEvent::GapScanStarted { .. } => self.scan_open = Some(now),
                        TraceEvent::GapScanFinished { .. } => {
                            if let Some(started) = self.scan_open.take() {
                                profile.scan_walls.push(now.duration_since(started));
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}

/// Renders `(stage, profile)` rows as an aligned plain-text table.
pub fn render_profile_table(profiles: &[(StageKind, StageProfile)]) -> String {
    const HEADERS: [&str; 5] = ["stage", "runs", "wall", "events", "detail"];
    let mut rows: Vec<[String; 5]> = Vec::with_capacity(profiles.len());
    for (stage, p) in profiles {
        rows.push([
            stage.to_string(),
            p.runs.to_string(),
            format_duration(p.wall),
            p.decision_events().to_string(),
            stage_detail(*stage, p),
        ]);
    }

    let mut widths = HEADERS.map(str::len);
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }

    let mut out = String::new();
    let rule_len = widths.iter().sum::<usize>() + 3 * (widths.len() - 1);
    write_row(&mut out, &widths, &HEADERS.map(String::from));
    out.push_str(&"-".repeat(rule_len));
    out.push('\n');
    for row in &rows {
        write_row(&mut out, &widths, row);
    }
    out
}

fn write_row(out: &mut String, widths: &[usize; 5], cells: &[String; 5]) {
    for (i, (cell, width)) in cells.iter().zip(widths.iter()).enumerate() {
        if i > 0 {
            out.push_str(" | ");
        }
        // Left-align the first and last columns, right-align numerics.
        if i == 0 || i == 4 {
            let _ = write!(out, "{cell:<width$}");
        } else {
            let _ = write!(out, "{cell:>width$}");
        }
    }
    // Trim the padding of the final column.
    while out.ends_with(' ') {
        out.pop();
    }
    out.push('\n');
}

fn stage_detail(stage: StageKind, p: &StageProfile) -> String {
    let c = &p.counts;
    match stage {
        StageKind::Lint => format!(
            "{} runs, {} findings, {} rejections",
            c.lint_runs, c.lint_findings, c.lint_rejections
        ),
        StageKind::Timing => format!(
            "{} commits, {} serializations, {} backtracks",
            c.tasks_committed, c.serializations, c.topo_backtracks
        ),
        StageKind::MaxPower => format!(
            "{} spikes, {} delays, {} locks, {} recursions",
            c.spikes_detected, c.victim_delays, c.zero_slack_locks, c.power_recursions
        ),
        StageKind::MinPower => format!(
            "{} scans, {} gaps, {} moves (+{} rejected)",
            c.gap_scans, c.gaps_found, c.moves_accepted, c.moves_rejected
        ),
        StageKind::Dispatch => format!(
            "{} dispatched, {} completed, {} window faults",
            c.tasks_dispatched, c.tasks_completed, c.window_faults
        ),
    }
}

/// Formats a duration with millisecond-level resolution, keeping the
/// table compact for both micro- and multi-second stages.
fn format_duration(d: Duration) -> String {
    let micros = d.as_micros();
    if micros < 1_000 {
        format!("{micros}\u{b5}s")
    } else if micros < 1_000_000 {
        format!("{:.3}ms", micros as f64 / 1_000.0)
    } else {
        format!("{:.3}s", micros as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_graph::TaskId;

    #[test]
    fn spans_accumulate_wall_time_and_runs() {
        let mut prof = StageProfiler::new();
        for _ in 0..2 {
            prof.on_event(&TraceEvent::StageStarted {
                stage: StageKind::Timing,
            });
            prof.on_event(&TraceEvent::TaskCommitted {
                task: TaskId::from_index(0),
            });
            prof.on_event(&TraceEvent::StageFinished {
                stage: StageKind::Timing,
            });
        }
        let p = prof.profile(StageKind::Timing);
        assert_eq!(p.runs, 2);
        assert_eq!(p.counts.tasks_committed, 2);
        assert_eq!(p.decision_events(), 2);
    }

    #[test]
    fn events_attribute_to_innermost_open_stage() {
        let mut prof = StageProfiler::new();
        prof.on_event(&TraceEvent::StageStarted {
            stage: StageKind::MaxPower,
        });
        // Timing event arriving while max-power is open (the paper's
        // stage 2 re-runs stage 1 internally) counts toward max-power.
        prof.on_event(&TraceEvent::TaskCommitted {
            task: TaskId::from_index(1),
        });
        prof.on_event(&TraceEvent::StageFinished {
            stage: StageKind::MaxPower,
        });
        assert_eq!(prof.profile(StageKind::MaxPower).counts.tasks_committed, 1);
        assert_eq!(prof.profile(StageKind::Timing).counts.total, 0);
    }

    #[test]
    fn orphan_events_fall_back_to_intrinsic_stage() {
        let mut prof = StageProfiler::new();
        prof.on_event(&TraceEvent::PowerRecursion { depth: 1 });
        assert_eq!(prof.profile(StageKind::MaxPower).counts.power_recursions, 1);
    }

    #[test]
    fn gap_scans_record_per_pass_walls() {
        let mut prof = StageProfiler::new();
        prof.on_event(&TraceEvent::StageStarted {
            stage: StageKind::MinPower,
        });
        for pass in 1..=3u32 {
            prof.on_event(&TraceEvent::GapScanStarted {
                pass,
                order: crate::ScanKind::Forward,
                slot: crate::SlotKind::StartAtGap,
            });
            prof.on_event(&TraceEvent::GapScanFinished { pass, moves: 0 });
        }
        prof.on_event(&TraceEvent::StageFinished {
            stage: StageKind::MinPower,
        });
        assert_eq!(prof.profile(StageKind::MinPower).scan_walls.len(), 3);
    }

    #[test]
    fn table_lists_only_active_stages() {
        let mut prof = StageProfiler::new();
        prof.on_event(&TraceEvent::StageStarted {
            stage: StageKind::Timing,
        });
        prof.on_event(&TraceEvent::StageFinished {
            stage: StageKind::Timing,
        });
        let table = prof.render_table();
        assert!(table.contains("timing"));
        assert!(!table.contains("dispatch"));
        assert!(table.lines().count() >= 3, "header + rule + row");
    }

    #[test]
    fn spans_and_chrome_trace_cover_each_completed_stage() {
        let mut prof = StageProfiler::new();
        for stage in [StageKind::Timing, StageKind::MaxPower] {
            prof.on_event(&TraceEvent::StageStarted { stage });
            prof.on_event(&TraceEvent::StageFinished { stage });
        }
        let spans = prof.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage, StageKind::Timing);
        assert_eq!(spans[1].stage, StageKind::MaxPower);
        assert!(spans[1].start >= spans[0].start, "spans ordered by start");

        let json = prof.chrome_trace();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"name\":\"timing\""));
        assert!(json.contains("\"name\":\"max-power\""));
    }

    #[test]
    fn chrome_trace_gains_worker_lanes_and_counter_tracks() {
        let mut prof = StageProfiler::new();
        prof.on_event(&TraceEvent::WorkerStarted { worker: 0 });
        prof.on_event(&TraceEvent::SearchSample {
            worker: 0,
            nodes: 1024,
            depth: 3,
            best: -1,
        });
        prof.on_event(&TraceEvent::SearchSample {
            worker: 0,
            nodes: 2048,
            depth: 5,
            best: 45,
        });
        prof.on_event(&TraceEvent::WorkerFinished { worker: 0 });
        prof.on_event(&TraceEvent::WorkerStarted { worker: 1 });
        prof.on_event(&TraceEvent::WorkerFinished { worker: 1 });

        let json = prof.chrome_trace();
        assert!(json.contains("\"name\":\"worker-0\""));
        assert!(json.contains("\"name\":\"worker-1\""));
        // Worker lanes are offset past the stage lane (tid 1).
        assert!(json.contains("\"cat\":\"worker\",\"ph\":\"X\""));
        assert!(json.contains("\"tid\":2"));
        assert!(json.contains("\"tid\":3"));
        assert_eq!(json.matches("\"ph\":\"C\"").count(), 2);
        assert!(json.contains("\"args\":{\"nodes\":2048,\"best\":45}"));
    }

    #[test]
    fn durations_format_across_scales() {
        assert_eq!(format_duration(Duration::from_micros(250)), "250\u{b5}s");
        assert_eq!(format_duration(Duration::from_micros(1_500)), "1.500ms");
        assert_eq!(format_duration(Duration::from_millis(2_500)), "2.500s");
    }
}
