//! Streaming JSONL sink: one [`TraceEvent`] per line.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::event::TraceEvent;
use crate::observer::Observer;

/// Observer that streams events to any [`Write`] as JSON lines.
///
/// I/O failures do not panic inside the schedulers: the first error is
/// stashed (see [`JsonlWriter::last_error`]) and further writes are
/// skipped, so a full disk degrades tracing instead of aborting a
/// scheduling run.
///
/// Dropping the writer flushes best-effort; call [`JsonlWriter::finish`]
/// to surface deferred errors and get the line count.
#[derive(Debug)]
pub struct JsonlWriter<W: Write> {
    out: Option<W>,
    lines: u64,
    error: Option<io::Error>,
}

impl JsonlWriter<BufWriter<File>> {
    /// Creates (truncating) a trace file at `path`, buffered.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(JsonlWriter::new(BufWriter::new(File::create(path)?)))
    }
}

impl JsonlWriter<Box<dyn Write>> {
    /// Creates a trace sink at `path`, with `"-"` meaning stdout.
    ///
    /// This is the shared CLI convention: file paths get a buffered
    /// truncating writer, `-` streams lines straight to stdout so the
    /// trace can be piped into other tools.
    pub fn create_or_stdout(path: &str) -> io::Result<Self> {
        let out: Box<dyn Write> = if path == "-" {
            Box::new(io::stdout())
        } else {
            Box::new(BufWriter::new(File::create(path)?))
        };
        Ok(JsonlWriter::new(out))
    }
}

impl<W: Write> JsonlWriter<W> {
    /// Wraps an arbitrary writer. Callers should pass something
    /// buffered; one `write_all` is issued per event.
    pub fn new(out: W) -> Self {
        JsonlWriter {
            out: Some(out),
            lines: 0,
            error: None,
        }
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The first I/O error encountered, if any. Once set, subsequent
    /// events are dropped silently.
    pub fn last_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        match self.out.as_mut() {
            Some(out) => out.flush(),
            None => Ok(()),
        }
    }

    /// Flushes, surfaces any deferred write error, and returns the
    /// number of lines written.
    pub fn finish(mut self) -> io::Result<u64> {
        if let Some(err) = self.error.take() {
            return Err(err);
        }
        if let Some(mut out) = self.out.take() {
            out.flush()?;
        }
        Ok(self.lines)
    }

    /// Flushes and returns the underlying writer, surfacing any
    /// deferred write error first.
    pub fn into_inner(mut self) -> io::Result<W> {
        if let Some(err) = self.error.take() {
            return Err(err);
        }
        let mut out = self.out.take().expect("writer only vacated by consumers");
        out.flush()?;
        Ok(out)
    }
}

impl<W: Write> Drop for JsonlWriter<W> {
    fn drop(&mut self) {
        // finish()/into_inner() already flushed and vacated `out`; a
        // writer dropped without either still gets its buffer pushed
        // out, errors ignored (Drop cannot report them).
        if let Some(out) = self.out.as_mut() {
            let _ = out.flush();
        }
    }
}

impl<W: Write> Observer for JsonlWriter<W> {
    fn on_event(&mut self, event: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let Some(out) = self.out.as_mut() else {
            return;
        };
        let mut line = event.to_json();
        line.push('\n');
        match out.write_all(line.as_bytes()) {
            Ok(()) => self.lines += 1,
            Err(err) => self.error = Some(err),
        }
    }
}

/// Parses a whole JSONL trace back into events, skipping blank lines.
///
/// Returns the first structurally malformed line as an error with its
/// 1-based line number. Lines that are valid flat JSON objects but not
/// recognized events come back as [`TraceEvent::Unknown`] (see the
/// forward-compat policy on [`TraceEvent::from_json`]).
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = TraceEvent::from_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        events.push(event);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StageKind;
    use pas_graph::TaskId;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn writes_one_line_per_event_and_round_trips() {
        let mut w = JsonlWriter::new(Vec::new());
        let events = vec![
            TraceEvent::StageStarted {
                stage: StageKind::Timing,
            },
            TraceEvent::TaskCommitted {
                task: TaskId::from_index(7),
            },
            TraceEvent::StageFinished {
                stage: StageKind::Timing,
            },
        ];
        for e in &events {
            w.on_event(e);
        }
        assert_eq!(w.lines(), 3);
        let bytes = w.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert_eq!(parse_jsonl(&text).unwrap(), events);
    }

    #[test]
    fn finish_reports_the_line_count() {
        let mut w = JsonlWriter::new(Vec::new());
        for depth in 0..5 {
            w.on_event(&TraceEvent::PowerRecursion { depth });
        }
        assert_eq!(w.finish().unwrap(), 5);
    }

    #[test]
    fn io_errors_are_deferred_not_panicked() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = JsonlWriter::new(Broken);
        w.on_event(&TraceEvent::PowerRecursion { depth: 1 });
        w.on_event(&TraceEvent::PowerRecursion { depth: 2 });
        assert_eq!(w.lines(), 0);
        assert!(w.last_error().is_some());
        assert!(w.finish().is_err());
    }

    #[test]
    fn drop_flushes_the_underlying_writer() {
        #[derive(Clone)]
        struct FlushCounter(Rc<RefCell<u32>>);
        impl Write for FlushCounter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                *self.0.borrow_mut() += 1;
                Ok(())
            }
        }
        let flushes = Rc::new(RefCell::new(0));
        {
            let mut w = JsonlWriter::new(FlushCounter(Rc::clone(&flushes)));
            w.on_event(&TraceEvent::PowerRecursion { depth: 1 });
        }
        assert_eq!(*flushes.borrow(), 1, "drop must flush");

        // finish() flushes once itself; drop must not double-flush.
        let w = JsonlWriter::new(FlushCounter(Rc::clone(&flushes)));
        assert_eq!(w.finish().unwrap(), 0);
        assert_eq!(*flushes.borrow(), 2);
    }

    #[test]
    fn parse_jsonl_reports_line_numbers() {
        let text = "{\"event\":\"PowerRecursion\",\"depth\":1}\n\nnot json\n";
        let err = parse_jsonl(text).unwrap_err();
        assert!(err.starts_with("line 3:"), "got: {err}");
    }

    #[test]
    fn parse_jsonl_passes_unknown_lines_through() {
        let text =
            "{\"event\":\"PowerRecursion\",\"depth\":1}\n{\"event\":\"FutureEvent\",\"frobs\":3}\n";
        let events = parse_jsonl(text).unwrap();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            &events[1],
            TraceEvent::Unknown { name, .. } if name == "FutureEvent"
        ));
    }
}
