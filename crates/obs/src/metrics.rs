//! Metrics registry: counters and log-bucketed histograms over the
//! event stream, exportable as Prometheus text exposition and
//! Chrome-trace JSON.
//!
//! [`MetricsRegistry`] is an [`Observer`] meant to be [`crate::Tee`]d
//! next to a trace writer: it folds every event into
//! [`EventCounts`]-backed counters, drives an internal
//! [`StageProfiler`] for wall-clock spans, and feeds a handful of
//! [`Histogram`]s with decision magnitudes (victim delay sizes, gap
//! move distances, backtrack depths, respin attempts, incremental
//! relaxation counts, per-pass move counts).
//!
//! The exposition format is the Prometheus *text exposition format*
//! (`# HELP` / `# TYPE` comments, `metric{label="value"} 1234` sample
//! lines, histograms as cumulative `_bucket{le="..."}` series plus
//! `_sum`/`_count`). The Chrome-trace export delegates to
//! [`StageProfiler::chrome_trace`].

use std::fmt::Write as _;

use crate::event::TraceEvent;
use crate::observer::{EventCounts, Observer};
use crate::profile::StageProfiler;

/// Number of power-of-two buckets in a [`Histogram`]; values of
/// `2^31` or less land in a finite bucket, larger ones in `+Inf`.
const BUCKETS: usize = 32;

/// Fixed log₂-bucketed histogram of `u64` observations.
///
/// Bucket `i` holds observations with value `≤ 2^i` (upper bounds
/// 1, 2, 4, …, 2³¹); anything larger counts toward `+Inf` only. The
/// fixed power-of-two layout keeps recording allocation-free and makes
/// merged output stable across runs.
#[derive(Debug, Clone, Copy)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    overflow: u64,
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            overflow: 0,
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        match (0..BUCKETS).find(|&i| value <= 1u64 << i) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Renders the histogram as Prometheus text exposition lines.
    ///
    /// Buckets are cumulative as the format requires; trailing empty
    /// buckets are elided (the mandatory `+Inf` bucket always carries
    /// the full count).
    pub fn render(&self, out: &mut String, name: &str, help: &str) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        let last = (0..BUCKETS).rev().find(|&i| self.counts[i] > 0);
        let mut cumulative = 0u64;
        if let Some(last) = last {
            for (i, bucket) in self.counts.iter().enumerate().take(last + 1) {
                cumulative += bucket;
                let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", 1u64 << i);
            }
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", self.count);
        let _ = writeln!(out, "{name}_sum {}", self.sum);
        let _ = writeln!(out, "{name}_count {}", self.count);
    }
}

/// Observer that aggregates the event stream into exportable metrics.
///
/// Tee it beside the trace writer:
///
/// ```
/// use pas_obs::{MetricsRegistry, Observer, Tee, TraceEvent};
/// use pas_obs::StageKind;
///
/// let mut metrics = MetricsRegistry::new();
/// let mut tee = Tee(&mut metrics, pas_obs::NullObserver);
/// tee.on_event(&TraceEvent::StageStarted { stage: StageKind::Timing });
/// tee.on_event(&TraceEvent::StageFinished { stage: StageKind::Timing });
/// let text = metrics.render_prometheus();
/// assert!(text.contains("pas_events_total{counter=\"stage_starts\"} 1"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counts: EventCounts,
    profiler: StageProfiler,
    victim_delay_secs: Histogram,
    move_delta_secs: Histogram,
    backtrack_depth: Histogram,
    respin_attempts: Histogram,
    delta_relaxations: Histogram,
    scan_moves: Histogram,
    commit_depth: u64,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The per-variant event tallies folded in so far.
    pub fn counts(&self) -> EventCounts {
        self.counts
    }

    /// The internal stage profiler (wall clocks, spans).
    pub fn profiler(&self) -> &StageProfiler {
        &self.profiler
    }

    /// Renders every metric in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();

        let _ = writeln!(
            out,
            "# HELP pas_events_total Scheduling pipeline events by kind."
        );
        let _ = writeln!(out, "# TYPE pas_events_total counter");
        for (name, value) in self.counts.named() {
            let _ = writeln!(out, "pas_events_total{{counter=\"{name}\"}} {value}");
        }

        let profiles = self.profiler.profiles();
        let _ = writeln!(
            out,
            "# HELP pas_stage_wall_seconds Wall-clock time spent per pipeline stage."
        );
        let _ = writeln!(out, "# TYPE pas_stage_wall_seconds gauge");
        for (stage, profile) in &profiles {
            let _ = writeln!(
                out,
                "pas_stage_wall_seconds{{stage=\"{stage}\"}} {}",
                profile.wall.as_secs_f64()
            );
        }
        let _ = writeln!(
            out,
            "# HELP pas_stage_runs_total Completed runs per pipeline stage."
        );
        let _ = writeln!(out, "# TYPE pas_stage_runs_total counter");
        for (stage, profile) in &profiles {
            let _ = writeln!(
                out,
                "pas_stage_runs_total{{stage=\"{stage}\"}} {}",
                profile.runs
            );
        }

        let mut stage_latency = Histogram::new();
        for span in self.profiler.spans() {
            stage_latency.record(span.wall.as_micros().min(u128::from(u64::MAX)) as u64);
        }
        stage_latency.render(
            &mut out,
            "pas_stage_latency_microseconds",
            "Wall-clock latency of completed stage spans.",
        );
        self.victim_delay_secs.render(
            &mut out,
            "pas_victim_delay_seconds",
            "Max-power victim delay magnitudes.",
        );
        self.move_delta_secs.render(
            &mut out,
            "pas_move_delta_seconds",
            "Accepted min-power gap move distances.",
        );
        self.backtrack_depth.render(
            &mut out,
            "pas_backtrack_depth",
            "Commit-stack depth at each timing backtrack.",
        );
        self.respin_attempts.render(
            &mut out,
            "pas_respin_attempts",
            "Max-power respin attempt numbers.",
        );
        self.delta_relaxations.render(
            &mut out,
            "pas_delta_relaxations",
            "Relaxations performed per incremental longest-path delta.",
        );
        self.scan_moves.render(
            &mut out,
            "pas_scan_moves",
            "Accepted moves per min-power gap-scan pass.",
        );
        out
    }

    /// Renders the stage spans as Chrome-trace JSON (Perfetto-loadable).
    pub fn chrome_trace(&self) -> String {
        self.profiler.chrome_trace()
    }
}

impl Observer for MetricsRegistry {
    fn on_event(&mut self, event: &TraceEvent) {
        self.counts.record(event);
        self.profiler.on_event(event);
        match event {
            TraceEvent::TaskCommitted { .. } => self.commit_depth += 1,
            TraceEvent::TopoBacktrack { .. } => {
                self.backtrack_depth.record(self.commit_depth);
                self.commit_depth = self.commit_depth.saturating_sub(1);
            }
            TraceEvent::VictimDelayed { delta, .. } => {
                self.victim_delay_secs
                    .record(delta.as_secs().unsigned_abs());
            }
            TraceEvent::MoveAccepted { delta, .. } => {
                self.move_delta_secs.record(delta.as_secs().unsigned_abs());
            }
            TraceEvent::RespinStarted { attempt } => {
                self.respin_attempts.record(u64::from(*attempt));
            }
            TraceEvent::IncrementalDelta { relaxations, .. } => {
                self.delta_relaxations.record(*relaxations);
            }
            TraceEvent::GapScanFinished { moves, .. } => {
                self.scan_moves.record(*moves);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StageKind;
    use pas_graph::units::TimeSpan;
    use pas_graph::TaskId;

    #[test]
    fn histogram_buckets_are_log2_and_cumulative() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 5, 1 << 20, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        let mut out = String::new();
        h.render(&mut out, "test_metric", "help text");
        assert!(out.contains("# TYPE test_metric histogram"));
        // le="1" covers 0 and 1; le="2" adds 2; le="4" adds 3; le="8" adds 5.
        assert!(out.contains("test_metric_bucket{le=\"1\"} 2"));
        assert!(out.contains("test_metric_bucket{le=\"2\"} 3"));
        assert!(out.contains("test_metric_bucket{le=\"4\"} 4"));
        assert!(out.contains("test_metric_bucket{le=\"8\"} 5"));
        // u64::MAX exceeds every finite bucket: only +Inf sees it.
        assert!(out.contains("test_metric_bucket{le=\"+Inf\"} 7"));
        assert!(out.contains("test_metric_count 7"));
    }

    #[test]
    fn empty_histogram_still_renders_the_mandatory_series() {
        let mut out = String::new();
        Histogram::new().render(&mut out, "empty_metric", "nothing yet");
        assert!(out.contains("empty_metric_bucket{le=\"+Inf\"} 0"));
        assert!(out.contains("empty_metric_sum 0"));
        assert!(out.contains("empty_metric_count 0"));
    }

    #[test]
    fn registry_folds_counters_histograms_and_spans() {
        let mut reg = MetricsRegistry::new();
        reg.on_event(&TraceEvent::StageStarted {
            stage: StageKind::Timing,
        });
        for i in 0..3 {
            reg.on_event(&TraceEvent::TaskCommitted {
                task: TaskId::from_index(i),
            });
        }
        reg.on_event(&TraceEvent::TopoBacktrack {
            task: TaskId::from_index(2),
        });
        reg.on_event(&TraceEvent::StageFinished {
            stage: StageKind::Timing,
        });
        reg.on_event(&TraceEvent::VictimDelayed {
            task: TaskId::from_index(1),
            slack: TimeSpan::from_secs(5),
            delta: TimeSpan::from_secs(3),
        });

        assert_eq!(reg.counts().tasks_committed, 3);
        assert_eq!(reg.backtrack_depth.count(), 1);
        // Depth was 3 when the backtrack arrived.
        assert_eq!(reg.backtrack_depth.sum(), 3);
        assert_eq!(reg.victim_delay_secs.sum(), 3);

        let text = reg.render_prometheus();
        assert!(text.contains("pas_events_total{counter=\"tasks_committed\"} 3"));
        assert!(text.contains("pas_stage_runs_total{stage=\"timing\"} 1"));
        assert!(text.contains("pas_stage_latency_microseconds_count 1"));
        assert!(text.contains("pas_victim_delay_seconds_sum 3"));

        let chrome = reg.chrome_trace();
        assert!(chrome.contains("\"name\":\"timing\""));
    }
}
