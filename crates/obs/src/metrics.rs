//! Metrics registry: counters and log-bucketed histograms over the
//! event stream, exportable as Prometheus text exposition and
//! Chrome-trace JSON.
//!
//! [`MetricsRegistry`] is an [`Observer`] meant to be [`crate::Tee`]d
//! next to a trace writer: it folds every event into
//! [`EventCounts`]-backed counters, drives an internal
//! [`StageProfiler`] for wall-clock spans, and feeds a handful of
//! [`Histogram`]s with decision magnitudes (victim delay sizes, gap
//! move distances, backtrack depths, respin attempts, incremental
//! relaxation counts, per-pass move counts).
//!
//! The exposition format is the Prometheus *text exposition format*
//! (`# HELP` / `# TYPE` comments, `metric{label="value"} 1234` sample
//! lines, histograms as cumulative `_bucket{le="..."}` series plus
//! `_sum`/`_count`). The Chrome-trace export delegates to
//! [`StageProfiler::chrome_trace`].

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::TraceEvent;
use crate::observer::{EventCounts, Observer};
use crate::profile::StageProfiler;

/// Escapes a Prometheus label value per the text exposition format:
/// backslash, double quote and newline become `\\`, `\"` and `\n`.
///
/// Values without those characters are returned unchanged (borrowed).
pub fn escape_label_value(value: &str) -> std::borrow::Cow<'_, str> {
    if !value.contains(['\\', '"', '\n']) {
        return std::borrow::Cow::Borrowed(value);
    }
    let mut escaped = String::with_capacity(value.len() + 4);
    for c in value.chars() {
        match c {
            '\\' => escaped.push_str("\\\\"),
            '"' => escaped.push_str("\\\""),
            '\n' => escaped.push_str("\\n"),
            _ => escaped.push(c),
        }
    }
    std::borrow::Cow::Owned(escaped)
}

/// Folds the [`TraceEvent::SearchSample`] events of a recorded stream
/// into collapsed-stack lines (`flamegraph.pl` / inferno input).
///
/// Each sample contributes one stack `worker-N;d0;d1;…;d<depth>` —
/// the node-expansion tree sampled by depth — and identical stacks
/// are merged with their sample counts. Lines are sorted, so the
/// output is deterministic.
pub fn collapsed_stacks<'a, I: IntoIterator<Item = &'a TraceEvent>>(events: I) -> String {
    let mut folded: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    for event in events {
        if let TraceEvent::SearchSample { worker, depth, .. } = event {
            *folded.entry((*worker, *depth)).or_insert(0) += 1;
        }
    }
    render_collapsed(&folded)
}

fn render_collapsed(folded: &BTreeMap<(u32, u32), u64>) -> String {
    let mut out = String::new();
    for (&(worker, depth), &count) in folded {
        let _ = write!(out, "worker-{worker}");
        for level in 0..=depth {
            let _ = write!(out, ";d{level}");
        }
        let _ = writeln!(out, " {count}");
    }
    out
}

/// Number of power-of-two buckets in a [`Histogram`]; values of
/// `2^31` or less land in a finite bucket, larger ones in `+Inf`.
const BUCKETS: usize = 32;

/// Prune-reason label values, index-aligned with
/// `MetricsRegistry::search_prunes` and with the wire fields of
/// [`TraceEvent::SearchStatsRecorded`].
const PRUNE_REASONS: [&str; 5] = ["incumbent", "dominance", "horizon", "budget", "bound"];

/// Fixed log₂-bucketed histogram of `u64` observations.
///
/// Bucket `i` holds observations with value `≤ 2^i` (upper bounds
/// 1, 2, 4, …, 2³¹); anything larger counts toward `+Inf` only. The
/// fixed power-of-two layout keeps recording allocation-free and makes
/// merged output stable across runs.
#[derive(Debug, Clone, Copy)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    overflow: u64,
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            overflow: 0,
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        match (0..BUCKETS).find(|&i| value <= 1u64 << i) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Folds another histogram's observations into this one.
    ///
    /// Bucket layouts are identical by construction, so the merge is
    /// a plain element-wise sum; [`WindowedHistogram`] uses this to
    /// collapse its per-second slots into one queryable snapshot.
    pub fn merge_from(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Estimates the `q`-quantile (`0.0 ≤ q ≤ 1.0`) of the recorded
    /// observations, Prometheus `histogram_quantile` style: the rank
    /// is located in the cumulative bucket counts and linearly
    /// interpolated between the bucket's lower and upper bounds.
    ///
    /// Returns `None` on an empty histogram. A rank that lands in the
    /// `+Inf` overflow bucket reports the largest finite bucket bound
    /// (`2^31`), matching Prometheus' convention of clamping to the
    /// highest finite `le`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &bucket) in self.counts.iter().enumerate() {
            if bucket == 0 {
                continue;
            }
            let start = cumulative as f64;
            cumulative += bucket;
            if cumulative as f64 >= target {
                let lower = if i == 0 { 0u64 } else { 1u64 << (i - 1) } as f64;
                let upper = (1u64 << i) as f64;
                let fraction = ((target - start) / bucket as f64).clamp(0.0, 1.0);
                return Some(lower + fraction * (upper - lower));
            }
        }
        // Rank fell in the overflow bucket: clamp to the largest
        // finite bound.
        Some((1u64 << (BUCKETS - 1)) as f64)
    }

    /// Renders the histogram as Prometheus text exposition lines.
    ///
    /// Buckets are cumulative as the format requires; trailing empty
    /// buckets are elided (the mandatory `+Inf` bucket always carries
    /// the full count).
    pub fn render(&self, out: &mut String, name: &str, help: &str) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        let last = (0..BUCKETS).rev().find(|&i| self.counts[i] > 0);
        let mut cumulative = 0u64;
        if let Some(last) = last {
            for (i, bucket) in self.counts.iter().enumerate().take(last + 1) {
                cumulative += bucket;
                let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", 1u64 << i);
            }
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", self.count);
        let _ = writeln!(out, "{name}_sum {}", self.sum);
        let _ = writeln!(out, "{name}_count {}", self.count);
    }
}

/// Lock-free monotone maximum tracker ("high-water mark").
///
/// Many threads race to `observe` instantaneous levels (queue depth,
/// in-flight requests); `get` reports the largest level ever seen.
/// The compare-exchange loop only retries while the stored value is
/// stale *and smaller*, so contention is bounded by genuine record
/// updates — steady-state observations are a single load.
#[derive(Debug, Default)]
pub struct HighWater(std::sync::atomic::AtomicU64);

impl HighWater {
    /// A tracker that has seen nothing (high water = 0).
    pub fn new() -> HighWater {
        HighWater::default()
    }

    /// Folds one instantaneous level into the maximum.
    pub fn observe(&self, level: u64) {
        use std::sync::atomic::Ordering;
        let mut seen = self.0.load(Ordering::Relaxed);
        while level > seen {
            match self
                .0
                .compare_exchange_weak(seen, level, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(now) => seen = now,
            }
        }
    }

    /// The largest level observed so far.
    pub fn get(&self) -> u64 {
        self.0.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Sliding-window counter with a per-second rate.
///
/// The window is a ring of per-second slots; increments carry an
/// explicit timestamp (seconds since an arbitrary epoch) so tests can
/// drive time deterministically and a server can pass wall-clock
/// seconds. Slots older than the window are lazily zeroed on both
/// write and read, so a quiet period decays the rate to zero without
/// a background thread.
#[derive(Debug, Clone)]
pub struct RollingCounter {
    window_secs: u64,
    slots: Vec<u64>,
    slot_times: Vec<u64>,
    total: u64,
}

impl RollingCounter {
    /// Creates a counter whose rate window spans `window_secs`
    /// seconds (clamped to at least 1).
    pub fn new(window_secs: u64) -> Self {
        let window_secs = window_secs.max(1);
        RollingCounter {
            window_secs,
            slots: vec![0; window_secs as usize],
            slot_times: vec![u64::MAX; window_secs as usize],
            total: 0,
        }
    }

    /// Width of the rate window in seconds.
    pub fn window_secs(&self) -> u64 {
        self.window_secs
    }

    /// Adds `n` to the counter at time `now_s` (seconds).
    pub fn incr_at(&mut self, now_s: u64, n: u64) {
        let idx = (now_s % self.window_secs) as usize;
        if self.slot_times[idx] != now_s {
            self.slots[idx] = 0;
            self.slot_times[idx] = now_s;
        }
        self.slots[idx] += n;
        self.total += n;
    }

    /// Lifetime total, never decayed — suitable for a Prometheus
    /// `counter` sample.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of increments recorded within the window ending at
    /// `now_s` (inclusive).
    pub fn windowed(&self, now_s: u64) -> u64 {
        self.slots
            .iter()
            .zip(&self.slot_times)
            .filter(|&(_, &t)| t <= now_s && now_s - t < self.window_secs)
            .map(|(&v, _)| v)
            .sum()
    }

    /// Windowed count divided by the window width: a per-second rate.
    pub fn rate(&self, now_s: u64) -> f64 {
        self.windowed(now_s) as f64 / self.window_secs as f64
    }
}

/// Sliding-window log₂ latency histogram.
///
/// A ring of per-second [`Histogram`] slots; [`snapshot`] merges the
/// live slots into one [`Histogram`] so windowed quantiles come from
/// [`Histogram::quantile`]. Like [`RollingCounter`], time is an
/// explicit argument for deterministic tests.
///
/// [`snapshot`]: WindowedHistogram::snapshot
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    window_secs: u64,
    slots: Vec<Histogram>,
    slot_times: Vec<u64>,
    lifetime: Histogram,
}

impl WindowedHistogram {
    /// Creates a windowed histogram spanning `window_secs` seconds
    /// (clamped to at least 1).
    pub fn new(window_secs: u64) -> Self {
        let window_secs = window_secs.max(1);
        WindowedHistogram {
            window_secs,
            slots: vec![Histogram::new(); window_secs as usize],
            slot_times: vec![u64::MAX; window_secs as usize],
            lifetime: Histogram::new(),
        }
    }

    /// Width of the window in seconds.
    pub fn window_secs(&self) -> u64 {
        self.window_secs
    }

    /// Records one observation at time `now_s`.
    pub fn record_at(&mut self, now_s: u64, value: u64) {
        let idx = (now_s % self.window_secs) as usize;
        if self.slot_times[idx] != now_s {
            self.slots[idx] = Histogram::new();
            self.slot_times[idx] = now_s;
        }
        self.slots[idx].record(value);
        self.lifetime.record(value);
    }

    /// The never-decayed lifetime histogram — what `/metrics` should
    /// expose (Prometheus histograms are cumulative by contract).
    pub fn lifetime(&self) -> &Histogram {
        &self.lifetime
    }

    /// Merges the slots within the window ending at `now_s` into one
    /// histogram; quantiles of the snapshot are windowed quantiles.
    pub fn snapshot(&self, now_s: u64) -> Histogram {
        let mut merged = Histogram::new();
        for (slot, &t) in self.slots.iter().zip(&self.slot_times) {
            if t <= now_s && now_s - t < self.window_secs {
                merged.merge_from(slot);
            }
        }
        merged
    }
}

/// Observer that aggregates the event stream into exportable metrics.
///
/// Tee it beside the trace writer:
///
/// ```
/// use pas_obs::{MetricsRegistry, Observer, Tee, TraceEvent};
/// use pas_obs::StageKind;
///
/// let mut metrics = MetricsRegistry::new();
/// let mut tee = Tee(&mut metrics, pas_obs::NullObserver);
/// tee.on_event(&TraceEvent::StageStarted { stage: StageKind::Timing });
/// tee.on_event(&TraceEvent::StageFinished { stage: StageKind::Timing });
/// let text = metrics.render_prometheus();
/// assert!(text.contains("pas_events_total{counter=\"stage_starts\"} 1"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counts: EventCounts,
    profiler: StageProfiler,
    victim_delay_secs: Histogram,
    move_delta_secs: Histogram,
    backtrack_depth: Histogram,
    respin_attempts: Histogram,
    delta_relaxations: Histogram,
    scan_moves: Histogram,
    commit_depth: u64,
    search_sample_depth: Histogram,
    search_nodes: Histogram,
    search_prunes: [u64; 5],
    search_budget_total: u64,
    search_nodes_total: u64,
    search_stacks: BTreeMap<(u32, u32), u64>,
    source: Option<String>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The per-variant event tallies folded in so far.
    pub fn counts(&self) -> EventCounts {
        self.counts
    }

    /// The internal stage profiler (wall clocks, spans).
    pub fn profiler(&self) -> &StageProfiler {
        &self.profiler
    }

    /// Names the model the metrics describe; rendered as a
    /// `pas_source_info{model="..."}` gauge. The name is free-form
    /// (it may come from a PASDL task or file name) and is escaped on
    /// render.
    pub fn set_source(&mut self, name: &str) {
        self.source = Some(name.to_string());
    }

    /// Renders the sampled node-expansion tree as collapsed-stack
    /// lines (`flamegraph.pl` / inferno input). Empty when no
    /// [`TraceEvent::SearchSample`] events were folded in.
    pub fn render_collapsed(&self) -> String {
        render_collapsed(&self.search_stacks)
    }

    /// Renders every metric in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();

        let _ = writeln!(
            out,
            "# HELP pas_events_total Scheduling pipeline events by kind."
        );
        let _ = writeln!(out, "# TYPE pas_events_total counter");
        for (name, value) in self.counts.named() {
            let name = escape_label_value(name);
            let _ = writeln!(out, "pas_events_total{{counter=\"{name}\"}} {value}");
        }

        let profiles = self.profiler.profiles();
        let _ = writeln!(
            out,
            "# HELP pas_stage_wall_seconds Wall-clock time spent per pipeline stage."
        );
        let _ = writeln!(out, "# TYPE pas_stage_wall_seconds gauge");
        for (stage, profile) in &profiles {
            let _ = writeln!(
                out,
                "pas_stage_wall_seconds{{stage=\"{stage}\"}} {}",
                profile.wall.as_secs_f64()
            );
        }
        let _ = writeln!(
            out,
            "# HELP pas_stage_runs_total Completed runs per pipeline stage."
        );
        let _ = writeln!(out, "# TYPE pas_stage_runs_total counter");
        for (stage, profile) in &profiles {
            let _ = writeln!(
                out,
                "pas_stage_runs_total{{stage=\"{stage}\"}} {}",
                profile.runs
            );
        }

        let mut stage_latency = Histogram::new();
        for span in self.profiler.spans() {
            stage_latency.record(span.wall.as_micros().min(u128::from(u64::MAX)) as u64);
        }
        stage_latency.render(
            &mut out,
            "pas_stage_latency_microseconds",
            "Wall-clock latency of completed stage spans.",
        );
        self.victim_delay_secs.render(
            &mut out,
            "pas_victim_delay_seconds",
            "Max-power victim delay magnitudes.",
        );
        self.move_delta_secs.render(
            &mut out,
            "pas_move_delta_seconds",
            "Accepted min-power gap move distances.",
        );
        self.backtrack_depth.render(
            &mut out,
            "pas_backtrack_depth",
            "Commit-stack depth at each timing backtrack.",
        );
        self.respin_attempts.render(
            &mut out,
            "pas_respin_attempts",
            "Max-power respin attempt numbers.",
        );
        self.delta_relaxations.render(
            &mut out,
            "pas_delta_relaxations",
            "Relaxations performed per incremental longest-path delta.",
        );
        self.scan_moves.render(
            &mut out,
            "pas_scan_moves",
            "Accepted moves per min-power gap-scan pass.",
        );
        self.search_sample_depth.render(
            &mut out,
            "pas_search_sample_depth",
            "Search depth at each deterministic telemetry sample.",
        );
        self.search_nodes.render(
            &mut out,
            "pas_search_nodes",
            "Nodes expanded per search worker (end-of-search summaries).",
        );

        let _ = writeln!(
            out,
            "# HELP pas_search_prunes_total Search subtrees cut, by prune reason."
        );
        let _ = writeln!(out, "# TYPE pas_search_prunes_total counter");
        for (reason, value) in PRUNE_REASONS.iter().zip(self.search_prunes) {
            let reason = escape_label_value(reason);
            let _ = writeln!(
                out,
                "pas_search_prunes_total{{reason=\"{reason}\"}} {value}"
            );
        }
        let _ = writeln!(
            out,
            "# HELP pas_search_budget_utilization Nodes expanded over nodes budgeted, all workers."
        );
        let _ = writeln!(out, "# TYPE pas_search_budget_utilization gauge");
        let utilization = if self.search_budget_total == 0 {
            0.0
        } else {
            self.search_nodes_total as f64 / self.search_budget_total as f64
        };
        let _ = writeln!(out, "pas_search_budget_utilization {utilization}");

        if let Some(source) = &self.source {
            let _ = writeln!(
                out,
                "# HELP pas_source_info The model these metrics describe."
            );
            let _ = writeln!(out, "# TYPE pas_source_info gauge");
            let model = escape_label_value(source);
            let _ = writeln!(out, "pas_source_info{{model=\"{model}\"}} 1");
        }
        out
    }

    /// Renders the stage spans as Chrome-trace JSON (Perfetto-loadable).
    pub fn chrome_trace(&self) -> String {
        self.profiler.chrome_trace()
    }
}

impl Observer for MetricsRegistry {
    fn on_event(&mut self, event: &TraceEvent) {
        self.counts.record(event);
        self.profiler.on_event(event);
        match event {
            TraceEvent::TaskCommitted { .. } => self.commit_depth += 1,
            TraceEvent::TopoBacktrack { .. } => {
                self.backtrack_depth.record(self.commit_depth);
                self.commit_depth = self.commit_depth.saturating_sub(1);
            }
            TraceEvent::VictimDelayed { delta, .. } => {
                self.victim_delay_secs
                    .record(delta.as_secs().unsigned_abs());
            }
            TraceEvent::MoveAccepted { delta, .. } => {
                self.move_delta_secs.record(delta.as_secs().unsigned_abs());
            }
            TraceEvent::RespinStarted { attempt } => {
                self.respin_attempts.record(u64::from(*attempt));
            }
            TraceEvent::IncrementalDelta { relaxations, .. } => {
                self.delta_relaxations.record(*relaxations);
            }
            TraceEvent::GapScanFinished { moves, .. } => {
                self.scan_moves.record(*moves);
            }
            TraceEvent::SearchSample { worker, depth, .. } => {
                self.search_sample_depth.record(u64::from(*depth));
                *self.search_stacks.entry((*worker, *depth)).or_insert(0) += 1;
            }
            TraceEvent::SearchStatsRecorded {
                nodes,
                pruned_incumbent,
                pruned_dominance,
                pruned_horizon,
                pruned_budget,
                pruned_bound,
                budget,
                ..
            } => {
                self.search_nodes.record(*nodes);
                self.search_prunes[0] += pruned_incumbent;
                self.search_prunes[1] += pruned_dominance;
                self.search_prunes[2] += pruned_horizon;
                self.search_prunes[3] += pruned_budget;
                self.search_prunes[4] += pruned_bound;
                self.search_nodes_total += nodes;
                self.search_budget_total += budget;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StageKind;
    use pas_graph::units::TimeSpan;
    use pas_graph::TaskId;

    #[test]
    fn histogram_buckets_are_log2_and_cumulative() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 5, 1 << 20, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        let mut out = String::new();
        h.render(&mut out, "test_metric", "help text");
        assert!(out.contains("# TYPE test_metric histogram"));
        // le="1" covers 0 and 1; le="2" adds 2; le="4" adds 3; le="8" adds 5.
        assert!(out.contains("test_metric_bucket{le=\"1\"} 2"));
        assert!(out.contains("test_metric_bucket{le=\"2\"} 3"));
        assert!(out.contains("test_metric_bucket{le=\"4\"} 4"));
        assert!(out.contains("test_metric_bucket{le=\"8\"} 5"));
        // u64::MAX exceeds every finite bucket: only +Inf sees it.
        assert!(out.contains("test_metric_bucket{le=\"+Inf\"} 7"));
        assert!(out.contains("test_metric_count 7"));
    }

    #[test]
    fn empty_histogram_still_renders_the_mandatory_series() {
        let mut out = String::new();
        Histogram::new().render(&mut out, "empty_metric", "nothing yet");
        assert!(out.contains("empty_metric_bucket{le=\"+Inf\"} 0"));
        assert!(out.contains("empty_metric_sum 0"));
        assert!(out.contains("empty_metric_count 0"));
    }

    #[test]
    fn registry_folds_counters_histograms_and_spans() {
        let mut reg = MetricsRegistry::new();
        reg.on_event(&TraceEvent::StageStarted {
            stage: StageKind::Timing,
        });
        for i in 0..3 {
            reg.on_event(&TraceEvent::TaskCommitted {
                task: TaskId::from_index(i),
            });
        }
        reg.on_event(&TraceEvent::TopoBacktrack {
            task: TaskId::from_index(2),
        });
        reg.on_event(&TraceEvent::StageFinished {
            stage: StageKind::Timing,
        });
        reg.on_event(&TraceEvent::VictimDelayed {
            task: TaskId::from_index(1),
            slack: TimeSpan::from_secs(5),
            delta: TimeSpan::from_secs(3),
        });

        assert_eq!(reg.counts().tasks_committed, 3);
        assert_eq!(reg.backtrack_depth.count(), 1);
        // Depth was 3 when the backtrack arrived.
        assert_eq!(reg.backtrack_depth.sum(), 3);
        assert_eq!(reg.victim_delay_secs.sum(), 3);

        let text = reg.render_prometheus();
        assert!(text.contains("pas_events_total{counter=\"tasks_committed\"} 3"));
        assert!(text.contains("pas_stage_runs_total{stage=\"timing\"} 1"));
        assert!(text.contains("pas_stage_latency_microseconds_count 1"));
        assert!(text.contains("pas_victim_delay_seconds_sum 3"));

        let chrome = reg.chrome_trace();
        assert!(chrome.contains("\"name\":\"timing\""));
    }

    #[test]
    fn histogram_edge_values_land_in_the_documented_buckets() {
        // Value 0 shares the le="1" bucket with value 1.
        let mut h = Histogram::new();
        h.record(0);
        let mut out = String::new();
        h.render(&mut out, "m", "h");
        assert!(out.contains("m_bucket{le=\"1\"} 1"));
        assert!(out.contains("m_bucket{le=\"+Inf\"} 1"));
        assert!(out.contains("m_sum 0"));

        // u64::MAX overflows every finite bucket and saturates the sum.
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        let mut out = String::new();
        h.render(&mut out, "m", "h");
        assert!(
            !out.contains("m_bucket{le=\"1\""),
            "no finite buckets:\n{out}"
        );
        assert!(out.contains("m_bucket{le=\"+Inf\"} 2"));
        assert!(out.contains(&format!("m_sum {}", u64::MAX)));

        // Exact powers of two sit in the bucket whose bound they equal
        // (le is inclusive); one past the bound spills into the next.
        for i in 0..31u32 {
            let bound = 1u64 << i;
            let mut h = Histogram::new();
            h.record(bound);
            h.record(bound + 1);
            let mut out = String::new();
            h.render(&mut out, "m", "h");
            assert!(
                out.contains(&format!("m_bucket{{le=\"{bound}\"}} 1")),
                "2^{i} must fill its own bucket:\n{out}"
            );
            assert!(
                out.contains(&format!("m_bucket{{le=\"{}\"}} 2", bound * 2)),
                "2^{i}+1 must land one bucket up:\n{out}"
            );
        }

        // The largest finite bound is 2^31; one past it is +Inf-only.
        let mut h = Histogram::new();
        h.record(1u64 << 31);
        h.record((1u64 << 31) + 1);
        let mut out = String::new();
        h.render(&mut out, "m", "h");
        assert!(out.contains(&format!("m_bucket{{le=\"{}\"}} 1", 1u64 << 31)));
        assert!(out.contains("m_bucket{le=\"+Inf\"} 2"));
    }

    #[test]
    fn label_values_are_escaped_per_exposition_format() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("a\nb"), r"a\nb");
        assert_eq!(escape_label_value("\\\"\n"), "\\\\\\\"\\n");

        let mut reg = MetricsRegistry::new();
        reg.set_source("task \"a\"b\\c\nd");
        let text = reg.render_prometheus();
        assert!(
            text.contains(r#"pas_source_info{model="task \"a\"b\\c\nd"} 1"#),
            "hostile model name must render escaped:\n{text}"
        );
        // The rendered text must stay line-oriented: no raw newline
        // inside a sample line.
        for line in text.lines() {
            assert!(!line.is_empty() || text.ends_with('\n'));
        }
    }

    #[test]
    fn registry_folds_search_telemetry() {
        let mut reg = MetricsRegistry::new();
        reg.on_event(&TraceEvent::SearchSample {
            worker: 1,
            nodes: 1024,
            depth: 2,
            best: -1,
        });
        reg.on_event(&TraceEvent::SearchSample {
            worker: 1,
            nodes: 2048,
            depth: 2,
            best: 45,
        });
        reg.on_event(&TraceEvent::SearchStatsRecorded {
            worker: 1,
            nodes: 2500,
            pruned_incumbent: 10,
            pruned_dominance: 20,
            pruned_horizon: 3,
            pruned_budget: 1,
            pruned_bound: 7,
            max_depth: 4,
            budget: 5000,
        });

        let text = reg.render_prometheus();
        assert!(text.contains("pas_search_prunes_total{reason=\"incumbent\"} 10"));
        assert!(text.contains("pas_search_prunes_total{reason=\"dominance\"} 20"));
        assert!(text.contains("pas_search_prunes_total{reason=\"horizon\"} 3"));
        assert!(text.contains("pas_search_prunes_total{reason=\"budget\"} 1"));
        assert!(text.contains("pas_search_prunes_total{reason=\"bound\"} 7"));
        assert!(text.contains("pas_search_budget_utilization 0.5"));
        assert!(text.contains("pas_search_sample_depth_count 2"));

        let collapsed = reg.render_collapsed();
        assert_eq!(collapsed, "worker-1;d0;d1;d2 2\n");
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(1.0), None);
    }

    #[test]
    fn quantile_interpolates_within_a_single_bucket() {
        // All observations land in the le="8" bucket (lower bound 4).
        let mut h = Histogram::new();
        for _ in 0..4 {
            h.record(6);
        }
        // Every quantile interpolates linearly across [4, 8].
        assert_eq!(h.quantile(0.0), Some(4.0));
        assert_eq!(h.quantile(0.5), Some(6.0));
        assert_eq!(h.quantile(1.0), Some(8.0));
        // Out-of-range q clamps instead of panicking.
        assert_eq!(h.quantile(-1.0), Some(4.0));
        assert_eq!(h.quantile(2.0), Some(8.0));
    }

    #[test]
    fn quantile_crosses_buckets_with_interpolation() {
        // Two observations in le="2" (bounds [1,2]), two in le="8"
        // (bounds [4,8]).
        let mut h = Histogram::new();
        h.record(2);
        h.record(2);
        h.record(5);
        h.record(7);
        // Rank 2 of 4 sits exactly at the top of the first bucket.
        assert_eq!(h.quantile(0.5), Some(2.0));
        // Rank 3 of 4 is halfway through the second bucket: 4 + 0.5*(8-4).
        assert_eq!(h.quantile(0.75), Some(6.0));
        assert_eq!(h.quantile(1.0), Some(8.0));
        // Rank 1 of 4 is halfway through the first bucket: 1 + 0.5*(2-1).
        assert_eq!(h.quantile(0.25), Some(1.5));
    }

    #[test]
    fn quantile_in_overflow_clamps_to_largest_finite_bound() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.quantile(1.0), Some((1u64 << 31) as f64));
        // The low rank still resolves in the finite buckets.
        assert_eq!(h.quantile(0.25), Some(0.5));
    }

    #[test]
    fn merge_from_sums_counts_and_saturates() {
        let mut a = Histogram::new();
        a.record(3);
        a.record(u64::MAX);
        let mut b = Histogram::new();
        b.record(3);
        b.record(u64::MAX);
        a.merge_from(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), u64::MAX);
        let mut out = String::new();
        a.render(&mut out, "m", "h");
        assert!(out.contains("m_bucket{le=\"4\"} 2"));
        assert!(out.contains("m_bucket{le=\"+Inf\"} 4"));
    }

    #[test]
    fn rolling_counter_decays_outside_the_window() {
        let mut c = RollingCounter::new(10);
        c.incr_at(100, 5);
        c.incr_at(104, 5);
        assert_eq!(c.total(), 10);
        assert_eq!(c.windowed(104), 10);
        assert_eq!(c.rate(104), 1.0);
        // Nine seconds later the first burst has left the window.
        assert_eq!(c.windowed(110), 5);
        // Far in the future everything has decayed, but the lifetime
        // total is untouched.
        assert_eq!(c.windowed(1000), 0);
        assert_eq!(c.rate(1000), 0.0);
        assert_eq!(c.total(), 10);
    }

    #[test]
    fn rolling_counter_reuses_slots_across_wraparound() {
        let mut c = RollingCounter::new(4);
        c.incr_at(0, 1);
        // Same ring slot, one full window later: the old value must
        // not leak into the new second.
        c.incr_at(4, 1);
        assert_eq!(c.windowed(4), 1);
        assert_eq!(c.total(), 2);
    }

    #[test]
    fn windowed_histogram_snapshot_tracks_the_window() {
        let mut w = WindowedHistogram::new(10);
        w.record_at(100, 2);
        w.record_at(105, 100);
        let snap = w.snapshot(105);
        assert_eq!(snap.count(), 2);
        // Only the recent observation remains once the window slides.
        let snap = w.snapshot(112);
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.quantile(1.0), Some(128.0));
        // The lifetime histogram never decays.
        assert_eq!(w.lifetime().count(), 2);
        assert_eq!(w.lifetime().sum(), 102);
    }

    #[test]
    fn high_water_tracks_the_maximum_across_threads() {
        let hw = HighWater::new();
        assert_eq!(hw.get(), 0);
        hw.observe(3);
        hw.observe(1);
        assert_eq!(hw.get(), 3);
        let hw = std::sync::Arc::new(hw);
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let hw = std::sync::Arc::clone(&hw);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        hw.observe(t * 1000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(hw.get(), 3999);
    }

    #[test]
    fn collapsed_stacks_merge_and_sort_deterministically() {
        let events = vec![
            TraceEvent::SearchSample {
                worker: 2,
                nodes: 10,
                depth: 1,
                best: -1,
            },
            TraceEvent::SearchSample {
                worker: 0,
                nodes: 20,
                depth: 0,
                best: -1,
            },
            TraceEvent::SearchSample {
                worker: 2,
                nodes: 30,
                depth: 1,
                best: 9,
            },
        ];
        let folded = collapsed_stacks(&events);
        assert_eq!(folded, "worker-0;d0 1\nworker-2;d0;d1 2\n");
    }
}
