//! `MetricsRegistry` under concurrent observers: the server fans
//! requests across worker threads that all fold events into shared
//! registries, so increments must never be lost and the rendered
//! exposition must stay parseable mid-flight.

use std::thread;

use pas_graph::units::TimeSpan;
use pas_graph::TaskId;
use pas_obs::expo::validate_prometheus;
use pas_obs::{MetricsRegistry, Observer, SharedObserver, Tee, TraceEvent};

const THREADS: usize = 8;
const EVENTS_PER_THREAD: u64 = 2_000;

/// Every thread emits the same deterministic mix so the expected
/// totals are exact multiples.
fn thread_events(thread: usize) -> Vec<TraceEvent> {
    let mut events = Vec::new();
    for i in 0..EVENTS_PER_THREAD {
        events.push(TraceEvent::TaskCommitted {
            task: TaskId::from_index((thread as u64 * EVENTS_PER_THREAD + i) as usize),
        });
        events.push(TraceEvent::VictimDelayed {
            task: TaskId::from_index(thread),
            slack: TimeSpan::from_secs(9),
            delta: TimeSpan::from_secs((i % 7) as i64),
        });
    }
    events
}

#[test]
fn teed_shared_registries_lose_no_increments_across_8_threads() {
    let metrics_a = SharedObserver::new(MetricsRegistry::new());
    let metrics_b = SharedObserver::new(MetricsRegistry::new());

    thread::scope(|scope| {
        for t in 0..THREADS {
            let mut tee = Tee(metrics_a.clone(), metrics_b.clone());
            scope.spawn(move || {
                for event in thread_events(t) {
                    if tee.is_enabled() {
                        tee.on_event(&event);
                    }
                }
            });
        }
    });

    let expected_commits = THREADS as u64 * EVENTS_PER_THREAD;
    // Per thread the victim deltas cycle 0..7, so the per-thread sum
    // is sum(0..=6) * (N/7) + partial; compute it exactly.
    let per_thread_delta_sum: u64 = (0..EVENTS_PER_THREAD).map(|i| i % 7).sum();
    let expected_delta_sum = THREADS as u64 * per_thread_delta_sum;

    for (name, shared) in [("a", &metrics_a), ("b", &metrics_b)] {
        shared.with(|reg| {
            let counts = reg.counts();
            assert_eq!(
                counts.tasks_committed, expected_commits,
                "registry {name}: lost TaskCommitted increments"
            );
            assert_eq!(
                counts.victim_delays, expected_commits,
                "registry {name}: lost VictimDelayed increments"
            );
            assert_eq!(
                counts.total,
                2 * expected_commits,
                "registry {name}: lost events"
            );

            let text = reg.render_prometheus();
            validate_prometheus(&text)
                .unwrap_or_else(|e| panic!("registry {name}: invalid exposition: {e}\n{text}"));
            // The histogram observed every VictimDelayed magnitude.
            assert!(
                text.contains(&format!(
                    "pas_victim_delay_seconds_count {expected_commits}"
                )),
                "registry {name}: histogram count drifted:\n{text}"
            );
            assert!(
                text.contains(&format!(
                    "pas_victim_delay_seconds_sum {expected_delta_sum}"
                )),
                "registry {name}: histogram sum drifted:\n{text}"
            );
        });
    }

    // Both tee legs saw identical streams: renderings agree exactly.
    let a = metrics_a.with(|reg| reg.render_prometheus());
    let b = metrics_b.with(|reg| reg.render_prometheus());
    assert_eq!(a, b, "teed registries must agree byte-for-byte");
}

#[test]
fn rendering_stays_parseable_while_writers_race() {
    // One reader renders while 8 writers hammer the same registry;
    // every snapshot must be a valid exposition document (counts may
    // be mid-flight, structure may not).
    let metrics = SharedObserver::new(MetricsRegistry::new());
    thread::scope(|scope| {
        for t in 0..THREADS {
            let mut shared = metrics.clone();
            scope.spawn(move || {
                for event in thread_events(t) {
                    shared.on_event(&event);
                }
            });
        }
        let reader = metrics.clone();
        scope.spawn(move || {
            for _ in 0..50 {
                let text = reader.with(|reg| reg.render_prometheus());
                validate_prometheus(&text)
                    .unwrap_or_else(|e| panic!("mid-flight exposition invalid: {e}\n{text}"));
            }
        });
    });
    metrics.with(|reg| {
        assert_eq!(
            reg.counts().total,
            2 * THREADS as u64 * EVENTS_PER_THREAD,
            "writers raced the reader into losing events"
        );
    });
}
