//! Structural validation of the exported metric formats.
//!
//! The Prometheus check drives the hand-written exposition-format
//! validator (now shipped as [`pas_obs::expo`] so live `/metrics`
//! consumers can reuse it); the Chrome-trace check is a minimal recursive JSON
//! parser plus a schema walk over the parsed value. Neither pulls in a
//! dependency — the point is to fail when the exporters drift from
//! what real consumers (Prometheus scrapers, Perfetto) accept.

use std::collections::HashMap;

use pas_core::Ratio;
use pas_graph::units::TimeSpan;
use pas_graph::TaskId;
use pas_obs::expo::{parse_labels, validate_prometheus};
use pas_obs::{MetricsRegistry, Observer, ScanKind, SlotKind, StageKind, TraceEvent};

/// Feeds the registry a synthetic but representative pipeline run.
fn populated_registry() -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    let t = TaskId::from_index;
    let events = [
        TraceEvent::StageStarted {
            stage: StageKind::Timing,
        },
        TraceEvent::TaskCommitted { task: t(0) },
        TraceEvent::TaskCommitted { task: t(1) },
        TraceEvent::TopoBacktrack { task: t(1) },
        TraceEvent::TaskCommitted { task: t(1) },
        TraceEvent::StageFinished {
            stage: StageKind::Timing,
        },
        TraceEvent::StageStarted {
            stage: StageKind::MaxPower,
        },
        TraceEvent::VictimDelayed {
            task: t(0),
            slack: TimeSpan::from_secs(9),
            delta: TimeSpan::from_secs(4),
        },
        TraceEvent::RespinStarted { attempt: 1 },
        TraceEvent::StageFinished {
            stage: StageKind::MaxPower,
        },
        TraceEvent::StageStarted {
            stage: StageKind::MinPower,
        },
        TraceEvent::GapScanStarted {
            pass: 1,
            order: ScanKind::Forward,
            slot: SlotKind::StartAtGap,
        },
        TraceEvent::MoveAccepted {
            task: t(1),
            delta: TimeSpan::from_secs(-2),
            rho_before: Ratio::new(440, 500),
            rho_after: Ratio::new(449, 500),
        },
        TraceEvent::GapScanFinished { pass: 1, moves: 1 },
        TraceEvent::StageFinished {
            stage: StageKind::MinPower,
        },
    ];
    for e in &events {
        reg.on_event(e);
    }
    reg
}

#[test]
fn prometheus_exposition_is_structurally_valid() {
    let text = populated_registry().render_prometheus();
    validate_prometheus(&text).unwrap_or_else(|e| panic!("invalid exposition: {e}\n---\n{text}"));
}

#[test]
fn chrome_trace_is_structurally_valid_json_with_the_expected_schema() {
    let chrome = populated_registry().chrome_trace();
    let value = Json::parse(&chrome).unwrap_or_else(|e| panic!("invalid JSON: {e}\n---\n{chrome}"));

    let Json::Object(top) = &value else {
        panic!("top level must be an object");
    };
    assert!(
        matches!(top.get("displayTimeUnit"), Some(Json::String(s)) if s == "ms"),
        "displayTimeUnit must be the string \"ms\""
    );
    let Some(Json::Array(events)) = top.get("traceEvents") else {
        panic!("traceEvents must be an array");
    };
    assert_eq!(events.len(), 3, "one complete span per finished stage");
    for event in events {
        let Json::Object(fields) = event else {
            panic!("every trace event must be an object");
        };
        for key in ["name", "cat", "ph"] {
            assert!(
                matches!(fields.get(key), Some(Json::String(_))),
                "trace event field {key:?} must be a string"
            );
        }
        for key in ["ts", "dur", "pid", "tid"] {
            assert!(
                matches!(fields.get(key), Some(Json::Number(_))),
                "trace event field {key:?} must be a number"
            );
        }
        assert!(
            matches!(fields.get("ph"), Some(Json::String(s)) if s == "X"),
            "stage spans are complete events (ph = X)"
        );
    }
}

#[test]
fn hostile_source_names_render_valid_escaped_exposition() {
    // A PASDL task (or model file) named with quotes, backslashes, and
    // newlines must not corrupt the exposition text.
    let hostile = "a\"b\\c\nd";
    let mut reg = populated_registry();
    reg.set_source(hostile);
    let text = reg.render_prometheus();
    validate_prometheus(&text).unwrap_or_else(|e| panic!("invalid exposition: {e}\n---\n{text}"));

    // The escaped value must decode back to the original name.
    let info_line = text
        .lines()
        .find(|l| l.starts_with("pas_source_info{"))
        .expect("pas_source_info sample present");
    let body = info_line
        .split_once('{')
        .and_then(|(_, rest)| rest.rsplit_once('}'))
        .map(|(body, _)| body)
        .expect("label set present");
    let labels = parse_labels(body).expect("labels parse");
    assert_eq!(labels, vec![("model".to_string(), hostile.to_string())]);
}

#[test]
fn search_telemetry_metrics_pass_the_validator() {
    let mut reg = populated_registry();
    let events = [
        TraceEvent::WorkerStarted { worker: 0 },
        TraceEvent::SearchSample {
            worker: 0,
            nodes: 4096,
            depth: 7,
            best: -1,
        },
        TraceEvent::IncumbentImproved {
            worker: 0,
            nodes: 5000,
            finish: pas_graph::units::Time::from_secs(45),
        },
        TraceEvent::SearchSample {
            worker: 0,
            nodes: 8192,
            depth: 9,
            best: 45,
        },
        TraceEvent::SearchStatsRecorded {
            worker: 0,
            nodes: 9000,
            pruned_incumbent: 410,
            pruned_dominance: 77,
            pruned_horizon: 12,
            pruned_budget: 0,
            pruned_bound: 3,
            max_depth: 11,
            budget: 10_000,
        },
        TraceEvent::WorkerFinished { worker: 0 },
    ];
    for e in &events {
        reg.on_event(e);
    }
    let text = reg.render_prometheus();
    validate_prometheus(&text).unwrap_or_else(|e| panic!("invalid exposition: {e}\n---\n{text}"));
    for needle in [
        "pas_search_sample_depth_bucket",
        "pas_search_nodes_bucket",
        "pas_search_prunes_total{reason=\"incumbent\"} 410",
        "pas_search_budget_utilization 0.9",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }

    // The Chrome export gains a worker lane and counter samples while
    // staying structurally valid JSON.
    let chrome = reg.chrome_trace();
    let value = Json::parse(&chrome).unwrap_or_else(|e| panic!("invalid JSON: {e}\n---\n{chrome}"));
    let Json::Object(top) = &value else {
        panic!("top level must be an object");
    };
    let Some(Json::Array(events)) = top.get("traceEvents") else {
        panic!("traceEvents must be an array");
    };
    let mut phases: Vec<&str> = Vec::new();
    for event in events {
        let Json::Object(fields) = event else {
            panic!("every trace event must be an object");
        };
        let Some(Json::String(ph)) = fields.get("ph") else {
            panic!("trace event without ph");
        };
        phases.push(ph);
    }
    assert_eq!(
        phases.iter().filter(|p| **p == "C").count(),
        2,
        "one counter sample per SearchSample"
    );
    assert!(
        chrome.contains(r#""name":"worker-0""#),
        "worker lane present in:\n{chrome}"
    );
}

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON parser
// ---------------------------------------------------------------------

#[derive(Debug)]
enum Json {
    Object(HashMap<String, Json>),
    Array(Vec<Json>),
    String(String),
    // The schema walk only checks kinds, so the payloads of number and
    // bool values are parsed but never read back out.
    Number(#[allow(dead_code)] f64),
    Bool(#[allow(dead_code)] bool),
    Null,
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {pos}, found {:?}",
            byte as char,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut map = HashMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            other => return Err(format!("expected ',' or ']', found {other:?}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    other => return Err(format!("unsupported escape \\{}", *other as char)),
                }
            }
            other => out.push(other as char),
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Number)
        .ok_or_else(|| format!("bad number at byte {start}"))
}
