//! Extended per-code help for `impacct-cli lint --explain PASnnn`:
//! what the rule means, a minimal witness spec, and how to fix it.

use crate::diag::LintCode;

/// Extended help text for `code`: cause, example witness and fix,
/// rustc `--explain` style. Stable plain text, safe to print
/// verbatim.
pub fn explain(code: LintCode) -> &'static str {
    match code {
        LintCode::TaskOverBudget => {
            "\
PAS001: task over budget

A single task's power draw (plus the background draw) exceeds pmax.
The task spikes the budget every time it runs, so no schedule is
valid, whatever the ordering.

Example:
    problem \"w\" {
      pmax 16W
      resource arm
      task drill on arm delay 10s power 20W
    }

Fix: lower the task's power below pmax - background, or raise pmax."
        }
        LintCode::SelfLoop => {
            "\
PAS002: self-looping constraint

A separation constraint relates a task to itself. With positive
weight it demands the task start after itself (a one-node positive
cycle, error); otherwise it is vacuous (warning).

Fix: delete the self-referential constraint."
        }
        LintCode::DuplicateEdge => {
            "\
PAS003: duplicate constraint

Two identical constraint edges (same endpoints, kind and weight)
were declared. The second adds nothing and usually indicates a
copy-paste slip.

Fix: delete one of the two statements. `lint --fix` does this
automatically."
        }
        LintCode::DanglingResource => {
            "\
PAS004: dangling resource

A declared resource has no tasks mapped to it — usually a typo in a
`task ... on ...` clause pointing at a different name.

Fix: map a task onto the resource or delete the declaration."
        }
        LintCode::BackgroundOverBudget => {
            "\
PAS005: background over budget

The platform's background draw alone exceeds pmax, so every instant
of every schedule is over budget before any task runs.

Fix: raise pmax above the background draw, or model a smaller
background."
        }
        LintCode::NonPositiveDelay => {
            "\
PAS006: non-positive delay

A task's execution delay is zero or negative. The scheduling model
requires d(v) >= 1s; zero-length tasks degenerate the half-open
interval logic.

Fix: give the task a delay of at least 1s."
        }
        LintCode::PositiveCycle => {
            "\
PAS010: positive timing cycle

The min/max separation system is mutually unsatisfiable: following
the constraints around a loop demands a task start strictly after
itself. The diagnostic renders the offending chain with per-edge
weights.

Example:
    min a -> b 10s        # b at least 10s after a
    max a -> b 4s         # b at most 4s after a

Fix: widen the max separations (or shrink the min separations) on
the reported cycle."
        }
        LintCode::RedundantEdge => {
            "\
PAS011: redundant separation

A min/max separation is strictly dominated by a longer path through
other constraints; deleting it changes nothing. Harmless, but it
obscures which constraints actually bind.

Fix: delete it (`lint --fix` does), or tighten it if it was meant
to bind."
        }
        LintCode::DeadlineUnreachable => {
            "\
PAS012: deadline unreachable

The critical path through the precedence/separation graph is longer
than the declared deadline, so no time-valid schedule can meet it.
The diagnostic names the critical chain.

Fix: extend the deadline past the critical path, or shorten the
chain. `lint --fix --fix-maybe-incorrect` rewrites the deadline."
        }
        LintCode::ForcedOverlapPower => {
            "\
PAS020: forced overlap over budget

Two tasks on different resources are forced by their separations to
run simultaneously at some instant, and their summed draw (plus
background) exceeds pmax. Every time-valid schedule spikes.

Fix: widen the separation window between them so one can wait for
the other, or lower their power."
        }
        LintCode::WindowOverload => {
            "\
PAS021: mandatory-interval overload

Under the declared deadline each task must run throughout
[alap(v), asap(v)+d(v)) whenever that interval is non-empty. Summing
those mandatory intervals already pushes the power profile over
pmax, so no deadline-meeting schedule exists.

Fix: extend the deadline (shrinking the mandatory intervals) or
reduce the overlapping tasks' power."
        }
        LintCode::HopelessUtilization => {
            "\
PAS022: hopeless min-power utilization

A static upper bound proves no schedule can keep the platform near
pmin: the available task energy is too small relative to pmin times
the makespan. The regulator will idle-burn whatever the scheduler
does.

Fix: lower pmin towards the average demand, or accept the wasted
free power."
        }
        LintCode::ForcedResourceOverlap => {
            "\
PAS030: forced resource overlap

Two tasks on the *same* exclusive resource are forced by their
separations to overlap. The timing stage must fail: the resource
can only run one of them at a time.

Fix: widen the separation window so the tasks can serialize, or
move one to another resource."
        }
        LintCode::EnergyInfeasibleWindow => {
            "\
PAS040: energy-infeasible window

Deep lint propagates joint ASAP/ALAP start-time windows and sums
each task's *mandatory* execution overlap with a candidate time
window [a, b). If the mandatory energy exceeds
(pmax - background) * (b - a), no deadline-meeting schedule can
push that much energy through the budget inside the window.

The diagnostic carries a machine-checkable certificate: the window,
the contributing tasks' claimed start windows, the constraint-graph
paths proving each bound, and the violated inequality. Validate it
independently with pas-lint's verify_certificate (the CLI JSON
output embeds it).

Fix: extend the deadline, raise pmax, or spread the tasks' windows
apart."
        }
        LintCode::DemandOverCapacity => {
            "\
PAS041: demand over window capacity

Tasks sharing one exclusive resource must run serially, yet their
mandatory overlaps with a window [a, b) sum to more than b - a
seconds. No deadline-meeting schedule can pack them.

Like all PAS04x codes the diagnostic carries a machine-checkable
certificate validated by an independent checker before emission.

Fix: extend the deadline or move one of the packed tasks to another
resource."
        }
        LintCode::TightenedDeadlineMiss => {
            "\
PAS042: bound-tightened deadline miss

The critical path fits the deadline, but a stronger admissible
lower bound proves the deadline unreachable anyway: either total
task energy cannot flow through pmax - background fast enough, or
one resource must run its tasks back-to-back past the deadline.
These are the same bounds the exact scheduler reuses for pruning
(LintBounds).

The certificate carries the violated bound and its evidence.

Fix: extend the deadline to at least the reported lower bound
(`lint --fix --fix-maybe-incorrect` rewrites it)."
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_code_has_distinct_nonempty_help_naming_itself() {
        let mut seen = Vec::new();
        for c in LintCode::ALL {
            let text = explain(c);
            assert!(!text.is_empty(), "{c}");
            assert!(
                text.starts_with(c.as_str()),
                "{c} help must open with its code"
            );
            assert!(text.contains("Fix:"), "{c} help must offer a fix");
            seen.push(text);
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), LintCode::ALL.len());
    }

    #[test]
    fn deep_codes_mention_their_certificates() {
        for c in [
            LintCode::EnergyInfeasibleWindow,
            LintCode::DemandOverCapacity,
            LintCode::TightenedDeadlineMiss,
        ] {
            assert!(explain(c).contains("certificate"), "{c}");
        }
    }
}
