//! Rendering a [`LintReport`] for humans (rustc-style, with source
//! excerpts) and for tools (single-object JSON, dependency-free).

use crate::diag::{Diagnostic, LintReport};
use core::fmt::Write as _;

/// A named piece of spec source, used to resolve byte spans to
/// line/column excerpts.
#[derive(Debug, Clone, Copy)]
pub struct SourceFile<'a> {
    /// Display name (usually the file path).
    pub name: &'a str,
    /// Full source text the spans index into.
    pub text: &'a str,
}

/// Renders the report the way rustc renders compiler diagnostics:
///
/// ```text
/// error[PAS001]: task "drill" draws 20 W against a 16 W budget
///   --> rover.pasdl:5:3
///    |
///  5 |   task drill on arm delay 10s power 20W
///    |   ^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^ declared here
///    = help: lower p(drill) or raise pmax
/// ```
///
/// Without a [`SourceFile`] the span blocks are omitted and only the
/// headline and help lines are printed.
pub fn render_human(report: &LintReport, source: Option<SourceFile<'_>>) -> String {
    let mut out = String::new();
    for d in report.diagnostics() {
        render_one(&mut out, d, source);
    }
    if !report.is_empty() {
        let _ = writeln!(out, "{}", report.summary());
    }
    out
}

fn render_one(out: &mut String, d: &Diagnostic, source: Option<SourceFile<'_>>) {
    let _ = writeln!(out, "{}[{}]: {}", d.severity, d.code, d.message);
    if let Some(src) = source {
        for labeled in &d.spans {
            let (line, col) = labeled.span.line_col(src.text);
            let _ = writeln!(out, "  --> {}:{line}:{col}", src.name);
            let text = line_text(src.text, line);
            let gutter = line.to_string().len();
            let _ = writeln!(out, "{:gutter$} |", "");
            let _ = writeln!(out, "{line} | {text}");
            let caret_len = caret_len(labeled.span, src.text, text, col);
            let _ = writeln!(
                out,
                "{:gutter$} | {:col_pad$}{} {}",
                "",
                "",
                "^".repeat(caret_len),
                labeled.label,
                col_pad = col - 1,
            );
        }
    } else {
        for labeled in &d.spans {
            let _ = writeln!(
                out,
                "  --> bytes {}..{} {}",
                labeled.span.start, labeled.span.end, labeled.label
            );
        }
    }
    if let Some(help) = &d.suggestion {
        let _ = writeln!(out, "  = help: {help}");
    }
    if let Some(fix) = &d.fix {
        if fix.replacement.is_empty() {
            let _ = writeln!(
                out,
                "  = fix ({}): delete the statement",
                fix.applicability.as_str()
            );
        } else {
            let _ = writeln!(
                out,
                "  = fix ({}): replace with `{}`",
                fix.applicability.as_str(),
                fix.replacement
            );
        }
    }
    if let Some(cert) = &d.certificate {
        let _ = writeln!(
            out,
            "  = certificate: {} proof attached (machine-checkable; emitted in JSON output)",
            cert.kind()
        );
    }
}

/// The 1-based `line`-th line of `text`, without its newline.
fn line_text(text: &str, line: usize) -> &str {
    text.lines().nth(line - 1).unwrap_or("")
}

/// How many caret characters to draw: the span's extent within its
/// first line, at least one.
fn caret_len(span: crate::Span, text: &str, line: &str, col: usize) -> usize {
    let line_chars = line.chars().count();
    let span_chars = text
        .get(span.start..span.end.min(text.len()))
        .map_or(1, |s| s.split('\n').next().unwrap_or("").chars().count());
    span_chars.clamp(1, line_chars.saturating_sub(col - 1).max(1))
}

/// Renders the report as one JSON object:
///
/// ```json
/// {"file":"rover.pasdl","errors":1,"warnings":0,"diagnostics":[
///   {"code":"PAS001","severity":"error","message":"...",
///    "spans":[{"start":57,"end":98,"line":5,"col":3,"label":"declared here"}],
///    "suggestion":"..."}]}
/// ```
///
/// `file`, `line`/`col` and `suggestion` are omitted when unknown.
/// The encoder is self-contained (no serde) and escapes strings per
/// RFC 8259.
pub fn render_json(report: &LintReport, source: Option<SourceFile<'_>>) -> String {
    let mut out = String::from("{");
    if let Some(src) = source {
        let _ = write!(out, "\"file\":\"{}\",", escape_json(src.name));
    }
    let _ = write!(
        out,
        "\"errors\":{},\"warnings\":{},\"diagnostics\":[",
        report.error_count(),
        report.warning_count()
    );
    for (i, d) in report.diagnostics().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",\"spans\":[",
            d.code,
            d.severity,
            escape_json(&d.message)
        );
        for (j, labeled) in d.spans.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"start\":{},\"end\":{}",
                labeled.span.start, labeled.span.end
            );
            if let Some(src) = source {
                let (line, col) = labeled.span.line_col(src.text);
                let _ = write!(out, ",\"line\":{line},\"col\":{col}");
            }
            let _ = write!(out, ",\"label\":\"{}\"}}", escape_json(&labeled.label));
        }
        out.push(']');
        if let Some(s) = &d.suggestion {
            let _ = write!(out, ",\"suggestion\":\"{}\"", escape_json(s));
        }
        if let Some(fix) = &d.fix {
            let _ = write!(
                out,
                ",\"fix\":{{\"start\":{},\"end\":{},\"replacement\":\"{}\",\"applicability\":\"{}\"}}",
                fix.span.start,
                fix.span.end,
                escape_json(&fix.replacement),
                fix.applicability.as_str(),
            );
        }
        if let Some(cert) = &d.certificate {
            let _ = write!(out, ",\"certificate\":{}", cert.to_json());
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Diagnostic, LintCode, LintReport};
    use crate::span::Span;

    fn sample() -> (LintReport, &'static str) {
        let src = "problem \"x\" {\n  task a on cpu delay 5s power 2W\n}\n";
        let mut r = LintReport::new();
        let start = src.find("task").unwrap();
        r.push(
            Diagnostic::new(LintCode::TaskOverBudget, "task \"a\" over budget")
                .with_span(Some(Span::new(start, start + 31)), "declared here")
                .with_suggestion("raise pmax"),
        );
        (r, src)
    }

    #[test]
    fn human_rendering_points_at_the_statement() {
        let (r, src) = sample();
        let text = render_human(
            &r,
            Some(SourceFile {
                name: "x.pasdl",
                text: src,
            }),
        );
        assert!(text.contains("error[PAS001]: task \"a\" over budget"));
        assert!(text.contains("--> x.pasdl:2:3"));
        assert!(text.contains("task a on cpu delay 5s power 2W"));
        assert!(text.contains("^^^^"));
        assert!(text.contains("= help: raise pmax"));
        assert!(text.contains("1 error, 0 warnings"));
    }

    #[test]
    fn human_rendering_without_source_is_still_useful() {
        let (r, _) = sample();
        let text = render_human(&r, None);
        assert!(text.contains("error[PAS001]"));
        assert!(text.contains("bytes"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut r = LintReport::new();
        r.push(Diagnostic::new(
            LintCode::SelfLoop,
            "weird \"name\"\nwith newline",
        ));
        let json = render_json(&r, None);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#""code":"PAS002""#));
        assert!(json.contains(r#"weird \"name\"\nwith newline"#));
        assert!(!json.contains("file"));
    }

    #[test]
    fn json_carries_line_and_col_with_source() {
        let (r, src) = sample();
        let json = render_json(
            &r,
            Some(SourceFile {
                name: "x.pasdl",
                text: src,
            }),
        );
        assert!(json.contains(r#""file":"x.pasdl""#));
        assert!(json.contains(r#""line":2,"col":3"#));
        assert!(json.contains(r#""errors":1"#));
    }

    #[test]
    fn hostile_names_are_escaped_everywhere_in_json() {
        use crate::certificate::{Certificate, WindowClaim};
        use pas_graph::units::Time;
        use pas_graph::{ResourceId, TaskId};
        // Names with quotes, backslashes, newlines and control bytes
        // must survive both the message and the embedded certificate.
        let hostile = "evil\"name\\\n\u{1}";
        let cert = Certificate::ResourcePacking {
            deadline: Time::from_secs(9),
            resource: ResourceId::from_index(0),
            resource_name: hostile.to_string(),
            window: (Time::ZERO, Time::from_secs(9)),
            claims: vec![WindowClaim {
                task: TaskId::from_index(0),
                task_name: hostile.to_string(),
                asap: Time::ZERO,
                alap: Time::from_secs(4),
                asap_path: Vec::new(),
                alap_path: vec![TaskId::from_index(0).node()],
            }],
            demand_secs: 10,
            capacity_secs: 9,
        };
        let mut r = LintReport::new();
        r.push(
            Diagnostic::new(
                LintCode::DemandOverCapacity,
                format!("resource \"{hostile}\" is packed"),
            )
            .with_certificate(cert),
        );
        let json = render_json(&r, None);
        assert!(json.contains(r#"evil\"name\\\n"#), "{json}");
        // No raw control bytes or unescaped quotes-in-strings leak out.
        assert!(!json.contains('\u{1}'), "{json}");
        assert!(json.contains(r#""certificate":{"kind":"resource-packing""#));
    }

    #[test]
    fn fix_and_certificate_render_in_both_formats() {
        use crate::diag::Applicability;
        let mut r = LintReport::new();
        r.push(
            Diagnostic::new(LintCode::DeadlineUnreachable, "deadline 10s unreachable").with_fix(
                Some(Span::new(5, 17)),
                "deadline 16s",
                Applicability::MaybeIncorrect,
            ),
        );
        let human = render_human(&r, None);
        assert!(
            human.contains("= fix (maybe-incorrect): replace with `deadline 16s`"),
            "{human}"
        );
        let json = render_json(&r, None);
        assert!(
            json.contains(
                r#""fix":{"start":5,"end":17,"replacement":"deadline 16s","applicability":"maybe-incorrect"}"#
            ),
            "{json}"
        );
    }

    #[test]
    fn empty_report_renders_empty() {
        let r = LintReport::new();
        assert_eq!(render_human(&r, None), "");
        assert_eq!(
            render_json(&r, None),
            r#"{"errors":0,"warnings":0,"diagnostics":[]}"#
        );
    }
}
