//! Byte spans into PASDL source text, and the table that maps graph
//! entities back to the statements that declared them.
//!
//! Spans are plain byte offsets so they survive any amount of
//! indirection between the parser and the renderer; line/column
//! positions are recomputed lazily from the source text only when a
//! diagnostic is rendered.

use pas_graph::{EdgeId, ResourceId, TaskId};
use std::collections::HashMap;

/// A half-open byte range `[start, end)` into a source string.
///
/// # Examples
/// ```
/// use pas_lint::Span;
/// let s = Span::new(4, 9);
/// assert_eq!(s.len(), 5);
/// assert!(!s.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// Byte offset of the first byte covered.
    pub start: usize,
    /// Byte offset one past the last byte covered.
    pub end: usize,
}

impl Span {
    /// Creates a span; `end` is clamped to be at least `start`.
    pub fn new(start: usize, end: usize) -> Self {
        Span {
            start,
            end: end.max(start),
        }
    }

    /// Number of bytes covered.
    pub fn len(self) -> usize {
        self.end - self.start
    }

    /// `true` when the span covers no bytes.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Smallest span covering both `self` and `other`.
    pub fn join(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// 1-based `(line, column)` of the span start within `source`.
    ///
    /// Columns count Unicode scalar values, matching what an editor
    /// shows. Offsets past the end of the source map to its last line.
    pub fn line_col(self, source: &str) -> (usize, usize) {
        let upto = &source[..self.start.min(source.len())];
        let line = upto.matches('\n').count() + 1;
        let line_start = upto.rfind('\n').map_or(0, |nl| nl + 1);
        let col = upto[line_start..].chars().count() + 1;
        (line, col)
    }
}

/// Maps constraint-graph entities back to the spec-source statements
/// that declared them.
///
/// Produced by `pas-spec`'s span-aware parse entry point; an
/// [`empty`](SpanTable::empty) table is used for programmatically
/// built problems, in which case diagnostics simply carry no spans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanTable {
    /// Span of the `problem "name"` header name.
    pub problem: Option<Span>,
    /// Span of the `pmax` statement.
    pub pmax: Option<Span>,
    /// Span of the `pmin` statement.
    pub pmin: Option<Span>,
    /// Span of the `background` statement.
    pub background: Option<Span>,
    /// Span of the `deadline` statement.
    pub deadline: Option<Span>,
    tasks: Vec<Option<Span>>,
    resources: Vec<Option<Span>>,
    edges: HashMap<EdgeId, Span>,
}

impl SpanTable {
    /// A table with no spans at all (programmatic problems).
    pub fn empty() -> Self {
        SpanTable::default()
    }

    /// Records the declaring statement of a task.
    pub fn set_task(&mut self, id: TaskId, span: Span) {
        let i = id.index();
        if self.tasks.len() <= i {
            self.tasks.resize(i + 1, None);
        }
        self.tasks[i] = Some(span);
    }

    /// Records the declaring statement of a resource.
    pub fn set_resource(&mut self, id: ResourceId, span: Span) {
        let i = id.index();
        if self.resources.len() <= i {
            self.resources.resize(i + 1, None);
        }
        self.resources[i] = Some(span);
    }

    /// Records the declaring statement of a constraint edge.
    pub fn set_edge(&mut self, id: EdgeId, span: Span) {
        self.edges.insert(id, span);
    }

    /// Span of the statement that declared `id`, if known.
    pub fn task(&self, id: TaskId) -> Option<Span> {
        self.tasks.get(id.index()).copied().flatten()
    }

    /// Span of the statement that declared `id`, if known.
    pub fn resource(&self, id: ResourceId) -> Option<Span> {
        self.resources.get(id.index()).copied().flatten()
    }

    /// Span of the statement that declared `id`, if known.
    pub fn edge(&self, id: EdgeId) -> Option<Span> {
        self.edges.get(&id).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_basics() {
        let s = Span::new(3, 8);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert_eq!(Span::new(4, 2), Span::new(4, 4));
        assert_eq!(s.join(Span::new(10, 12)), Span::new(3, 12));
    }

    #[test]
    fn line_col_is_one_based() {
        let src = "ab\ncdef\ng";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(1, 2).line_col(src), (1, 2));
        assert_eq!(Span::new(3, 4).line_col(src), (2, 1));
        assert_eq!(Span::new(6, 7).line_col(src), (2, 4));
        assert_eq!(Span::new(8, 9).line_col(src), (3, 1));
    }

    #[test]
    fn table_lookup_round_trip() {
        let mut t = SpanTable::empty();
        assert_eq!(t.task(TaskId::from_index(0)), None);
        t.set_task(TaskId::from_index(2), Span::new(5, 9));
        assert_eq!(t.task(TaskId::from_index(2)), Some(Span::new(5, 9)));
        assert_eq!(t.task(TaskId::from_index(0)), None);
        t.set_resource(ResourceId::from_index(0), Span::new(1, 3));
        assert_eq!(t.resource(ResourceId::from_index(0)), Some(Span::new(1, 3)));
    }
}
