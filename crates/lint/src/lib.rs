//! # pas-lint — static analysis for power-aware scheduling problems
//!
//! A rustc-style diagnostics engine plus a battery of static passes
//! over [`Problem`](pas_core::Problem)/constraint graphs that prove
//! many specs broken *before* the exponential schedulers run:
//!
//! * **structural sanity** — `PAS001` task over budget, `PAS002`
//!   self-loops, `PAS003` duplicate edges, `PAS004` dangling
//!   resources, `PAS005` background over budget, `PAS006`
//!   non-positive delays;
//! * **timing analysis** — `PAS010` positive cycles with a minimal
//!   witness rendered as a constraint chain, `PAS011` redundant
//!   (path-dominated) separations, `PAS012` deadline vs. critical
//!   path;
//! * **power analysis** — `PAS020` forced-overlap pairs whose summed
//!   draw busts `P_max`, `PAS021` ASAP/ALAP mandatory-interval
//!   profile bound under a deadline, `PAS022` static upper bound on
//!   the min-power utilization `ρ_σ(P_min)`;
//! * **resource analysis** — `PAS030` same-resource pairs forced to
//!   overlap;
//! * **deep abstract interpretation** — joint ASAP/ALAP interval
//!   windows with per-window energy/demand envelopes: `PAS040`
//!   energy-infeasible windows, `PAS041` demand-over-capacity
//!   interval packing, `PAS042` bound-tightened deadline misses.
//!   Every `PAS04x` diagnostic carries a machine-checkable
//!   [`Certificate`] validated by the independent zero-trust
//!   [`verify_certificate`] checker before emission, and the same
//!   analysis exports [`LintBounds`] that `pas-sched`'s exact B&B
//!   reuses as admissible pruning bounds.
//!
//! Error-level findings of every non-deadline code are *proofs* that
//! the scheduling pipeline must fail (see
//! [`LintCode::implies_scheduler_failure`]), which is what licenses
//! `pas-sched`'s early-reject guard stage.
//!
//! Diagnostics carry byte [`Span`]s resolved through a [`SpanTable`]
//! that `pas-spec`'s parser populates, so findings point at the
//! offending spec statements; problems built programmatically lint
//! identically, just without source excerpts.
//!
//! ## Example
//!
//! ```
//! use pas_core::{Problem, PowerConstraints};
//! use pas_graph::units::{Power, TimeSpan};
//! use pas_graph::{ConstraintGraph, Resource, ResourceKind, Task};
//! use pas_lint::{lint, LintCode};
//!
//! let mut g = ConstraintGraph::new();
//! let cpu = g.add_resource(Resource::new("cpu", ResourceKind::Compute));
//! g.add_task(Task::new("burn", cpu, TimeSpan::from_secs(5), Power::from_watts(30)));
//! let p = Problem::new("demo", g, PowerConstraints::max_only(Power::from_watts(16)));
//!
//! let report = lint(&p);
//! assert!(report.has_errors());
//! assert_eq!(report.by_code(LintCode::TaskOverBudget).count(), 1);
//! assert!(report.proves_scheduler_failure());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
mod certificate;
mod diag;
mod explain;
mod fixit;
mod passes;
mod render;
mod span;

pub use bounds::{lint_bounds, LintBounds, WindowDemand};
pub use certificate::{
    verify_certificate, Certificate, CertificateError, MakespanBound, StartClaim, WindowClaim,
};
pub use diag::{Applicability, Diagnostic, Fix, LabeledSpan, LintCode, LintReport, Severity};
pub use explain::explain;
pub use fixit::{apply_fixes, FixOutcome};
pub use passes::{lint, lint_problem, LintConfig};
pub use render::{render_human, render_json, SourceFile};
pub use span::{Span, SpanTable};

#[cfg(test)]
mod crate_tests {
    use super::*;
    use pas_core::{PowerConstraints, Problem};
    use pas_graph::units::{Power, Time, TimeSpan};
    use pas_graph::{ConstraintGraph, Resource, ResourceKind, Task, TaskId};

    fn two_task_graph(same_resource: bool) -> (ConstraintGraph, TaskId, TaskId) {
        let mut g = ConstraintGraph::new();
        let r0 = g.add_resource(Resource::new("A", ResourceKind::Compute));
        let r1 = if same_resource {
            r0
        } else {
            g.add_resource(Resource::new("B", ResourceKind::Other))
        };
        let a = g.add_task(Task::new(
            "a",
            r0,
            TimeSpan::from_secs(5),
            Power::from_watts(4),
        ));
        let b = g.add_task(Task::new(
            "b",
            r1,
            TimeSpan::from_secs(5),
            Power::from_watts(4),
        ));
        (g, a, b)
    }

    fn unconstrained(g: ConstraintGraph) -> Problem {
        Problem::new("t", g, PowerConstraints::unconstrained())
    }

    #[test]
    fn clean_problem_is_clean() {
        let (mut g, a, b) = two_task_graph(false);
        g.precedence(a, b);
        let report = lint(&unconstrained(g));
        assert!(!report.has_errors(), "{report:?}");
        assert!(report.is_empty(), "{report:?}");
    }

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Diagnostic>();
        assert_send_sync::<LintReport>();
        assert_send_sync::<LintConfig>();
        assert_send_sync::<SpanTable>();
    }

    #[test]
    fn positive_cycle_gets_minimal_witness() {
        let (mut g, a, b) = two_task_graph(false);
        g.min_separation(a, b, TimeSpan::from_secs(10));
        g.max_separation(a, b, TimeSpan::from_secs(4)); // window [10, 4]: impossible
        let report = lint(&unconstrained(g));
        let d: Vec<_> = report.by_code(LintCode::PositiveCycle).collect();
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("\"a\""), "{}", d[0].message);
        assert!(d[0].message.contains("\"b\""), "{}", d[0].message);
        assert!(d[0].message.contains("min"), "{}", d[0].message);
        assert!(report.proves_timing_failure());
    }

    #[test]
    fn forced_same_resource_overlap_detected() {
        let (mut g, a, b) = two_task_graph(true);
        // x = σb − σa confined to [0, 4] while overlap band is (−5, 5).
        g.min_separation(a, b, TimeSpan::ZERO);
        g.max_separation(a, b, TimeSpan::from_secs(4));
        let report = lint(&unconstrained(g));
        assert_eq!(report.by_code(LintCode::ForcedResourceOverlap).count(), 1);
        assert!(report.proves_timing_failure());
        // The identical window on different resources is fine power-wise
        // (p_max unconstrained): no error.
        let (mut g2, a2, b2) = two_task_graph(false);
        g2.min_separation(a2, b2, TimeSpan::ZERO);
        g2.max_separation(a2, b2, TimeSpan::from_secs(4));
        assert!(!lint(&unconstrained(g2)).has_errors());
    }

    #[test]
    fn forced_overlap_power_detected_across_resources() {
        let (mut g, a, b) = two_task_graph(false);
        g.min_separation(a, b, TimeSpan::ZERO);
        g.max_separation(a, b, TimeSpan::from_secs(4));
        // 4 W + 4 W against a 7 W budget: forced spike.
        let p = Problem::new("t", g, PowerConstraints::max_only(Power::from_watts(7)));
        let report = lint(&p);
        assert_eq!(report.by_code(LintCode::ForcedOverlapPower).count(), 1);
        assert!(report.proves_scheduler_failure());
        assert!(!report.proves_timing_failure());
    }

    #[test]
    fn slack_window_is_not_forced_overlap() {
        let (mut g, a, b) = two_task_graph(true);
        // Window [0, 8] allows x = 5 ≥ d(a): serializable.
        g.min_separation(a, b, TimeSpan::ZERO);
        g.max_separation(a, b, TimeSpan::from_secs(8));
        assert!(!lint(&unconstrained(g)).has_errors());
    }

    #[test]
    fn deadline_precheck_fires_only_when_unreachable() {
        let (mut g, a, b) = two_task_graph(false);
        g.precedence(a, b); // critical path 10 s
        let p = unconstrained(g).with_deadline(Time::from_secs(8));
        let report = lint(&p);
        let d: Vec<_> = report.by_code(LintCode::DeadlineUnreachable).collect();
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("10s"), "{}", d[0].message);
        assert!(!report.proves_scheduler_failure());

        let (mut g, a, b) = two_task_graph(false);
        g.precedence(a, b);
        let p = unconstrained(g).with_deadline(Time::from_secs(10));
        assert!(!lint(&p).has_errors());
    }

    #[test]
    fn window_overload_under_deadline() {
        let (g, _, _) = two_task_graph(false);
        // Deadline equal to a single delay: both tasks are mandatory
        // over [0, 5), drawing 8 W against 7 W.
        let p = Problem::new("t", g, PowerConstraints::max_only(Power::from_watts(7)))
            .with_deadline(Time::from_secs(5));
        let report = lint(&p);
        assert_eq!(report.by_code(LintCode::WindowOverload).count(), 1);
        // With a relaxed deadline the windows decouple.
        let (g, _, _) = two_task_graph(false);
        let p = Problem::new("t", g, PowerConstraints::max_only(Power::from_watts(7)))
            .with_deadline(Time::from_secs(10));
        assert!(!lint(&p).has_errors());
    }

    #[test]
    fn hopeless_pmin_warns() {
        let (g, _, _) = two_task_graph(true);
        // Two 5 s / 4 W tasks vs pmin 20 W: bound 40 %.
        let p = Problem::new(
            "t",
            g,
            PowerConstraints::new(Power::from_watts(20), Power::from_watts(20)),
        );
        let report = lint(&p);
        assert_eq!(report.by_code(LintCode::HopelessUtilization).count(), 1);
        assert!(!report.has_errors());
    }

    #[test]
    fn structural_findings() {
        let mut g = ConstraintGraph::new();
        let cpu = g.add_resource(Resource::new("cpu", ResourceKind::Compute));
        let idle = g.add_resource(Resource::new("idle", ResourceKind::Other));
        let _ = idle;
        let a = g.add_task(Task::new(
            "a",
            cpu,
            TimeSpan::from_secs(3),
            Power::from_watts(2),
        ));
        let b = g.add_task(Task::new(
            "b",
            cpu,
            TimeSpan::from_secs(3),
            Power::from_watts(2),
        ));
        g.min_separation(a, b, TimeSpan::from_secs(3));
        g.min_separation(a, b, TimeSpan::from_secs(3)); // duplicate
        let report = lint(&unconstrained(g));
        assert_eq!(report.by_code(LintCode::DuplicateEdge).count(), 1);
        assert_eq!(report.by_code(LintCode::DanglingResource).count(), 1);
        assert!(!report.has_errors());
    }

    #[test]
    fn background_over_budget_is_fatal() {
        let (g, _, _) = two_task_graph(false);
        let p = Problem::with_background(
            "t",
            g,
            PowerConstraints::max_only(Power::from_watts(5)),
            Power::from_watts(4),
        );
        // 4 W background + 4 W task > 5 W: PAS001 on both tasks.
        let report = lint(&p);
        assert_eq!(report.by_code(LintCode::TaskOverBudget).count(), 2);
        let p2 = Problem::with_background(
            "t",
            two_task_graph(false).0,
            PowerConstraints::max_only(Power::from_watts(3)),
            Power::from_watts(4),
        );
        assert_eq!(lint(&p2).by_code(LintCode::BackgroundOverBudget).count(), 1);
    }

    #[test]
    fn redundant_edge_warns() {
        let (mut g, a, b) = two_task_graph(false);
        g.precedence(a, b); // forces 5 s
        g.min_separation(a, b, TimeSpan::from_secs(2)); // dominated
        let report = lint(&unconstrained(g));
        assert_eq!(report.by_code(LintCode::RedundantEdge).count(), 1);
        assert!(!report.has_errors());
    }
}
