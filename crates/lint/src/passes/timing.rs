//! Timing analysis: positive-cycle witnesses, redundant separations
//! and the deadline-vs-critical-path precheck.

use super::{node_label, signed};
use crate::diag::{Applicability, Diagnostic, LintCode, LintReport};
use crate::span::SpanTable;
use pas_graph::longest_path::{single_source_longest_paths, LongestPaths, PositiveCycle};
use pas_graph::units::{Time, TimeSpan};
use pas_graph::{ConstraintGraph, EdgeId, EdgeKind, NodeId};
use std::collections::HashMap;

/// Short constraint-kind tag for chain rendering.
fn kind_tag(kind: EdgeKind) -> &'static str {
    match kind {
        EdgeKind::MinSeparation => "min",
        EdgeKind::MaxSeparation => "max",
        EdgeKind::Serialization => "serialize",
        EdgeKind::Release => "release",
        EdgeKind::Lock => "lock",
        _ => "edge",
    }
}

/// PAS010 — the graph has a positive cycle. Prefers a *minimal*
/// witness (a single mutually-contradictory separation pair) over the
/// possibly long cycle the Bellman–Ford fallback extracted, and
/// renders it as a constraint chain a spec author can follow.
pub(super) fn report_positive_cycle(
    graph: &ConstraintGraph,
    spans: &SpanTable,
    cycle: &PositiveCycle,
    report: &mut LintReport,
) {
    let witness = minimal_witness(graph).unwrap_or_else(|| cycle.nodes.clone());
    let (chain, total, edge_ids) = render_chain(graph, &witness).unwrap_or_else(|| {
        // Witness nodes we cannot stitch edges through (shouldn't
        // happen): fall back to a bare node list.
        let names: Vec<_> = cycle.nodes.iter().map(|&n| node_label(graph, n)).collect();
        (names.join(" -> "), cycle.total_weight, Vec::new())
    });
    let mut d = Diagnostic::new(
        LintCode::PositiveCycle,
        format!(
            "timing constraints are mutually unsatisfiable: {chain} gains {} per loop",
            signed(total),
        ),
    );
    for id in edge_ids {
        d = d.with_span(spans.edge(id), "part of the cycle");
    }
    report.push(
        d.with_suggestion("widen the max separations (or shrink the min separations) on the cycle"),
    );
}

/// Searches for a positive cycle of length ≤ 2 — the smallest
/// explainable witness. Returns the node loop without the repeated
/// closing node.
fn minimal_witness(graph: &ConstraintGraph) -> Option<Vec<NodeId>> {
    // Max edge weight per ordered node pair.
    let mut best: HashMap<(usize, usize), TimeSpan> = HashMap::new();
    for (_, e) in graph.edges() {
        let key = (e.from().index(), e.to().index());
        best.entry(key)
            .and_modify(|w| *w = (*w).max(e.weight()))
            .or_insert_with(|| e.weight());
    }
    for (&(a, b), &w) in &best {
        if a == b && w > TimeSpan::ZERO {
            return Some(vec![node_by_index(a)]);
        }
        if a < b {
            if let Some(&back) = best.get(&(b, a)) {
                if w + back > TimeSpan::ZERO {
                    return Some(vec![node_by_index(a), node_by_index(b)]);
                }
            }
        }
    }
    None
}

fn node_by_index(i: usize) -> NodeId {
    if i == 0 {
        NodeId::ANCHOR
    } else {
        pas_graph::TaskId::from_index(i - 1).node()
    }
}

/// Renders `a -(min +5s)-> b -(max -3s)-> a` for a node loop, picking
/// the heaviest edge between each consecutive pair. Tries the node
/// order as given and reversed (the Bellman–Ford extraction walks
/// predecessor pointers, which reverses edge direction).
fn render_chain(
    graph: &ConstraintGraph,
    nodes: &[NodeId],
) -> Option<(String, TimeSpan, Vec<EdgeId>)> {
    if nodes.is_empty() {
        return None;
    }
    let reversed: Vec<NodeId> = nodes.iter().rev().copied().collect();
    try_chain(graph, nodes).or_else(|| try_chain(graph, &reversed))
}

fn try_chain(graph: &ConstraintGraph, nodes: &[NodeId]) -> Option<(String, TimeSpan, Vec<EdgeId>)> {
    let mut text = node_label(graph, nodes[0]);
    let mut total = TimeSpan::ZERO;
    let mut ids = Vec::new();
    for i in 0..nodes.len() {
        let from = nodes[i];
        let to = nodes[(i + 1) % nodes.len()];
        let (id, e) = graph
            .out_edges(from)
            .filter(|(_, e)| e.to() == to)
            .max_by_key(|(_, e)| e.weight())?;
        total += e.weight();
        ids.push(id);
        text.push_str(&format!(
            " -({} {})-> {}",
            kind_tag(e.kind()),
            signed(e.weight()),
            node_label(graph, to),
        ));
    }
    if total > TimeSpan::ZERO {
        Some((text, total, ids))
    } else {
        None
    }
}

/// The cycle-free timing checks: PAS011 redundant edges and PAS012
/// deadline reachability.
pub(super) fn check(
    graph: &ConstraintGraph,
    spans: &SpanTable,
    asap: &LongestPaths,
    deadline: Option<Time>,
    report: &mut LintReport,
) {
    check_redundant_edges(graph, spans, report);
    if let Some(deadline) = deadline {
        check_deadline(graph, spans, asap, deadline, report);
    }
}

/// PAS011 — a user separation strictly dominated by another path. The
/// graph is cycle-free here, so a strictly longer `from → to` path
/// cannot itself ride through the dominated edge.
fn check_redundant_edges(graph: &ConstraintGraph, spans: &SpanTable, report: &mut LintReport) {
    let mut by_source: HashMap<NodeId, Vec<(EdgeId, TimeSpan, NodeId, EdgeKind)>> = HashMap::new();
    for (id, e) in graph.edges() {
        if matches!(e.kind(), EdgeKind::MinSeparation | EdgeKind::MaxSeparation)
            && e.from() != e.to()
        {
            by_source
                .entry(e.from())
                .or_default()
                .push((id, e.weight(), e.to(), e.kind()));
        }
    }
    for (source, edges) in by_source {
        let Ok(paths) = single_source_longest_paths(graph, source) else {
            return; // unreachable: cycles were handled upstream
        };
        for (id, weight, to, kind) in edges {
            let Some(dist) = paths.distance(to) else {
                continue;
            };
            if dist > weight {
                report.push(
                    Diagnostic::new(
                        LintCode::RedundantEdge,
                        format!(
                            "{} constraint {} -> {} (weight {}) is redundant: other constraints already force a separation of {}",
                            kind_tag(kind),
                            node_label(graph, source),
                            node_label(graph, to),
                            signed(weight),
                            signed(dist),
                        ),
                    )
                    .with_span(spans.edge(id), "dominated constraint")
                    .with_suggestion("delete it, or tighten it if it was meant to bind")
                    .with_fix(spans.edge(id), "", Applicability::MachineApplicable),
                );
            }
        }
    }
}

/// PAS012 — the declared deadline is shorter than the critical path,
/// so *no* time-valid schedule can meet it. The witness chain is the
/// critical path itself.
fn check_deadline(
    graph: &ConstraintGraph,
    spans: &SpanTable,
    asap: &LongestPaths,
    deadline: Time,
    report: &mut LintReport,
) {
    let Some((last, finish)) = graph
        .tasks()
        .map(|(t, task)| (t, asap.start_time(t) + task.delay()))
        .max_by_key(|&(t, f)| (f, t))
    else {
        return;
    };
    if finish <= deadline {
        return;
    }
    let chain = critical_chain(graph, asap, last.node());
    let names: Vec<String> = chain.iter().map(|&n| node_label(graph, n)).collect();
    report.push(
        Diagnostic::new(
            LintCode::DeadlineUnreachable,
            format!(
                "deadline {deadline} is unreachable: the critical path {} needs {finish}",
                names.join(" -> "),
            ),
        )
        .with_span(spans.deadline, "deadline declared here")
        .with_span(
            chain
                .last()
                .and_then(|n| n.task())
                .and_then(|t| spans.task(t)),
            "critical path ends here",
        )
        .with_suggestion(format!(
            "extend the deadline to at least {finish} or shorten the chain"
        ))
        .with_fix(
            spans.deadline,
            format!("deadline {finish}"),
            Applicability::MaybeIncorrect,
        ),
    );
}

/// Walks ASAP predecessor structure back from `target`: repeatedly
/// pick an in-edge whose source distance plus weight equals the node's
/// distance. Terminates at the anchor (or after `num_nodes` hops as a
/// safety net).
fn critical_chain(graph: &ConstraintGraph, asap: &LongestPaths, target: NodeId) -> Vec<NodeId> {
    let mut chain = vec![target];
    let mut current = target;
    for _ in 0..graph.num_nodes() {
        if current.is_anchor() {
            break;
        }
        let here = asap.distance(current).unwrap_or(TimeSpan::ZERO);
        let Some(prev) = graph
            .in_edges(current)
            .filter(|(_, e)| e.from() != current)
            .find(|(_, e)| {
                asap.distance(e.from())
                    .is_some_and(|d| d + e.weight() == here)
            })
            .map(|(_, e)| e.from())
        else {
            break;
        };
        chain.push(prev);
        current = prev;
    }
    chain.reverse();
    // Drop the anchor from the rendered chain; it adds no information.
    if chain.first().is_some_and(|n| n.is_anchor()) && chain.len() > 1 {
        chain.remove(0);
    }
    chain
}
