//! Resource analysis: same-resource task pairs whose separations make
//! serialization impossible.

use super::{forced_overlap, task_label};
use crate::diag::{Diagnostic, LintCode, LintReport};
use crate::span::SpanTable;
use pas_graph::longest_path::LongestPaths;
use pas_graph::{ConstraintGraph, TaskId};

/// PAS030 — two tasks share a resource, yet the min/max separations
/// confine their start-time difference entirely inside the overlap
/// band. No time-valid schedule exists, so the timing stage (Fig. 3)
/// must fail: it can only *add* serialization edges, never relax the
/// window that causes the clash.
pub(super) fn check(
    graph: &ConstraintGraph,
    spans: &SpanTable,
    pairwise: &[LongestPaths],
    report: &mut LintReport,
) {
    let tasks: Vec<TaskId> = graph.task_ids().collect();
    for (i, &u) in tasks.iter().enumerate() {
        for &v in &tasks[i + 1..] {
            if !graph.same_resource(u, v) {
                continue;
            }
            if forced_overlap(graph, pairwise, u, v) {
                let resource = graph.resource(graph.task(u).resource()).name();
                report.push(
                    Diagnostic::new(
                        LintCode::ForcedResourceOverlap,
                        format!(
                            "tasks {} and {} share resource \"{resource}\" but their separations force them to overlap",
                            task_label(graph, u),
                            task_label(graph, v),
                        ),
                    )
                    .with_span(spans.task(u), "first task")
                    .with_span(spans.task(v), "second task")
                    .with_suggestion(format!(
                        "widen the window between them to at least {} (one task's delay) or move one to another resource",
                        graph.task(u).delay().min(graph.task(v).delay()),
                    )),
                );
            }
        }
    }
}
