//! Structural sanity: findings that need no path analysis at all.

use super::task_label;
use crate::diag::{Applicability, Diagnostic, LintCode, LintReport, Severity};
use crate::span::SpanTable;
use pas_core::Problem;
use pas_graph::units::{Power, TimeSpan};
use pas_graph::EdgeKind;
use std::collections::HashMap;

pub(super) fn check(problem: &Problem, spans: &SpanTable, report: &mut LintReport) {
    let graph = problem.graph();
    let p_max = problem.constraints().p_max();
    let background = problem.background_power();
    let budgeted = p_max != Power::MAX;

    // PAS005: the background draw alone busts the budget — every
    // instant of any schedule spikes, independent of task placement.
    if budgeted && graph.num_tasks() > 0 && background > p_max {
        report.push(
            Diagnostic::new(
                LintCode::BackgroundOverBudget,
                format!("background draw {background} alone exceeds the {p_max} budget"),
            )
            .with_span(spans.background, "background declared here")
            .with_span(spans.pmax, "budget declared here")
            .with_suggestion(format!(
                "raise pmax above {background} or lower the background draw"
            )),
        );
    }

    for (t, task) in graph.tasks() {
        // PAS006: the model requires d(v) ≥ 1 s; zero-length tasks
        // degenerate the half-open interval logic and negative ones
        // run backwards in time.
        if task.delay() <= TimeSpan::ZERO {
            report.push(
                Diagnostic::new(
                    LintCode::NonPositiveDelay,
                    format!(
                        "task {} has non-positive delay {}",
                        task_label(graph, t),
                        task.delay()
                    ),
                )
                .with_span(spans.task(t), "declared here")
                .with_suggestion("give the task a delay of at least 1s"),
            );
        }

        // PAS001: the task can never run without spiking.
        if budgeted && task.power().saturating_add(background) > p_max {
            let mut d = Diagnostic::new(
                LintCode::TaskOverBudget,
                if background > Power::ZERO {
                    format!(
                        "task {} draws {} on top of the {background} background, exceeding the {p_max} budget whenever it runs",
                        task_label(graph, t),
                        task.power(),
                    )
                } else {
                    format!(
                        "task {} draws {}, exceeding the {p_max} budget whenever it runs",
                        task_label(graph, t),
                        task.power(),
                    )
                },
            )
            .with_span(spans.task(t), "declared here")
            .with_span(spans.pmax, "budget declared here");
            d = d.with_suggestion(format!(
                "lower p({}) below {} or raise pmax",
                graph.task(t).name(),
                p_max - background,
            ));
            report.push(d);
        }
    }

    // PAS004: a resource nothing runs on is usually a typo in a
    // `task … on …` clause.
    for (r, resource) in graph.resources() {
        if graph.tasks_on(r).next().is_none() {
            report.push(
                Diagnostic::new(
                    LintCode::DanglingResource,
                    format!("resource \"{}\" has no tasks mapped to it", resource.name()),
                )
                .with_span(spans.resource(r), "declared here")
                .with_suggestion("map a task onto it or delete the declaration"),
            );
        }
    }

    // PAS002 self-loops and PAS003 exact duplicates.
    let mut seen: HashMap<(u32, u32, EdgeKind, i64), pas_graph::EdgeId> = HashMap::new();
    for (id, e) in graph.edges() {
        if e.from() == e.to() {
            let positive = e.weight() > TimeSpan::ZERO;
            let mut d = Diagnostic::new(
                LintCode::SelfLoop,
                format!(
                    "constraint edge loops {0} -> {0} with weight {1}{2}",
                    super::node_label(graph, e.from()),
                    super::signed(e.weight()),
                    if positive {
                        " — a one-node positive cycle"
                    } else {
                        " — the constraint is vacuous"
                    },
                ),
            )
            .with_span(spans.edge(id), "declared here")
            .with_suggestion("remove the self-referential constraint");
            if !positive {
                d = d.with_severity(Severity::Warning);
            }
            report.push(d);
            continue;
        }
        let key = (
            e.from().index() as u32,
            e.to().index() as u32,
            e.kind(),
            e.weight().as_secs(),
        );
        if let Some(first) = seen.get(&key) {
            report.push(
                Diagnostic::new(
                    LintCode::DuplicateEdge,
                    format!(
                        "duplicate {} constraint {} -> {} (weight {})",
                        e.kind(),
                        super::node_label(graph, e.from()),
                        super::node_label(graph, e.to()),
                        super::signed(e.weight()),
                    ),
                )
                .with_span(spans.edge(id), "duplicate here")
                .with_span(spans.edge(*first), "first declared here")
                .with_suggestion("delete one of the two identical constraints")
                .with_fix(spans.edge(id), "", Applicability::MachineApplicable),
            );
        } else {
            seen.insert(key, id);
        }
    }
}
