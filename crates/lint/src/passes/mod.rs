//! The static passes, grouped the way the issue groups them:
//! [`structural`] sanity, [`timing`] analysis, [`power`] analysis and
//! [`resource`] analysis.
//!
//! All passes are pure functions of the [`Problem`]; the shared
//! all-pairs longest-path relaxation lives here because both the
//! power and resource passes consume it.

mod interval;
mod power;
mod resource;
mod structural;
mod timing;

use crate::diag::LintReport;
use crate::span::SpanTable;
use pas_core::{Problem, Ratio};
use pas_graph::longest_path::{single_source_longest_paths, LongestPaths};
use pas_graph::units::{Time, TimeSpan};
use pas_graph::{ConstraintGraph, NodeId, TaskId};

/// Tunables for the analyzer.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Deadline used by the deadline-relative passes (`PAS012`,
    /// `PAS021`). `None` falls back to the problem's own declared
    /// deadline; if neither exists those passes are skipped.
    pub deadline: Option<Time>,
    /// `PAS022` warns when the static utilization upper bound falls
    /// below this ratio. Default `1/2`.
    pub utilization_warn_threshold: Ratio,
    /// The quadratic pairwise/window passes (`PAS020`, `PAS030`,
    /// `PAS040`, `PAS041`) are skipped above this task count to keep
    /// linting `O(V·E)`-ish on huge graphs. Default `1024`.
    pub max_pairwise_tasks: usize,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            deadline: None,
            utilization_warn_threshold: Ratio::new(1, 2),
            max_pairwise_tasks: 1024,
        }
    }
}

/// Runs every pass with default configuration and no source spans.
///
/// This is the entry point the scheduling pipeline's guard stage uses
/// on programmatically built problems.
pub fn lint(problem: &Problem) -> LintReport {
    lint_problem(problem, &SpanTable::empty(), &LintConfig::default())
}

/// Runs every pass, resolving graph entities to source spans through
/// `spans`.
pub fn lint_problem(problem: &Problem, spans: &SpanTable, config: &LintConfig) -> LintReport {
    let mut report = LintReport::new();
    let deadline = config.deadline.or_else(|| problem.deadline());
    structural::check(problem, spans, &mut report);

    let graph = problem.graph();
    match single_source_longest_paths(graph, NodeId::ANCHOR) {
        Err(cycle) => timing::report_positive_cycle(graph, spans, &cycle, &mut report),
        Ok(asap) => {
            timing::check(graph, spans, &asap, deadline, &mut report);
            if graph.num_tasks() <= config.max_pairwise_tasks {
                let pairwise = pairwise_paths(graph);
                resource::check(graph, spans, &pairwise, &mut report);
                power::check_forced_overlap(problem, spans, &pairwise, &mut report);
            }
            power::check_windows(problem, spans, &asap, deadline, &mut report);
            power::check_utilization(problem, spans, config, &asap, &mut report);
            interval::check(problem, spans, deadline, config, &mut report);
        }
    }

    report.sort();
    report
}

/// Longest paths from every task node; `paths[u.index()]` answers
/// "how much later than `u` must any other task start?".
///
/// Only called after the anchor-rooted pass proved the graph free of
/// positive cycles, so the per-task passes cannot fail.
fn pairwise_paths(graph: &ConstraintGraph) -> Vec<LongestPaths> {
    graph
        .task_ids()
        .map(|t| {
            single_source_longest_paths(graph, t.node())
                .expect("positive cycles were ruled out by the anchor pass")
        })
        .collect()
}

/// `true` when the separation system alone forces `u` and `v` to
/// execute simultaneously at some instant in *every* time-valid
/// schedule.
///
/// With `L(a,b)` the longest-path distance between task nodes, the
/// feasible start-time difference `x = σ(v) − σ(u)` is confined to
/// `[L(u,v), −L(v,u)]`; the pair overlaps for a given `x` iff
/// `−d(v) < x < d(u)`, so overlap is *forced* iff the whole feasible
/// interval sits strictly inside the overlap band.
fn forced_overlap(
    graph: &ConstraintGraph,
    pairwise: &[LongestPaths],
    u: TaskId,
    v: TaskId,
) -> bool {
    let (lo, hi) = match (
        pairwise[u.index()].distance(v.node()),
        pairwise[v.index()].distance(u.node()),
    ) {
        (Some(lo), Some(rev)) => (lo, -rev),
        _ => return false, // a side is unconstrained: overlap avoidable
    };
    let du = graph.task(u).delay();
    let dv = graph.task(v).delay();
    hi < du && lo > -dv
}

/// `"name"`-quoted task label for messages.
fn task_label(graph: &ConstraintGraph, t: TaskId) -> String {
    format!("\"{}\"", graph.task(t).name())
}

/// Node label: the quoted task name, or `anchor`.
fn node_label(graph: &ConstraintGraph, n: NodeId) -> String {
    match n.task() {
        Some(t) => task_label(graph, t),
        None => "anchor".to_string(),
    }
}

/// Latest finish of the ASAP schedule — the shortest possible
/// makespan `τ_min` of any time-valid schedule.
fn critical_path_finish(graph: &ConstraintGraph, asap: &LongestPaths) -> Time {
    graph
        .tasks()
        .map(|(t, task)| asap.start_time(t) + task.delay())
        .max()
        .unwrap_or(Time::ZERO)
}

/// Sign-aware `TimeSpan` display (`+5s` / `-3s`) for constraint
/// chains.
fn signed(span: TimeSpan) -> String {
    if span >= TimeSpan::ZERO {
        format!("+{span}")
    } else {
        span.to_string()
    }
}
