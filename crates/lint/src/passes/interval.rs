//! The deep abstract-interpretation pass: joint ASAP/ALAP interval
//! windows propagated over the whole constraint graph
//! ([`propagate_windows`]), interpreted through per-window energy and
//! resource-demand envelopes.
//!
//! Emits the `PAS04x` family — `PAS040` energy-infeasible window,
//! `PAS041` demand-over-capacity interval packing, `PAS042`
//! bound-tightened deadline miss — and **every** diagnostic carries a
//! [`Certificate`] that the independent zero-trust checker
//! ([`verify_certificate`]) validated before emission. A finding
//! that cannot be certified is dropped, so a `PAS04x` report is
//! never a false positive by construction.
//!
//! All three codes are deadline-relative (like `PAS012`/`PAS021`):
//! they prove the declared deadline unreachable, not that the
//! schedulers — which never see the deadline — must fail.

use crate::certificate::{
    mandatory_overlap, verify_certificate, Certificate, MakespanBound, StartClaim, WindowClaim,
};
use crate::diag::{Applicability, Diagnostic, LintCode, LintReport};
use crate::span::SpanTable;
use crate::LintConfig;
use pas_core::Problem;
use pas_graph::units::{Power, Time, TimeSpan};
use pas_graph::window::{propagate_windows, TaskWindows};
use pas_graph::{ConstraintGraph, NodeId, TaskId};

/// How many distinct window boundaries the quadratic `PAS040`/`PAS041`
/// enumerations sample per side (stride-sampled when there are more).
const MAX_BOUNDARIES: usize = 64;

pub(super) fn check(
    problem: &Problem,
    spans: &SpanTable,
    deadline: Option<Time>,
    config: &LintConfig,
    report: &mut LintReport,
) {
    let graph = problem.graph();
    let Some(deadline) = deadline else {
        return;
    };
    if graph.num_tasks() == 0 {
        return;
    }
    // Window propagation fails only on positive cycles (PAS010's
    // domain) or empty windows under the deadline; nothing to
    // interpret either way.
    let Ok(windows) = propagate_windows(graph, deadline) else {
        return;
    };
    // When the critical path itself overshoots, PAS012 already
    // explains the miss with a cheaper witness; the deep pass only
    // speaks where the bound genuinely *tightens* plain reachability.
    let crit = graph
        .tasks()
        .map(|(t, task)| windows.asap(t) + task.delay())
        .max()
        .unwrap_or(Time::ZERO);
    if crit > deadline {
        return;
    }

    check_tightened_deadline(problem, spans, &windows, deadline, report);
    if graph.num_tasks() <= config.max_pairwise_tasks {
        check_energy_windows(problem, spans, &windows, deadline, report);
        check_resource_packing(problem, spans, &windows, deadline, report);
    }
}

/// Window bound of a node: the anchor is pinned at 0.
fn node_asap(windows: &TaskWindows, n: NodeId) -> Time {
    n.task().map_or(Time::ZERO, |t| windows.asap(t))
}

fn node_alap(windows: &TaskWindows, n: NodeId) -> Time {
    n.task().map_or(Time::ZERO, |t| windows.alap(t))
}

/// Walks the fixpoint's binding in-edges from `task` back to a node
/// whose `asap` is 0 (the `σ ≥ 0` axiom), yielding a path that
/// *derives* `σ(task) ≥ asap(task)`. At the fixpoint every positive
/// bound has an achieving in-edge, so the walk only fails on a
/// zero-weight binding cycle — in which case the claim is dropped.
fn asap_witness(
    graph: &ConstraintGraph,
    windows: &TaskWindows,
    task: TaskId,
) -> Option<Vec<NodeId>> {
    let mut path = vec![task.node()];
    let mut cur = task.node();
    let mut fuel = graph.num_nodes() + 1;
    while node_asap(windows, cur) > Time::ZERO {
        fuel = fuel.checked_sub(1)?;
        let here = node_asap(windows, cur);
        let from = graph
            .in_edges(cur)
            .filter(|(_, e)| e.from() != cur)
            .find(|(_, e)| node_asap(windows, e.from()) + e.weight() == here)
            .map(|(_, e)| e.from())?;
        cur = from;
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// Walks the fixpoint's binding out-edges from `task` forward to a
/// node whose `alap` is pinned by an axiom (a task at `D − d`, or the
/// anchor at 0), yielding a path that derives `σ(task) ≤ alap(task)`.
fn alap_witness(
    graph: &ConstraintGraph,
    windows: &TaskWindows,
    deadline: Time,
    task: TaskId,
) -> Option<Vec<NodeId>> {
    let mut path = vec![task.node()];
    let mut cur = task.node();
    let mut fuel = graph.num_nodes() + 1;
    loop {
        match cur.task() {
            None => return Some(path), // anchor: σ = 0 axiom
            Some(t) => {
                if windows.alap(t) == deadline - graph.task(t).delay() {
                    return Some(path); // deadline axiom binds here
                }
            }
        }
        fuel = fuel.checked_sub(1)?;
        let here = node_alap(windows, cur);
        let to = graph
            .out_edges(cur)
            .filter(|(_, e)| e.to() != cur)
            .find(|(_, e)| node_alap(windows, e.to()) - e.weight() == here)
            .map(|(_, e)| e.to())?;
        cur = to;
        path.push(cur);
    }
}

/// Full window claim (both obligations) for one task.
fn window_claim(
    graph: &ConstraintGraph,
    windows: &TaskWindows,
    deadline: Time,
    task: TaskId,
) -> Option<WindowClaim> {
    Some(WindowClaim {
        task,
        task_name: graph.task(task).name().to_string(),
        asap: windows.asap(task),
        alap: windows.alap(task),
        asap_path: asap_witness(graph, windows, task)?,
        alap_path: alap_witness(graph, windows, deadline, task)?,
    })
}

/// At most [`MAX_BOUNDARIES`] evenly strided values from a sorted,
/// deduplicated boundary list, always keeping the extremes.
fn sample_boundaries(mut values: Vec<Time>) -> Vec<Time> {
    values.sort_unstable();
    values.dedup();
    if values.len() <= MAX_BOUNDARIES {
        return values;
    }
    let last = *values.last().expect("non-empty");
    let stride = values.len().div_ceil(MAX_BOUNDARIES);
    let mut sampled: Vec<Time> = values.into_iter().step_by(stride).collect();
    if sampled.last() != Some(&last) {
        sampled.push(last);
    }
    sampled
}

fn fmt_joules(mws: i128) -> String {
    format!("{:.1} J", mws as f64 / 1000.0)
}

/// PAS040 — sweep candidate windows `[a, b)` spanned by ASAP starts
/// and ALAP finishes; inside each, every task must run for its
/// mandatory overlap, so the summed mandatory energy must fit the
/// budget headroom times the window width. Reports the most violated
/// window.
fn check_energy_windows(
    problem: &Problem,
    spans: &SpanTable,
    windows: &TaskWindows,
    deadline: Time,
    report: &mut LintReport,
) {
    let graph = problem.graph();
    let p_max = problem.constraints().p_max();
    if p_max == Power::MAX {
        return;
    }
    let headroom = (p_max - problem.background_power()).as_milliwatts().max(0) as i128;
    let tasks: Vec<TaskId> = graph.task_ids().collect();
    let starts = sample_boundaries(tasks.iter().map(|&t| windows.asap(t)).collect());
    let ends = sample_boundaries(
        tasks
            .iter()
            .map(|&t| windows.alap(t) + graph.task(t).delay())
            .collect(),
    );

    let mut best: Option<(Time, Time, i128, i128)> = None;
    for &a in &starts {
        for &b in &ends {
            if b <= a {
                continue;
            }
            let capacity = headroom * (b - a).as_secs() as i128;
            let energy: i128 = tasks
                .iter()
                .map(|&t| {
                    let m = mandatory_overlap(
                        windows.asap(t),
                        windows.alap(t),
                        graph.task(t).delay(),
                        a,
                        b,
                    );
                    m as i128 * graph.task(t).power().as_milliwatts() as i128
                })
                .sum();
            if energy > capacity && best.map_or(true, |(_, _, e, c)| energy - capacity > e - c) {
                best = Some((a, b, energy, capacity));
            }
        }
    }
    let Some((a, b, energy, capacity)) = best else {
        return;
    };

    let mut claims = Vec::new();
    for &t in &tasks {
        if mandatory_overlap(
            windows.asap(t),
            windows.alap(t),
            graph.task(t).delay(),
            a,
            b,
        ) > 0
        {
            let Some(claim) = window_claim(graph, windows, deadline, t) else {
                return; // unwitnessable claim: stay silent, never unsound
            };
            claims.push(claim);
        }
    }
    let cert = Certificate::EnergyWindow {
        deadline,
        window: (a, b),
        claims,
        mandatory_energy_mws: energy,
        capacity_mws: capacity,
    };
    if verify_certificate(problem, &cert).is_err() {
        return;
    }
    let culprits = culprit_list(&cert);
    let mut d = Diagnostic::new(
        LintCode::EnergyInfeasibleWindow,
        format!(
            "meeting deadline {deadline} forces {} of mandatory work by {culprits} into the window [{a}, {b}), but the {p_max} budget can only deliver {} there",
            fmt_joules(energy),
            fmt_joules(capacity),
        ),
    )
    .with_span(spans.deadline, "deadline declared here")
    .with_span(spans.pmax, "budget declared here");
    if let Certificate::EnergyWindow { claims, .. } = &cert {
        for c in claims {
            d = d.with_span(spans.task(c.task), "mandatory inside the window");
        }
    }
    report.push(
        d.with_suggestion("extend the deadline, raise pmax, or spread the tasks' windows apart")
            .with_certificate(cert),
    );
}

/// PAS041 — per exclusive resource, the mandatory execution demand
/// inside a window cannot exceed the window's width. Reports the most
/// violated window per resource.
fn check_resource_packing(
    problem: &Problem,
    spans: &SpanTable,
    windows: &TaskWindows,
    deadline: Time,
    report: &mut LintReport,
) {
    let graph = problem.graph();
    for (r, resource) in graph.resources() {
        let tasks: Vec<TaskId> = graph.tasks_on(r).collect();
        if tasks.len() < 2 {
            continue;
        }
        let starts = sample_boundaries(tasks.iter().map(|&t| windows.asap(t)).collect());
        let ends = sample_boundaries(
            tasks
                .iter()
                .map(|&t| windows.alap(t) + graph.task(t).delay())
                .collect(),
        );
        let mut best: Option<(Time, Time, i64, i64)> = None;
        for &a in &starts {
            for &b in &ends {
                if b <= a {
                    continue;
                }
                let capacity = (b - a).as_secs();
                let demand: i64 = tasks
                    .iter()
                    .map(|&t| {
                        mandatory_overlap(
                            windows.asap(t),
                            windows.alap(t),
                            graph.task(t).delay(),
                            a,
                            b,
                        )
                    })
                    .sum();
                if demand > capacity
                    && best.map_or(true, |(_, _, de, ca)| demand - capacity > de - ca)
                {
                    best = Some((a, b, demand, capacity));
                }
            }
        }
        let Some((a, b, demand, capacity)) = best else {
            continue;
        };

        let mut claims = Vec::new();
        let mut witnessable = true;
        for &t in &tasks {
            if mandatory_overlap(
                windows.asap(t),
                windows.alap(t),
                graph.task(t).delay(),
                a,
                b,
            ) > 0
            {
                match window_claim(graph, windows, deadline, t) {
                    Some(claim) => claims.push(claim),
                    None => {
                        witnessable = false;
                        break;
                    }
                }
            }
        }
        if !witnessable {
            continue;
        }
        let cert = Certificate::ResourcePacking {
            deadline,
            resource: r,
            resource_name: resource.name().to_string(),
            window: (a, b),
            claims,
            demand_secs: demand,
            capacity_secs: capacity,
        };
        if verify_certificate(problem, &cert).is_err() {
            continue;
        }
        let culprits = culprit_list(&cert);
        let mut d = Diagnostic::new(
            LintCode::DemandOverCapacity,
            format!(
                "meeting deadline {deadline} packs {demand}s of mandatory work by {culprits} onto resource \"{}\" inside the window [{a}, {b}), which only holds {capacity}s",
                resource.name(),
            ),
        )
        .with_span(spans.deadline, "deadline declared here")
        .with_span(spans.resource(r), "saturated resource");
        if let Certificate::ResourcePacking { claims, .. } = &cert {
            for c in claims {
                d = d.with_span(spans.task(c.task), "mandatory inside the window");
            }
        }
        report.push(
            d.with_suggestion(
                "extend the deadline or move one of the packed tasks to another resource",
            )
            .with_certificate(cert),
        );
    }
}

/// PAS042 — admissible makespan lower bounds (total energy over
/// budget headroom; per-resource release + serial demand) that exceed
/// the deadline even though the critical path fits. The strongest
/// violated bound wins.
fn check_tightened_deadline(
    problem: &Problem,
    spans: &SpanTable,
    windows: &TaskWindows,
    deadline: Time,
    report: &mut LintReport,
) {
    let graph = problem.graph();
    let p_max = problem.constraints().p_max();
    let mut best: Option<(Time, MakespanBound)> = None;

    if p_max != Power::MAX {
        let budget = (p_max - problem.background_power()).as_milliwatts();
        if budget > 0 {
            let energy: i128 = graph
                .tasks()
                .map(|(_, t)| t.delay().as_secs() as i128 * t.power().as_milliwatts() as i128)
                .sum();
            let lb_secs =
                crate::certificate::ceil_div(energy, budget as i128).min(i64::MAX as i128) as i64;
            let lb = Time::from_secs(lb_secs);
            if lb > deadline {
                best = Some((
                    lb,
                    MakespanBound::Energy {
                        total_energy_mws: energy,
                        budget_mw: budget,
                        lower_bound: lb,
                    },
                ));
            }
        }
    }

    for (r, resource) in graph.resources() {
        let tasks: Vec<TaskId> = graph.tasks_on(r).collect();
        if tasks.is_empty() {
            continue;
        }
        let release = tasks
            .iter()
            .map(|&t| windows.asap(t))
            .min()
            .expect("non-empty");
        let serial: i64 = tasks.iter().map(|&t| graph.task(t).delay().as_secs()).sum();
        let lb = release + TimeSpan::from_secs(serial);
        if lb <= deadline || best.as_ref().is_some_and(|&(b, _)| lb <= b) {
            continue;
        }
        let mut claims = Vec::new();
        let mut witnessable = true;
        for &t in &tasks {
            match asap_witness(graph, windows, t) {
                Some(path) => claims.push(StartClaim {
                    task: t,
                    task_name: graph.task(t).name().to_string(),
                    lower_bound: windows.asap(t),
                    path,
                }),
                None => {
                    witnessable = false;
                    break;
                }
            }
        }
        if !witnessable {
            continue;
        }
        best = Some((
            lb,
            MakespanBound::ResourceSerial {
                resource: r,
                resource_name: resource.name().to_string(),
                release,
                release_claims: claims,
                serial_secs: serial,
                lower_bound: lb,
            },
        ));
    }

    let Some((lb, bound)) = best else {
        return;
    };
    let cert = Certificate::TightenedDeadline { deadline, bound };
    if verify_certificate(problem, &cert).is_err() {
        return;
    }
    let detail = match &cert {
        Certificate::TightenedDeadline {
            bound: MakespanBound::Energy {
                total_energy_mws, ..
            },
            ..
        } => format!(
            "total task energy {} cannot flow through the {p_max} budget any faster",
            fmt_joules(*total_energy_mws),
        ),
        Certificate::TightenedDeadline {
            bound:
                MakespanBound::ResourceSerial {
                    resource_name,
                    release,
                    serial_secs,
                    ..
                },
            ..
        } => format!(
            "resource \"{resource_name}\" must run {serial_secs}s back-to-back starting no earlier than {release}",
        ),
        _ => unreachable!("constructed as TightenedDeadline above"),
    };
    report.push(
        Diagnostic::new(
            LintCode::TightenedDeadlineMiss,
            format!(
                "deadline {deadline} is unreachable even though the critical path fits: no schedule finishes before {lb} — {detail}",
            ),
        )
        .with_span(spans.deadline, "deadline declared here")
        .with_suggestion(format!("extend the deadline to at least {lb}"))
        .with_fix(
            spans.deadline,
            format!("deadline {lb}"),
            Applicability::MaybeIncorrect,
        )
        .with_certificate(cert),
    );
}

/// Comma-joined quoted task names from a certificate's claims, capped
/// at four with an ellipsis.
fn culprit_list(cert: &Certificate) -> String {
    let names: Vec<&str> = match cert {
        Certificate::EnergyWindow { claims, .. } | Certificate::ResourcePacking { claims, .. } => {
            claims.iter().map(|c| c.task_name.as_str()).collect()
        }
        Certificate::TightenedDeadline { .. } => Vec::new(),
    };
    let mut out: Vec<String> = names.iter().take(4).map(|n| format!("\"{n}\"")).collect();
    if names.len() > 4 {
        out.push(format!("… ({} tasks)", names.len()));
    }
    out.join(", ")
}
