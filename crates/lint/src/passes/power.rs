//! Power analysis: forced-overlap budget violations, ASAP/ALAP
//! mandatory-interval profile bounds, and the static utilization
//! upper bound.

use super::{critical_path_finish, forced_overlap, task_label, LintConfig};
use crate::diag::{Diagnostic, LintCode, LintReport};
use crate::span::SpanTable;
use pas_core::{Problem, Ratio};
use pas_graph::alap::latest_start_times;
use pas_graph::longest_path::LongestPaths;
use pas_graph::units::{Power, Time};
use pas_graph::TaskId;

/// PAS020 — a pair of tasks (on *different* resources; same-resource
/// pairs are the harder error PAS030) whose separations force them to
/// run simultaneously while their summed draw busts the budget. Any
/// time-valid schedule therefore spikes, so the power stages must
/// fail.
pub(super) fn check_forced_overlap(
    problem: &Problem,
    spans: &SpanTable,
    pairwise: &[LongestPaths],
    report: &mut LintReport,
) {
    let graph = problem.graph();
    let p_max = problem.constraints().p_max();
    if p_max == Power::MAX {
        return;
    }
    let background = problem.background_power();
    let tasks: Vec<TaskId> = graph.task_ids().collect();
    for (i, &u) in tasks.iter().enumerate() {
        for &v in &tasks[i + 1..] {
            if graph.same_resource(u, v) {
                continue;
            }
            let combined = graph
                .task(u)
                .power()
                .saturating_add(graph.task(v).power())
                .saturating_add(background);
            if combined <= p_max {
                continue;
            }
            if forced_overlap(graph, pairwise, u, v) {
                report.push(
                    Diagnostic::new(
                        LintCode::ForcedOverlapPower,
                        format!(
                            "tasks {} ({}) and {} ({}) are forced to overlap by their separations, stacking {combined} against the {p_max} budget",
                            task_label(graph, u),
                            graph.task(u).power(),
                            task_label(graph, v),
                            graph.task(v).power(),
                        ),
                    )
                    .with_span(spans.task(u), "first task")
                    .with_span(spans.task(v), "second task")
                    .with_suggestion("widen the separation window between them so one can wait"),
                );
            }
        }
    }
}

/// PAS021 — under the declared deadline, every task must run
/// throughout its *mandatory interval* `[alap(v), asap(v)+d(v))`
/// whenever that interval is non-empty. Summing those intervals gives
/// a lower bound on the profile of every deadline-meeting schedule;
/// if the bound already exceeds `P_max`, the spec is infeasible
/// before any search.
pub(super) fn check_windows(
    problem: &Problem,
    spans: &SpanTable,
    asap: &LongestPaths,
    deadline: Option<Time>,
    report: &mut LintReport,
) {
    let graph = problem.graph();
    let p_max = problem.constraints().p_max();
    let (Some(deadline), true) = (deadline, p_max != Power::MAX) else {
        return;
    };
    // Infeasible deadline ⇒ PAS012 already fired; nothing to bound.
    let Ok(alap) = latest_start_times(graph, deadline) else {
        return;
    };

    let mut intervals: Vec<(TaskId, Time, Time)> = Vec::new();
    let mut events: Vec<(Time, bool, Power)> = Vec::new();
    for (t, task) in graph.tasks() {
        let start = alap.start_time(t);
        let end = asap.start_time(t) + task.delay();
        if start < end {
            intervals.push((t, start, end));
            events.push((start, true, task.power()));
            events.push((end, false, task.power()));
        }
    }
    // Ends (`false`) sort before starts (`true`) at equal times so
    // half-open intervals never double-count a boundary instant.
    events.sort_by_key(|&(t, is_start, _)| (t, is_start));
    let mut level = problem.background_power();
    let mut peak = level;
    let mut peak_at = Time::ZERO;
    for (t, is_start, p) in events {
        if is_start {
            level = level.saturating_add(p);
            if level > peak {
                peak = level;
                peak_at = t;
            }
        } else {
            level -= p;
        }
    }
    if peak <= p_max {
        return;
    }

    let culprits: Vec<String> = intervals
        .iter()
        .filter(|&&(_, s, e)| s <= peak_at && peak_at < e)
        .map(|&(t, _, _)| task_label(graph, t))
        .collect();
    let mut d = Diagnostic::new(
        LintCode::WindowOverload,
        format!(
            "meeting deadline {deadline} forces {} to run simultaneously at {peak_at}, stacking {peak} against the {p_max} budget",
            culprits.join(", "),
        ),
    )
    .with_span(spans.deadline, "deadline declared here")
    .with_span(spans.pmax, "budget declared here");
    for &(t, _, _) in intervals
        .iter()
        .filter(|&&(_, s, e)| s <= peak_at && peak_at < e)
    {
        d = d.with_span(spans.task(t), "mandatory at the peak");
    }
    report.push(d.with_suggestion("extend the deadline or reduce the overlapping tasks' power"));
}

/// PAS022 — static upper bound on the min-power utilization
/// `ρ_σ(P_min)` over *all* schedules:
///
/// ```text
/// ρ ≤ (bg·τ_min + Σ_v d(v)·min(p(v), P_min − bg)) / (P_min · τ_min)
/// ```
///
/// where `τ_min` is the critical-path makespan (the bound is
/// decreasing in the true makespan `τ ≥ τ_min`). A `P_min` whose
/// bound is below the configured threshold can never be well
/// utilized, whatever the scheduler does.
pub(super) fn check_utilization(
    problem: &Problem,
    spans: &SpanTable,
    config: &LintConfig,
    asap: &LongestPaths,
    report: &mut LintReport,
) {
    let graph = problem.graph();
    let p_min = problem.constraints().p_min();
    let background = problem.background_power();
    if p_min <= Power::ZERO || background >= p_min || graph.num_tasks() == 0 {
        return; // ρ is 1 by convention or by the background floor
    }
    let tau = critical_path_finish(graph, asap).since_origin().as_secs() as i128;
    if tau <= 0 {
        return;
    }
    let headroom = p_min - background;
    let capped_energy: i128 = graph
        .tasks()
        .map(|(_, task)| {
            task.delay().as_secs() as i128 * task.power().min(headroom).as_milliwatts() as i128
        })
        .sum();
    let num = background.as_milliwatts() as i128 * tau + capped_energy;
    let den = p_min.as_milliwatts() as i128 * tau;
    if num >= den {
        return; // bound is 1: nothing to warn about
    }
    let bound = Ratio::new(num, den);
    let thr = config.utilization_warn_threshold;
    // bound < threshold, compared exactly by cross-multiplication.
    if bound.numerator() * thr.denominator() < thr.numerator() * bound.denominator() {
        report.push(
            Diagnostic::new(
                LintCode::HopelessUtilization,
                format!(
                    "pmin {p_min} is hopeless: no schedule can use more than {:.0}% of the free power",
                    bound.to_percent(),
                ),
            )
            .with_span(spans.pmin, "pmin declared here")
            .with_suggestion(format!(
                "lower pmin towards the average demand (≈{}) or accept the wasted free power",
                Power::from_watts_milli((num / tau) as i64),
            )),
        );
    }
}
