//! Admissible lower bounds exported by the deep lint pass for
//! `pas-sched`'s exact branch-and-bound (the *bound-reuse contract*,
//! DESIGN.md §14).
//!
//! Everything here is a pure function of the constraint graph and the
//! power constraints, and every bound is **admissible**: it never
//! exceeds the optimum of any schedule the search could return. The
//! B&B may therefore prune with these bounds without changing which
//! schedule it finds (only how many nodes it explores to find it).

use pas_core::Problem;
use pas_graph::longest_path::single_source_longest_paths;
use pas_graph::units::{Power, Time, TimeSpan};
use pas_graph::{completion_tails, NodeId, ResourceId};

/// Aggregate execution demand pinned to one resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowDemand {
    /// The resource.
    pub resource: ResourceId,
    /// Earliest start any of its tasks can manage.
    pub release: Time,
    /// Total serial execution time of its tasks.
    pub demand: TimeSpan,
}

/// Lower bounds the deep lint pass proves about every feasible
/// schedule, consumed by the exact B&B as admissible pruning bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintBounds {
    /// No feasible schedule finishes before this instant. The max of
    /// the critical-path, energy and resource-serial bounds.
    pub makespan_lb: Time,
    /// Total task energy `Σ p(v)·d(v)` in milliwatt-seconds — a lower
    /// bound on the energy of every schedule.
    pub energy_lb_mws: i128,
    /// Per-resource release + serial demand, one entry per resource
    /// that hosts at least one task.
    pub per_window_demand: Vec<WindowDemand>,
    /// `tails[v]`: a lower bound on `finish(σ) − σ(v)` in every
    /// feasible schedule (see [`completion_tails`]).
    pub tails: Vec<TimeSpan>,
}

/// Computes [`LintBounds`] for `problem`.
///
/// Infeasible timing graphs (positive cycles) get trivial bounds —
/// the schedulers reject those before any bound is consulted.
pub fn lint_bounds(problem: &Problem) -> LintBounds {
    let graph = problem.graph();
    let Ok(asap) = single_source_longest_paths(graph, NodeId::ANCHOR) else {
        return LintBounds {
            makespan_lb: Time::ZERO,
            energy_lb_mws: 0,
            per_window_demand: Vec::new(),
            tails: Vec::new(),
        };
    };
    let tails = completion_tails(graph);

    // Critical path, strengthened by tails: finish ≥ σ(v) + tail(v)
    // ≥ asap(v) + tail(v) for every task v.
    let mut makespan_lb = Time::ZERO;
    for t in graph.task_ids() {
        makespan_lb = makespan_lb.max(asap.start_time(t) + tails[t.index()]);
    }

    // Energy: pushing Σ p·d through a P_max − background pipe needs
    // ⌈E / headroom⌉ seconds.
    let energy_lb_mws: i128 = graph
        .tasks()
        .map(|(_, t)| t.delay().as_secs() as i128 * t.power().as_milliwatts() as i128)
        .sum();
    let p_max = problem.constraints().p_max();
    if p_max != Power::MAX {
        let headroom = (p_max - problem.background_power()).as_milliwatts() as i128;
        if headroom > 0 {
            let lb = crate::certificate::ceil_div(energy_lb_mws, headroom);
            makespan_lb = makespan_lb.max(Time::from_secs(lb.min(i64::MAX as i128) as i64));
        }
    }

    // Resource-serial: tasks sharing an exclusive resource execute
    // back-to-back, no earlier than their common release.
    let mut per_window_demand = Vec::new();
    for (r, _) in graph.resources() {
        let mut release: Option<Time> = None;
        let mut demand = TimeSpan::ZERO;
        for t in graph.tasks_on(r) {
            let s = asap.start_time(t);
            release = Some(release.map_or(s, |cur| cur.min(s)));
            demand += graph.task(t).delay();
        }
        if let Some(release) = release {
            makespan_lb = makespan_lb.max(release + demand);
            per_window_demand.push(WindowDemand {
                resource: r,
                release,
                demand,
            });
        }
    }

    LintBounds {
        makespan_lb,
        energy_lb_mws,
        per_window_demand,
        tails,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_core::PowerConstraints;
    use pas_graph::{ConstraintGraph, Resource, ResourceKind, Task};

    fn chain_with_shared_resource() -> Problem {
        let mut g = ConstraintGraph::new();
        let cpu = g.add_resource(Resource::new("cpu", ResourceKind::Compute));
        let io = g.add_resource(Resource::new("io", ResourceKind::Other));
        let a = g.add_task(Task::new(
            "a",
            cpu,
            TimeSpan::from_secs(4),
            Power::from_watts(2),
        ));
        let b = g.add_task(Task::new(
            "b",
            cpu,
            TimeSpan::from_secs(4),
            Power::from_watts(2),
        ));
        let c = g.add_task(Task::new(
            "c",
            io,
            TimeSpan::from_secs(3),
            Power::from_watts(1),
        ));
        let _ = c;
        g.precedence(a, b);
        Problem::new("t", g, PowerConstraints::max_only(Power::from_watts(10)))
    }

    #[test]
    fn bounds_compose_critical_path_energy_and_resources() {
        let p = chain_with_shared_resource();
        let b = lint_bounds(&p);
        // Critical path a→b: 8 s; cpu serial: 0 + 8 s; energy
        // (2·4 + 2·4 + 1·3) = 19 W·s over 10 W headroom → 2 s.
        assert_eq!(b.makespan_lb, Time::from_secs(8));
        assert_eq!(b.energy_lb_mws, 19_000);
        assert_eq!(b.per_window_demand.len(), 2);
        assert_eq!(b.tails.len(), 3);
        assert_eq!(b.tails[0], TimeSpan::from_secs(8)); // a: 4 + 4
    }

    #[test]
    fn energy_bound_dominates_when_power_starved() {
        let mut g = ConstraintGraph::new();
        let r0 = g.add_resource(Resource::new("r0", ResourceKind::Compute));
        let r1 = g.add_resource(Resource::new("r1", ResourceKind::Compute));
        // Two parallel 10 s / 4 W tasks against 5 W: energy 80 W·s
        // needs 16 s even though the critical path is 10 s.
        g.add_task(Task::new(
            "a",
            r0,
            TimeSpan::from_secs(10),
            Power::from_watts(4),
        ));
        g.add_task(Task::new(
            "b",
            r1,
            TimeSpan::from_secs(10),
            Power::from_watts(4),
        ));
        let p = Problem::new("t", g, PowerConstraints::max_only(Power::from_watts(5)));
        assert_eq!(lint_bounds(&p).makespan_lb, Time::from_secs(16));
    }

    #[test]
    fn infeasible_graph_gets_trivial_bounds() {
        let mut g = ConstraintGraph::new();
        let r = g.add_resource(Resource::new("r", ResourceKind::Compute));
        let a = g.add_task(Task::new("a", r, TimeSpan::from_secs(1), Power::ZERO));
        let b = g.add_task(Task::new("b", r, TimeSpan::from_secs(1), Power::ZERO));
        g.min_separation(a, b, TimeSpan::from_secs(5));
        g.max_separation(a, b, TimeSpan::from_secs(2));
        let p = Problem::new("t", g, PowerConstraints::unconstrained());
        assert_eq!(lint_bounds(&p).makespan_lb, Time::ZERO);
    }
}
