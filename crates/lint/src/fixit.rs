//! Applying diagnostic fixes to PASDL source (`impacct-cli lint
//! --fix`).
//!
//! Only [`Applicability::MachineApplicable`] fixes are applied by
//! default; `MaybeIncorrect` ones (deadline bumps) need an explicit
//! opt-in. Callers are expected to round-trip the result through
//! `parse_problem_spanned` and re-lint, which the CLI does.

use crate::diag::{Applicability, Fix, LintReport};
use crate::span::Span;

/// What [`apply_fixes`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixOutcome {
    /// The rewritten source.
    pub source: String,
    /// Number of fixes applied.
    pub applied: usize,
    /// Number of eligible fixes skipped because they overlapped an
    /// already-applied edit.
    pub skipped: usize,
}

/// Applies the report's fixes to `source`, last-span-first so earlier
/// byte offsets stay valid. Overlapping fixes are applied
/// first-come-by-position; later overlappers are skipped and counted.
///
/// Empty replacements delete the whole statement line when the span
/// is alone on its line (the common case for constraint statements);
/// otherwise just the spanned bytes are removed.
pub fn apply_fixes(source: &str, report: &LintReport, include_maybe_incorrect: bool) -> FixOutcome {
    let mut fixes: Vec<&Fix> = report
        .diagnostics()
        .iter()
        .filter_map(|d| d.fix.as_ref())
        .filter(|f| include_maybe_incorrect || f.applicability == Applicability::MachineApplicable)
        .filter(|f| f.span.end <= source.len())
        .collect();
    fixes.sort_by_key(|f| (f.span.start, f.span.end));
    fixes.dedup_by_key(|f| (f.span.start, f.span.end, f.replacement.clone()));

    let mut out = source.to_string();
    let mut applied = 0usize;
    let mut skipped = 0usize;
    let mut low_water = usize::MAX; // start of the last applied edit
    for f in fixes.iter().rev() {
        let span = if f.replacement.is_empty() {
            line_extent(source, f.span)
        } else {
            f.span
        };
        if span.end > low_water {
            skipped += 1;
            continue;
        }
        out.replace_range(span.start..span.end, &f.replacement);
        low_water = span.start;
        applied += 1;
    }
    FixOutcome {
        source: out,
        applied,
        skipped,
    }
}

/// Widens a deletion span to its whole line (leading indentation
/// through the trailing newline) when nothing but whitespace or a
/// trailing comment shares the line; otherwise returns the span
/// unchanged.
fn line_extent(source: &str, span: Span) -> Span {
    let line_start = source[..span.start].rfind('\n').map_or(0, |i| i + 1);
    let line_end = source[span.end..]
        .find('\n')
        .map_or(source.len(), |i| span.end + i + 1);
    let prefix = &source[line_start..span.start];
    let suffix = source[span.end..line_end].trim_end_matches('\n');
    let suffix_ok = suffix.trim_start().is_empty() || suffix.trim_start().starts_with('#');
    if prefix.trim().is_empty() && suffix_ok {
        Span::new(line_start, line_end)
    } else {
        span
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Diagnostic, LintCode};

    fn report_with_fix(span: Span, replacement: &str, app: Applicability) -> LintReport {
        let mut r = LintReport::new();
        r.push(Diagnostic::new(LintCode::DuplicateEdge, "dup").with_fix(
            Some(span),
            replacement,
            app,
        ));
        r
    }

    #[test]
    fn deletion_takes_the_whole_line() {
        let src = "a\n  min x -> y 3s\nb\n";
        let span = Span::new(4, src.find('\n').map(|_| 17).unwrap()); // the min stmt
        let r = report_with_fix(span, "", Applicability::MachineApplicable);
        let out = apply_fixes(src, &r, false);
        assert_eq!(out.source, "a\nb\n");
        assert_eq!(out.applied, 1);
    }

    #[test]
    fn replacement_swaps_in_place() {
        let src = "deadline 10s\n";
        let r = report_with_fix(
            Span::new(0, 12),
            "deadline 16s",
            Applicability::MaybeIncorrect,
        );
        assert_eq!(apply_fixes(src, &r, false).applied, 0); // needs opt-in
        let out = apply_fixes(src, &r, true);
        assert_eq!(out.source, "deadline 16s\n");
        assert_eq!(out.applied, 1);
    }

    #[test]
    fn overlapping_fixes_are_skipped_not_corrupted() {
        let src = "abcdef\n";
        let mut r = LintReport::new();
        r.push(Diagnostic::new(LintCode::DuplicateEdge, "x").with_fix(
            Some(Span::new(0, 4)),
            "XY",
            Applicability::MachineApplicable,
        ));
        r.push(Diagnostic::new(LintCode::DuplicateEdge, "y").with_fix(
            Some(Span::new(2, 6)),
            "Z",
            Applicability::MachineApplicable,
        ));
        let out = apply_fixes(src, &r, false);
        assert_eq!(out.applied, 1);
        assert_eq!(out.skipped, 1);
        assert_eq!(out.source, "abZ\n");
    }

    #[test]
    fn identical_fixes_from_two_diagnostics_apply_once() {
        let src = "  min a -> b 2s\n";
        let mut r = LintReport::new();
        for _ in 0..2 {
            r.push(Diagnostic::new(LintCode::RedundantEdge, "r").with_fix(
                Some(Span::new(2, 15)),
                "",
                Applicability::MachineApplicable,
            ));
        }
        let out = apply_fixes(src, &r, false);
        assert_eq!(out.applied, 1);
        assert_eq!(out.skipped, 0);
        assert_eq!(out.source, "");
    }
}
