//! Machine-checkable infeasibility certificates for the deep
//! (`PAS04x`) diagnostics, plus the independent zero-trust checker
//! that validates them.
//!
//! A certificate is *self-contained evidence*: witness tasks, the
//! constraint-graph paths that pin their start-time windows, and the
//! arithmetic inequality that proves no schedule can meet the
//! declared deadline. [`verify_certificate`] re-derives every bound
//! from the graph and the paths alone — it never trusts the fixpoint
//! analysis that produced the certificate — so an emitted `PAS04x`
//! diagnostic is never a false positive by construction (same spirit
//! as `pas-replay`'s `cross_check`).
//!
//! ## Proof obligations
//!
//! Each [`WindowClaim`] claims a conservative start-time window
//! `[asap, alap]` for one task and must justify both ends:
//!
//! * **`asap` (lower bound)** — a path `s → … → task` from any node.
//!   Every edge `u → v` of weight `w` encodes `σ(v) ≥ σ(u) + w`, and
//!   every start time satisfies `σ ≥ 0` (the anchor is pinned at 0),
//!   so the path's (max-weight-per-hop) sum `W` proves
//!   `σ(task) ≥ σ(s) + W ≥ W`; the claim is valid when `asap ≤ W`.
//!   An empty path appeals to the `σ ≥ 0` axiom alone and is valid
//!   when `asap ≤ 0`.
//! * **`alap` (upper bound)** — a forward path `task → … → z`.
//!   Chaining the same inequalities gives `σ(z) ≥ σ(task) + W`; with
//!   the deadline axiom `σ(z) ≤ D − d(z)` (or `σ(anchor) = 0` when
//!   the path ends at the anchor) this derives
//!   `σ(task) ≤ D − d(z) − W`, and the claim is valid when `alap` is
//!   at least that derived bound.
//!
//! The *mandatory overlap* of a task with a window `[a, b)` — the
//! execution time it must spend inside the window in **every**
//! deadline-meeting schedule — is then `min(ov(asap), ov(alap))`
//! where `ov(s) = max(0, min(s+d, b) − max(s, a))`: `ov` is concave
//! in `s`, so its minimum over the claimed window sits at an
//! endpoint, and a wider (more conservative) claim only shrinks the
//! bound. Summing mandatory energy or mandatory resource demand
//! against the window's capacity yields the infeasibility inequality
//! each [`Certificate`] variant carries.

use core::fmt::Write as _;
use pas_core::Problem;
use pas_graph::units::{Power, Time, TimeSpan};
use pas_graph::{ConstraintGraph, NodeId, ResourceId, TaskId};

/// A conservative start-time window for one task, with the
/// constraint-graph paths that justify both ends (see the module
/// docs for the proof obligations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowClaim {
    /// The witness task.
    pub task: TaskId,
    /// Its name, captured for rendering (display only — the checker
    /// identifies the task by id).
    pub task_name: String,
    /// Claimed lower bound on the task's start time.
    pub asap: Time,
    /// Claimed upper bound on the task's start time under the
    /// deadline.
    pub alap: Time,
    /// Node path ending at the task proving `σ(task) ≥ asap` (the
    /// first node contributes the `σ ≥ 0` axiom); empty when
    /// `asap ≤ 0`.
    pub asap_path: Vec<NodeId>,
    /// Forward node path `task → … → z` proving
    /// `σ(task) ≤ D − d(z) − Σw`; must start at the task itself (the
    /// single-node path derives `σ(task) ≤ D − d(task)`).
    pub alap_path: Vec<NodeId>,
}

/// A lower bound on one task's start time with its anchor-rooted
/// path witness — the `asap` half of a [`WindowClaim`], used by the
/// resource-serial makespan bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StartClaim {
    /// The witness task.
    pub task: TaskId,
    /// Its name (display only).
    pub task_name: String,
    /// Claimed lower bound on the task's start time.
    pub lower_bound: Time,
    /// Node path ending at the task proving it (first node
    /// contributes `σ ≥ 0`); empty when `lower_bound ≤ 0`.
    pub path: Vec<NodeId>,
}

/// The makespan lower bound inside a
/// [`TightenedDeadline`](Certificate::TightenedDeadline) certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MakespanBound {
    /// Total task energy over deliverable power: every schedule needs
    /// `⌈E / (P_max − background)⌉` seconds to push `E` through the
    /// budget.
    Energy {
        /// `Σ p(v)·d(v)` over **all** tasks, in milliwatt-seconds.
        total_energy_mws: i128,
        /// `P_max − background`, in milliwatts.
        budget_mw: i64,
        /// The derived makespan lower bound.
        lower_bound: Time,
    },
    /// Serial execution on one exclusive resource: its tasks all
    /// start at or after `release` and must run back-to-back.
    ResourceSerial {
        /// The saturated resource.
        resource: ResourceId,
        /// Its name (display only).
        resource_name: String,
        /// A start-time lower bound common to every claimed task.
        release: Time,
        /// One proved lower bound per claimed task, each ≥ `release`.
        release_claims: Vec<StartClaim>,
        /// `Σ d(v)` over the claimed tasks, in seconds.
        serial_secs: i64,
        /// `release + serial`: the derived makespan lower bound.
        lower_bound: Time,
    },
}

/// A machine-checkable proof that no schedule can meet the deadline,
/// attached to every `PAS04x` diagnostic and validated by
/// [`verify_certificate`] before emission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Certificate {
    /// `PAS040` — the mandatory energy inside `[window.0, window.1)`
    /// exceeds what the power budget can deliver over the window.
    EnergyWindow {
        /// The deadline the proof is relative to.
        deadline: Time,
        /// The half-open infeasible window `[a, b)`.
        window: (Time, Time),
        /// Window claims for the contributing tasks.
        claims: Vec<WindowClaim>,
        /// `Σ p(v) · mandatory(v)` in milliwatt-seconds.
        mandatory_energy_mws: i128,
        /// `(P_max − background) · (b − a)` in milliwatt-seconds.
        capacity_mws: i128,
    },
    /// `PAS041` — tasks sharing one exclusive resource demand more
    /// execution time inside `[window.0, window.1)` than it holds.
    ResourcePacking {
        /// The deadline the proof is relative to.
        deadline: Time,
        /// The saturated resource.
        resource: ResourceId,
        /// Its name (display only).
        resource_name: String,
        /// The half-open infeasible window `[a, b)`.
        window: (Time, Time),
        /// Window claims for the resource's contributing tasks.
        claims: Vec<WindowClaim>,
        /// `Σ mandatory(v)` in seconds.
        demand_secs: i64,
        /// `b − a` in seconds.
        capacity_secs: i64,
    },
    /// `PAS042` — a makespan lower bound exceeds the deadline even
    /// though the critical path fits.
    TightenedDeadline {
        /// The deadline the proof is relative to.
        deadline: Time,
        /// The violated lower bound with its own evidence.
        bound: MakespanBound,
    },
}

impl Certificate {
    /// The deadline this certificate proves unreachable.
    pub fn deadline(&self) -> Time {
        match *self {
            Certificate::EnergyWindow { deadline, .. }
            | Certificate::ResourcePacking { deadline, .. }
            | Certificate::TightenedDeadline { deadline, .. } => deadline,
        }
    }

    /// Stable kind tag used in the JSON encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            Certificate::EnergyWindow { .. } => "energy-window",
            Certificate::ResourcePacking { .. } => "resource-packing",
            Certificate::TightenedDeadline { .. } => "tightened-deadline",
        }
    }

    /// Self-contained JSON encoding (no serde), documented in
    /// DESIGN.md §14. Names are escaped per RFC 8259; paths are node
    /// indices with `0` the anchor.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"kind\":\"{}\",\"deadline_secs\":{}",
            self.kind(),
            secs(self.deadline()),
        );
        match self {
            Certificate::EnergyWindow {
                window,
                claims,
                mandatory_energy_mws,
                capacity_mws,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"window_secs\":[{},{}],\"mandatory_energy_mws\":{mandatory_energy_mws},\"capacity_mws\":{capacity_mws},\"claims\":{}",
                    secs(window.0),
                    secs(window.1),
                    claims_json(claims),
                );
            }
            Certificate::ResourcePacking {
                resource,
                resource_name,
                window,
                claims,
                demand_secs,
                capacity_secs,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"resource\":{},\"resource_name\":\"{}\",\"window_secs\":[{},{}],\"demand_secs\":{demand_secs},\"capacity_secs\":{capacity_secs},\"claims\":{}",
                    resource.index(),
                    escape(resource_name),
                    secs(window.0),
                    secs(window.1),
                    claims_json(claims),
                );
            }
            Certificate::TightenedDeadline { bound, .. } => match bound {
                MakespanBound::Energy {
                    total_energy_mws,
                    budget_mw,
                    lower_bound,
                } => {
                    let _ = write!(
                        out,
                        ",\"bound\":\"energy\",\"total_energy_mws\":{total_energy_mws},\"budget_mw\":{budget_mw},\"makespan_lb_secs\":{}",
                        secs(*lower_bound),
                    );
                }
                MakespanBound::ResourceSerial {
                    resource,
                    resource_name,
                    release,
                    release_claims,
                    serial_secs,
                    lower_bound,
                } => {
                    let _ = write!(
                        out,
                        ",\"bound\":\"resource-serial\",\"resource\":{},\"resource_name\":\"{}\",\"release_secs\":{},\"serial_secs\":{serial_secs},\"makespan_lb_secs\":{},\"claims\":[",
                        resource.index(),
                        escape(resource_name),
                        secs(*release),
                        secs(*lower_bound),
                    );
                    for (i, c) in release_claims.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(
                            out,
                            "{{\"task\":{},\"task_name\":\"{}\",\"lower_bound_secs\":{},\"path\":{}}}",
                            c.task.index(),
                            escape(&c.task_name),
                            secs(c.lower_bound),
                            path_json(&c.path),
                        );
                    }
                    out.push(']');
                }
            },
        }
        out.push('}');
        out
    }
}

fn claims_json(claims: &[WindowClaim]) -> String {
    let mut out = String::from("[");
    for (i, c) in claims.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"task\":{},\"task_name\":\"{}\",\"asap_secs\":{},\"alap_secs\":{},\"asap_path\":{},\"alap_path\":{}}}",
            c.task.index(),
            escape(&c.task_name),
            secs(c.asap),
            secs(c.alap),
            path_json(&c.asap_path),
            path_json(&c.alap_path),
        );
    }
    out.push(']');
    out
}

fn path_json(path: &[NodeId]) -> String {
    let mut out = String::from("[");
    for (i, n) in path.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", n.index());
    }
    out.push(']');
    out
}

fn secs(t: Time) -> i64 {
    t.since_origin().as_secs()
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Why a certificate failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertificateError {
    /// Human-readable reason (first failed obligation).
    pub reason: String,
}

impl core::fmt::Display for CertificateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "certificate rejected: {}", self.reason)
    }
}

impl std::error::Error for CertificateError {}

fn reject<T>(reason: impl Into<String>) -> Result<T, CertificateError> {
    Err(CertificateError {
        reason: reason.into(),
    })
}

/// `⌈a / b⌉` for non-negative `a` and positive `b`. Hand-rolled
/// because `i128::div_ceil` is unstable on the MSRV toolchain.
pub(crate) fn ceil_div(a: i128, b: i128) -> i128 {
    debug_assert!(a >= 0 && b > 0);
    (a + b - 1) / b
}

/// Mandatory execution time of a task with start window
/// `[asap, alap]` and delay `d` inside the half-open window `[a, b)`,
/// in seconds. Zero when the claimed window is empty (`alap < asap`):
/// such a task constrains nothing.
pub(crate) fn mandatory_overlap(asap: Time, alap: Time, d: TimeSpan, a: Time, b: Time) -> i64 {
    if alap < asap {
        return 0;
    }
    let ov = |s: Time| -> i64 {
        let lo = s.max(a).since_origin().as_secs();
        let hi = (s + d).min(b).since_origin().as_secs();
        (hi - lo).max(0)
    };
    ov(asap).min(ov(alap))
}

/// Max edge weight from `from` to `to`, if any edge exists. Using the
/// heaviest parallel edge is sound: every edge is a true constraint,
/// and the heaviest gives the strongest derived bound.
fn max_edge_weight(graph: &ConstraintGraph, from: NodeId, to: NodeId) -> Option<TimeSpan> {
    graph
        .out_edges(from)
        .filter(|(_, e)| e.to() == to)
        .map(|(_, e)| e.weight())
        .max()
}

/// Sum of max-weight hops along `path`; rejects missing edges.
fn path_weight(graph: &ConstraintGraph, path: &[NodeId]) -> Result<TimeSpan, CertificateError> {
    let mut total = TimeSpan::ZERO;
    for pair in path.windows(2) {
        match max_edge_weight(graph, pair[0], pair[1]) {
            Some(w) => total += w,
            None => {
                return reject(format!(
                    "no edge {} -> {} in witness path",
                    pair[0], pair[1]
                ))
            }
        }
    }
    Ok(total)
}

fn node_in_range(graph: &ConstraintGraph, n: NodeId) -> bool {
    n.index() < graph.num_nodes()
}

/// Checks the `asap` obligation: the path derives
/// `σ(task) ≥ claimed`.
fn verify_start_lower_bound(
    graph: &ConstraintGraph,
    task: TaskId,
    claimed: Time,
    path: &[NodeId],
) -> Result<(), CertificateError> {
    if path.is_empty() {
        if claimed <= Time::ZERO {
            return Ok(()); // σ ≥ 0 axiom
        }
        return reject(format!(
            "asap {claimed} claimed for task {task} without a path"
        ));
    }
    if *path.last().expect("non-empty") != task.node() {
        return reject("asap path does not end at the claimed task");
    }
    if path.iter().any(|&n| !node_in_range(graph, n)) {
        return reject("asap path mentions a node outside the graph");
    }
    let derived = Time::ZERO + path_weight(graph, path)?;
    if claimed <= derived {
        Ok(())
    } else {
        reject(format!(
            "asap path only derives σ ≥ {derived}, claim was {claimed}"
        ))
    }
}

/// Checks the `alap` obligation: the path derives
/// `σ(task) ≤ derived ≤ claimed` under the deadline.
fn verify_start_upper_bound(
    graph: &ConstraintGraph,
    deadline: Time,
    task: TaskId,
    claimed: Time,
    path: &[NodeId],
) -> Result<(), CertificateError> {
    let Some(&first) = path.first() else {
        return reject("alap path is empty");
    };
    if first != task.node() {
        return reject("alap path does not start at the claimed task");
    }
    if path.iter().any(|&n| !node_in_range(graph, n)) {
        return reject("alap path mentions a node outside the graph");
    }
    let w = path_weight(graph, path)?;
    let terminal = *path.last().expect("non-empty");
    let derived = match terminal.task() {
        // σ(z) ≤ D − d(z) and σ(z) ≥ σ(task) + W.
        Some(z) => deadline - graph.task(z).delay() - w,
        // σ(anchor) = 0 and σ(anchor) ≥ σ(task) + W.
        None => Time::ZERO - w,
    };
    if claimed >= derived {
        Ok(())
    } else {
        reject(format!(
            "alap path derives σ ≤ {derived}, claim {claimed} is tighter than proven"
        ))
    }
}

fn verify_window_claims(
    graph: &ConstraintGraph,
    deadline: Time,
    claims: &[WindowClaim],
) -> Result<(), CertificateError> {
    let mut seen = vec![false; graph.num_tasks()];
    for c in claims {
        if c.task.index() >= graph.num_tasks() {
            return reject(format!("claim names unknown task {}", c.task));
        }
        if core::mem::replace(&mut seen[c.task.index()], true) {
            return reject(format!("task {} claimed twice (double counting)", c.task));
        }
        verify_start_lower_bound(graph, c.task, c.asap, &c.asap_path)?;
        verify_start_upper_bound(graph, deadline, c.task, c.alap, &c.alap_path)?;
    }
    Ok(())
}

/// Validates `cert` against `problem` from first principles.
///
/// Every numeric field is recomputed from the constraint graph, the
/// power constraints and the witness paths; the claimed inequality
/// must hold on the recomputed values, and the stored values must
/// match the recomputation exactly. `Ok(())` therefore means: *no
/// schedule of this problem can meet the certificate's deadline*.
pub fn verify_certificate(problem: &Problem, cert: &Certificate) -> Result<(), CertificateError> {
    let graph = problem.graph();
    let p_max = problem.constraints().p_max();
    let background = problem.background_power();
    match cert {
        Certificate::EnergyWindow {
            deadline,
            window: (a, b),
            claims,
            mandatory_energy_mws,
            capacity_mws,
        } => {
            if a >= b {
                return reject("energy window is empty");
            }
            if p_max == Power::MAX {
                return reject("energy window against an unconstrained budget");
            }
            verify_window_claims(graph, *deadline, claims)?;
            let energy: i128 = claims
                .iter()
                .map(|c| {
                    let m = mandatory_overlap(c.asap, c.alap, graph.task(c.task).delay(), *a, *b);
                    m as i128 * graph.task(c.task).power().as_milliwatts() as i128
                })
                .sum();
            let headroom = (p_max - background).as_milliwatts().max(0) as i128;
            let capacity = headroom * (*b - *a).as_secs() as i128;
            if energy != *mandatory_energy_mws || capacity != *capacity_mws {
                return reject("stored energy/capacity disagree with recomputation");
            }
            if energy > capacity {
                Ok(())
            } else {
                reject(format!(
                    "mandatory energy {energy} mW·s fits the window capacity {capacity} mW·s"
                ))
            }
        }
        Certificate::ResourcePacking {
            deadline,
            resource,
            window: (a, b),
            claims,
            demand_secs,
            capacity_secs,
            ..
        } => {
            if a >= b {
                return reject("packing window is empty");
            }
            verify_window_claims(graph, *deadline, claims)?;
            for c in claims {
                if graph.task(c.task).resource() != *resource {
                    return reject(format!("task {} is not on the packed resource", c.task));
                }
            }
            let demand: i64 = claims
                .iter()
                .map(|c| mandatory_overlap(c.asap, c.alap, graph.task(c.task).delay(), *a, *b))
                .sum();
            let capacity = (*b - *a).as_secs();
            if demand != *demand_secs || capacity != *capacity_secs {
                return reject("stored demand/capacity disagree with recomputation");
            }
            if demand > capacity {
                Ok(())
            } else {
                reject(format!(
                    "mandatory demand {demand}s fits inside the {capacity}s window"
                ))
            }
        }
        Certificate::TightenedDeadline { deadline, bound } => match bound {
            MakespanBound::Energy {
                total_energy_mws,
                budget_mw,
                lower_bound,
            } => {
                if p_max == Power::MAX {
                    return reject("energy bound against an unconstrained budget");
                }
                let energy: i128 = graph
                    .tasks()
                    .map(|(_, t)| t.delay().as_secs() as i128 * t.power().as_milliwatts() as i128)
                    .sum();
                let budget = (p_max - background).as_milliwatts();
                if energy != *total_energy_mws || budget != *budget_mw {
                    return reject("stored energy/budget disagree with recomputation");
                }
                if budget <= 0 {
                    // Positive task energy with zero deliverable power
                    // is infeasible for any deadline.
                    return if energy > 0 {
                        Ok(())
                    } else {
                        reject("no task energy to starve")
                    };
                }
                // E > budget · D ⟺ pushing E through the budget
                // needs strictly more than D seconds.
                let lb_secs = ceil_div(energy, budget as i128);
                if Time::from_secs(lb_secs.min(i64::MAX as i128) as i64) != *lower_bound {
                    return reject("stored energy lower bound disagrees with recomputation");
                }
                if energy > budget as i128 * secs(*deadline) as i128 {
                    Ok(())
                } else {
                    reject(format!(
                        "total energy {energy} mW·s fits within the deadline"
                    ))
                }
            }
            MakespanBound::ResourceSerial {
                resource,
                release,
                release_claims,
                serial_secs,
                lower_bound,
                ..
            } => {
                let mut seen = vec![false; graph.num_tasks()];
                for c in release_claims {
                    if c.task.index() >= graph.num_tasks() {
                        return reject(format!("claim names unknown task {}", c.task));
                    }
                    if core::mem::replace(&mut seen[c.task.index()], true) {
                        return reject(format!("task {} claimed twice", c.task));
                    }
                    if graph.task(c.task).resource() != *resource {
                        return reject(format!("task {} is not on the serial resource", c.task));
                    }
                    if c.lower_bound < *release {
                        return reject(format!(
                            "task {} release {} is below the common release {release}",
                            c.task, c.lower_bound
                        ));
                    }
                    verify_start_lower_bound(graph, c.task, c.lower_bound, &c.path)?;
                }
                if release_claims.is_empty() {
                    return reject("resource-serial bound with no claimed tasks");
                }
                let serial: i64 = release_claims
                    .iter()
                    .map(|c| graph.task(c.task).delay().as_secs())
                    .sum();
                if serial != *serial_secs {
                    return reject("stored serial time disagrees with recomputation");
                }
                if *release + TimeSpan::from_secs(serial) != *lower_bound {
                    return reject("stored serial lower bound disagrees with recomputation");
                }
                // The claimed tasks share an exclusive resource, so
                // they execute back-to-back at best, starting no
                // earlier than `release`.
                if *lower_bound > *deadline {
                    Ok(())
                } else {
                    reject(format!(
                        "serial bound {lower_bound} does not exceed the deadline"
                    ))
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_core::PowerConstraints;
    use pas_graph::{Resource, ResourceKind, Task};

    /// Two 5 s tasks on one resource, deadline 9 s: packing demand
    /// 10 s > 9 s.
    fn packed() -> (Problem, TaskId, TaskId) {
        let mut g = ConstraintGraph::new();
        let r = g.add_resource(Resource::new("cpu", ResourceKind::Compute));
        let a = g.add_task(Task::new(
            "a",
            r,
            TimeSpan::from_secs(5),
            Power::from_watts(1),
        ));
        let b = g.add_task(Task::new(
            "b",
            r,
            TimeSpan::from_secs(5),
            Power::from_watts(1),
        ));
        let p = Problem::new(
            "packed",
            g,
            PowerConstraints::max_only(Power::from_watts(100)),
        )
        .with_deadline(Time::from_secs(9));
        (p, a, b)
    }

    fn packing_claim(task: TaskId, name: &str, deadline: i64, delay: i64) -> WindowClaim {
        WindowClaim {
            task,
            task_name: name.to_string(),
            asap: Time::ZERO,
            alap: Time::from_secs(deadline - delay),
            asap_path: Vec::new(),
            alap_path: vec![task.node()],
        }
    }

    fn packing_certificate() -> Certificate {
        let (_, a, b) = packed();
        Certificate::ResourcePacking {
            deadline: Time::from_secs(9),
            resource: ResourceId::from_index(0),
            resource_name: "cpu".to_string(),
            window: (Time::ZERO, Time::from_secs(9)),
            claims: vec![packing_claim(a, "a", 9, 5), packing_claim(b, "b", 9, 5)],
            demand_secs: 10,
            capacity_secs: 9,
        }
    }

    #[test]
    fn valid_packing_certificate_verifies() {
        let (p, _, _) = packed();
        verify_certificate(&p, &packing_certificate()).unwrap();
    }

    #[test]
    fn checker_rejects_tampered_arithmetic() {
        let (p, _, _) = packed();
        let mut cert = packing_certificate();
        if let Certificate::ResourcePacking { demand_secs, .. } = &mut cert {
            *demand_secs = 11; // lie about the demand
        }
        assert!(verify_certificate(&p, &cert).is_err());
    }

    #[test]
    fn checker_rejects_double_counted_tasks() {
        let (p, a, _) = packed();
        let mut cert = packing_certificate();
        if let Certificate::ResourcePacking {
            claims,
            demand_secs,
            ..
        } = &mut cert
        {
            claims[1] = packing_claim(a, "a", 9, 5);
            *demand_secs = 10;
        }
        assert!(verify_certificate(&p, &cert).is_err());
    }

    #[test]
    fn checker_rejects_unproven_asap() {
        let (p, _, _) = packed();
        let mut cert = packing_certificate();
        if let Certificate::ResourcePacking { claims, .. } = &mut cert {
            claims[0].asap = Time::from_secs(3); // positive bound, no path
        }
        let err = verify_certificate(&p, &cert).unwrap_err();
        assert!(err.reason.contains("without a path"), "{err}");
    }

    #[test]
    fn checker_rejects_overtight_alap() {
        let (p, _, _) = packed();
        let mut cert = packing_certificate();
        if let Certificate::ResourcePacking {
            claims,
            demand_secs,
            ..
        } = &mut cert
        {
            // Claiming alap 2 would raise the mandatory overlap to
            // 5 s + 5 s = 10 s against... still 10; tighten to check
            // the path obligation itself: derived bound is 9 − 5 = 4.
            claims[0].alap = Time::from_secs(2);
            *demand_secs = 10;
        }
        let err = verify_certificate(&p, &cert).unwrap_err();
        assert!(err.reason.contains("tighter than proven"), "{err}");
    }

    #[test]
    fn asap_paths_derive_real_lower_bounds() {
        // a → b with a 5 s precedence: path [anchor, a, b]… the
        // precedence edge is a → b weight 5, plus the anchor release
        // edge is implicit (no edge), so the path [a.node, b.node]
        // cannot start at the anchor and an anchored claim of 5 must
        // ride an actual anchor edge if one exists. Use a release.
        let mut g = ConstraintGraph::new();
        let r = g.add_resource(Resource::new("cpu", ResourceKind::Compute));
        let a = g.add_task(Task::new(
            "a",
            r,
            TimeSpan::from_secs(5),
            Power::from_watts(1),
        ));
        let b = g.add_task(Task::new(
            "b",
            r,
            TimeSpan::from_secs(5),
            Power::from_watts(1),
        ));
        g.release(a, Time::from_secs(3));
        g.precedence(a, b);
        let p = Problem::new("t", g, PowerConstraints::unconstrained());
        // b starts ≥ 3 + 5 = 8 via anchor → a → b.
        verify_start_lower_bound(
            p.graph(),
            b,
            Time::from_secs(8),
            &[NodeId::ANCHOR, a.node(), b.node()],
        )
        .unwrap();
        // Claiming 9 through the same path must fail.
        assert!(verify_start_lower_bound(
            p.graph(),
            b,
            Time::from_secs(9),
            &[NodeId::ANCHOR, a.node(), b.node()],
        )
        .is_err());
    }

    #[test]
    fn alap_paths_derive_real_upper_bounds() {
        let mut g = ConstraintGraph::new();
        let r = g.add_resource(Resource::new("cpu", ResourceKind::Compute));
        let a = g.add_task(Task::new(
            "a",
            r,
            TimeSpan::from_secs(5),
            Power::from_watts(1),
        ));
        let b = g.add_task(Task::new(
            "b",
            r,
            TimeSpan::from_secs(7),
            Power::from_watts(1),
        ));
        g.precedence(a, b);
        let g2 = g;
        // Deadline 20: σ(a) ≤ 20 − 7 − 5 = 8 via a → b.
        verify_start_upper_bound(
            &g2,
            Time::from_secs(20),
            a,
            Time::from_secs(8),
            &[a.node(), b.node()],
        )
        .unwrap();
        assert!(verify_start_upper_bound(
            &g2,
            Time::from_secs(20),
            a,
            Time::from_secs(7), // tighter than the path proves
            &[a.node(), b.node()],
        )
        .is_err());
    }

    #[test]
    fn json_encoding_is_self_contained_and_escaped() {
        let mut cert = packing_certificate();
        if let Certificate::ResourcePacking { resource_name, .. } = &mut cert {
            *resource_name = "cp\"u\n".to_string();
        }
        let json = cert.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#""kind":"resource-packing""#));
        assert!(json.contains(r#"cp\"u\n"#));
        assert!(json.contains(r#""demand_secs":10"#));
        assert!(json.contains(r#""window_secs":[0,9]"#));
    }

    #[test]
    fn mandatory_overlap_is_endpoint_minimal() {
        let d = TimeSpan::from_secs(5);
        let (a, b) = (Time::from_secs(5), Time::from_secs(15));
        // Window [5,5] (pinned): full 5 s inside [5,15).
        assert_eq!(
            mandatory_overlap(Time::from_secs(5), Time::from_secs(5), d, a, b),
            5
        );
        // Window [0,10]: at s=0 only [5,5+?]… ov(0)=0? [0,5) ∩ [5,15) = 0.
        assert_eq!(
            mandatory_overlap(Time::ZERO, Time::from_secs(10), d, a, b),
            0
        );
        // Empty claimed window contributes nothing.
        assert_eq!(
            mandatory_overlap(Time::from_secs(9), Time::from_secs(3), d, a, b),
            0
        );
    }
}
