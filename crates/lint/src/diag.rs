//! Diagnostic model: codes, severities, span-carrying diagnostics and
//! the report that collects them.

use crate::certificate::Certificate;
use crate::span::Span;
use core::fmt;

/// How serious a finding is.
///
/// `Error`-level findings are *proofs of trouble*: every error code
/// except the deadline-relative ones ([`LintCode::DeadlineUnreachable`],
/// [`LintCode::WindowOverload`] and the `PAS04x` family) implies that
/// the scheduling pipeline cannot produce a valid schedule, which is
/// what licenses the pipeline's early-reject guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but harmless: the problem is still schedulable.
    Warning,
    /// The problem is provably broken; scheduling cannot succeed (or,
    /// for deadline-relative codes, cannot meet the declared deadline).
    Error,
}

impl Severity {
    /// Stable lowercase name (`"error"` / `"warning"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Every diagnostic the analyzer can emit, one stable code per rule.
///
/// Codes are grouped by pass family: `PAS00x` structural sanity,
/// `PAS01x` timing analysis, `PAS02x` power analysis, `PAS03x`
/// resource analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum LintCode {
    /// `PAS001` — a single task plus background draw exceeds `P_max`.
    TaskOverBudget,
    /// `PAS002` — a constraint edge loops from a task to itself.
    SelfLoop,
    /// `PAS003` — two identical constraint edges between the same pair.
    DuplicateEdge,
    /// `PAS004` — a declared resource that no task runs on.
    DanglingResource,
    /// `PAS005` — the background draw alone exceeds `P_max`.
    BackgroundOverBudget,
    /// `PAS006` — a task with a zero or negative execution delay.
    NonPositiveDelay,
    /// `PAS010` — the constraint graph has a positive cycle.
    PositiveCycle,
    /// `PAS011` — a separation edge dominated by a longer path.
    RedundantEdge,
    /// `PAS012` — the declared deadline is shorter than the critical
    /// path.
    DeadlineUnreachable,
    /// `PAS020` — two tasks forced to overlap whose summed power
    /// exceeds `P_max`.
    ForcedOverlapPower,
    /// `PAS021` — ASAP/ALAP mandatory execution intervals alone push
    /// the profile over `P_max` under the declared deadline.
    WindowOverload,
    /// `PAS022` — the static upper bound on min-power utilization
    /// `ρ_σ(P_min)` is hopelessly low.
    HopelessUtilization,
    /// `PAS030` — two same-resource tasks whose separations force them
    /// to overlap.
    ForcedResourceOverlap,
    /// `PAS040` — the mandatory energy inside an ASAP/ALAP window
    /// exceeds the energy the budget can deliver over that window.
    EnergyInfeasibleWindow,
    /// `PAS041` — tasks sharing an exclusive resource demand more
    /// execution time inside a window than the window holds.
    DemandOverCapacity,
    /// `PAS042` — an energy or resource-packing lower bound on the
    /// makespan exceeds the declared deadline even though the critical
    /// path fits (the bound *tightens* PAS012).
    TightenedDeadlineMiss,
}

impl LintCode {
    /// Every code, in report order.
    pub const ALL: [LintCode; 16] = [
        LintCode::TaskOverBudget,
        LintCode::SelfLoop,
        LintCode::DuplicateEdge,
        LintCode::DanglingResource,
        LintCode::BackgroundOverBudget,
        LintCode::NonPositiveDelay,
        LintCode::PositiveCycle,
        LintCode::RedundantEdge,
        LintCode::DeadlineUnreachable,
        LintCode::ForcedOverlapPower,
        LintCode::WindowOverload,
        LintCode::HopelessUtilization,
        LintCode::ForcedResourceOverlap,
        LintCode::EnergyInfeasibleWindow,
        LintCode::DemandOverCapacity,
        LintCode::TightenedDeadlineMiss,
    ];

    /// The stable `PASnnn` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::TaskOverBudget => "PAS001",
            LintCode::SelfLoop => "PAS002",
            LintCode::DuplicateEdge => "PAS003",
            LintCode::DanglingResource => "PAS004",
            LintCode::BackgroundOverBudget => "PAS005",
            LintCode::NonPositiveDelay => "PAS006",
            LintCode::PositiveCycle => "PAS010",
            LintCode::RedundantEdge => "PAS011",
            LintCode::DeadlineUnreachable => "PAS012",
            LintCode::ForcedOverlapPower => "PAS020",
            LintCode::WindowOverload => "PAS021",
            LintCode::HopelessUtilization => "PAS022",
            LintCode::ForcedResourceOverlap => "PAS030",
            LintCode::EnergyInfeasibleWindow => "PAS040",
            LintCode::DemandOverCapacity => "PAS041",
            LintCode::TightenedDeadlineMiss => "PAS042",
        }
    }

    /// Default severity of the rule.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::TaskOverBudget
            | LintCode::SelfLoop
            | LintCode::BackgroundOverBudget
            | LintCode::NonPositiveDelay
            | LintCode::PositiveCycle
            | LintCode::DeadlineUnreachable
            | LintCode::ForcedOverlapPower
            | LintCode::WindowOverload
            | LintCode::ForcedResourceOverlap
            | LintCode::EnergyInfeasibleWindow
            | LintCode::DemandOverCapacity
            | LintCode::TightenedDeadlineMiss => Severity::Error,
            LintCode::DuplicateEdge
            | LintCode::DanglingResource
            | LintCode::RedundantEdge
            | LintCode::HopelessUtilization => Severity::Warning,
        }
    }

    /// `true` when an error-level finding of this code proves the
    /// *scheduler* must fail (as opposed to deadline-relative codes,
    /// which reject the spec against a declared deadline the
    /// schedulers themselves never see).
    pub fn implies_scheduler_failure(self) -> bool {
        !matches!(
            self,
            LintCode::DeadlineUnreachable
                | LintCode::WindowOverload
                | LintCode::EnergyInfeasibleWindow
                | LintCode::DemandOverCapacity
                | LintCode::TightenedDeadlineMiss
        ) && self.severity() == Severity::Error
    }

    /// `true` when the finding already dooms the *timing* stage
    /// (Fig. 3), before power is even considered.
    pub fn implies_timing_failure(self) -> bool {
        matches!(
            self,
            LintCode::PositiveCycle | LintCode::ForcedResourceOverlap
        )
    }

    /// Parses a `PASnnn` code string.
    pub fn parse(s: &str) -> Option<LintCode> {
        LintCode::ALL.into_iter().find(|c| c.as_str() == s)
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How safe it is to apply a [`Fix`] without human review, mirroring
/// rustc's applicability levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Applicability {
    /// The replacement is semantics-preserving (or removes something
    /// provably redundant); `--fix` applies it automatically.
    MachineApplicable,
    /// The replacement makes the diagnostic go away but changes the
    /// spec's meaning (e.g. extending a deadline); `--fix` only
    /// applies it under `--fix-maybe-incorrect`.
    MaybeIncorrect,
}

impl Applicability {
    /// Stable lowercase name for JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Applicability::MachineApplicable => "machine-applicable",
            Applicability::MaybeIncorrect => "maybe-incorrect",
        }
    }
}

/// A concrete source edit that resolves the finding: replace the
/// bytes of `span` with `replacement` (empty to delete the
/// statement).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fix {
    /// Byte range of the spec source to replace.
    pub span: Span,
    /// Replacement text; empty means delete the spanned statement.
    pub replacement: String,
    /// Whether the edit is safe to apply unattended.
    pub applicability: Applicability,
}

/// A source span with a short label explaining its role in the
/// finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledSpan {
    /// Byte range into the spec source.
    pub span: Span,
    /// What this range contributes (e.g. `"declared here"`).
    pub label: String,
}

/// One finding: a coded, severity-ranked message with zero or more
/// source spans and an optional fix suggestion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub code: LintCode,
    /// Severity of this particular finding (usually
    /// [`LintCode::severity`], occasionally downgraded).
    pub severity: Severity,
    /// Human-readable description, including task/resource names.
    pub message: String,
    /// Source locations, primary first. Empty for problems built
    /// programmatically rather than parsed from a spec.
    pub spans: Vec<LabeledSpan>,
    /// An actionable remediation hint, when one is known.
    pub suggestion: Option<String>,
    /// A concrete source edit that resolves the finding, when the
    /// offending statement was parsed from spec source.
    pub fix: Option<Fix>,
    /// For the deep (`PAS04x`) codes: the machine-checkable
    /// infeasibility proof, validated by
    /// [`verify_certificate`](crate::verify_certificate) before the
    /// diagnostic is emitted.
    pub certificate: Option<Certificate>,
}

impl Diagnostic {
    /// Creates a finding at the rule's default severity.
    pub fn new(code: LintCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
            spans: Vec::new(),
            suggestion: None,
            fix: None,
            certificate: None,
        }
    }

    /// Overrides the severity (builder style).
    pub fn with_severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// Attaches a labeled span (builder style); `None` spans are
    /// silently skipped so call sites can pass table lookups directly.
    pub fn with_span(mut self, span: Option<Span>, label: impl Into<String>) -> Self {
        if let Some(span) = span {
            self.spans.push(LabeledSpan {
                span,
                label: label.into(),
            });
        }
        self
    }

    /// Attaches a fix suggestion (builder style).
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }

    /// Attaches a concrete source fix (builder style); a `None` span
    /// (programmatic problem) skips the fix entirely.
    pub fn with_fix(
        mut self,
        span: Option<Span>,
        replacement: impl Into<String>,
        applicability: Applicability,
    ) -> Self {
        if let Some(span) = span {
            self.fix = Some(Fix {
                span,
                replacement: replacement.into(),
                applicability,
            });
        }
        self
    }

    /// Attaches an infeasibility certificate (builder style).
    pub fn with_certificate(mut self, certificate: Certificate) -> Self {
        self.certificate = Some(certificate);
        self
    }

    /// The primary (first) span, if any.
    pub fn primary_span(&self) -> Option<Span> {
        self.spans.first().map(|l| l.span)
    }
}

/// The outcome of running the analyzer: every finding, ordered
/// errors-first and then by source position.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty (clean) report.
    pub fn new() -> Self {
        LintReport::default()
    }

    /// Adds a finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// All findings in report order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of error-level findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-level findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// `true` when at least one finding is error-level.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// `true` when there are no findings at all.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings of one specific code.
    pub fn by_code(&self, code: LintCode) -> impl Iterator<Item = &Diagnostic> + '_ {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// `true` when any error-level finding proves the scheduler must
    /// fail (see [`LintCode::implies_scheduler_failure`]).
    pub fn proves_scheduler_failure(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error && d.code.implies_scheduler_failure())
    }

    /// `true` when any finding proves the timing stage must fail.
    pub fn proves_timing_failure(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.code.implies_timing_failure())
    }

    /// Sorts findings errors-first, then by code, then by primary span.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by_key(|d| {
            (
                core::cmp::Reverse(d.severity),
                d.code,
                d.primary_span().map_or(usize::MAX, |s| s.start),
            )
        });
    }

    /// One-line summary like `"2 errors, 1 warning"`.
    pub fn summary(&self) -> String {
        let e = self.error_count();
        let w = self.warning_count();
        let plural = |n: usize| if n == 1 { "" } else { "s" };
        format!("{e} error{}, {w} warning{}", plural(e), plural(w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_parse_back() {
        for c in LintCode::ALL {
            assert_eq!(LintCode::parse(c.as_str()), Some(c));
        }
        let mut strs: Vec<_> = LintCode::ALL.iter().map(|c| c.as_str()).collect();
        strs.sort_unstable();
        strs.dedup();
        assert_eq!(strs.len(), LintCode::ALL.len());
        assert_eq!(LintCode::parse("PAS999"), None);
    }

    #[test]
    fn guard_classification_is_consistent() {
        for c in LintCode::ALL {
            if c.implies_timing_failure() {
                assert!(c.implies_scheduler_failure(), "{c} timing ⊆ scheduler");
            }
            if c.implies_scheduler_failure() {
                assert_eq!(c.severity(), Severity::Error, "{c}");
            }
        }
        assert!(!LintCode::DeadlineUnreachable.implies_scheduler_failure());
        assert!(!LintCode::RedundantEdge.implies_scheduler_failure());
    }

    #[test]
    fn report_counts_and_order() {
        let mut r = LintReport::new();
        r.push(
            Diagnostic::new(LintCode::RedundantEdge, "warn")
                .with_span(Some(Span::new(10, 12)), "here"),
        );
        r.push(
            Diagnostic::new(LintCode::PositiveCycle, "err")
                .with_span(Some(Span::new(2, 5)), "cycle"),
        );
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_errors());
        assert!(r.proves_scheduler_failure());
        r.sort();
        assert_eq!(r.diagnostics()[0].code, LintCode::PositiveCycle);
        assert_eq!(r.summary(), "1 error, 1 warning");
    }

    #[test]
    fn builder_skips_missing_spans() {
        let d = Diagnostic::new(LintCode::SelfLoop, "m")
            .with_span(None, "gone")
            .with_span(Some(Span::new(0, 1)), "kept")
            .with_suggestion("drop the edge");
        assert_eq!(d.spans.len(), 1);
        assert_eq!(d.primary_span(), Some(Span::new(0, 1)));
        assert_eq!(d.suggestion.as_deref(), Some("drop the edge"));
    }
}
