//! Golden test: the rendered diagnostics for the whole lint corpus
//! are locked byte-for-byte, in both the rustc-style human form and
//! the JSON form (certificates included). Any change to spans,
//! wording, severities, certificate payloads, or JSON escaping shows
//! up as a reviewable diff here instead of silently reaching users.
//!
//! Regenerate with `BLESS=1 cargo test --test golden_lint` after an
//! intentional format change, and review the diff like any other
//! code.

use pas_lint::{lint_problem, render_human, render_json, LintConfig, SourceFile};
use pas_spec::parse_problem_spanned;
use std::path::PathBuf;

const HUMAN_GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/lint_corpus.human.txt"
);
const JSON_GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/lint_corpus.json");

/// Renders every corpus spec (sorted by file name for determinism)
/// into one human transcript and one JSON-lines transcript.
fn render_corpus() -> (String, String) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/lint_corpus");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("corpus dir exists")
        .map(|e| {
            e.expect("readable entry")
                .file_name()
                .into_string()
                .unwrap()
        })
        .filter(|n| n.ends_with(".pasdl"))
        .collect();
    names.sort();
    assert!(!names.is_empty(), "empty corpus");

    let mut human = String::new();
    let mut json = String::new();
    for name in &names {
        let source = std::fs::read_to_string(dir.join(name)).expect("readable spec");
        let spanned = parse_problem_spanned(&source).expect("corpus specs parse");
        let report = lint_problem(&spanned.problem, &spanned.spans, &LintConfig::default());
        let file = SourceFile {
            name,
            text: &source,
        };
        human.push_str(&format!("== {name} ==\n"));
        if report.is_empty() {
            human.push_str("clean\n");
        } else {
            human.push_str(&render_human(&report, Some(file)));
        }
        human.push('\n');
        json.push_str(&render_json(&report, Some(file)));
        json.push('\n');
    }
    (human, json)
}

#[test]
fn corpus_renders_match_the_golden_files() {
    let (human, json) = render_corpus();
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(HUMAN_GOLDEN, &human).expect("write human golden");
        std::fs::write(JSON_GOLDEN, &json).expect("write json golden");
        return;
    }
    let expected_human = std::fs::read_to_string(HUMAN_GOLDEN).expect("human golden exists");
    let expected_json = std::fs::read_to_string(JSON_GOLDEN).expect("json golden exists");
    assert_eq!(
        human, expected_human,
        "human renders drifted from the golden file; \
         run with BLESS=1 to regenerate after an intentional change"
    );
    assert_eq!(
        json, expected_json,
        "JSON renders drifted from the golden file; \
         run with BLESS=1 to regenerate after an intentional change"
    );
}
