//! Integration: the paper's running example through the whole stack
//! (Figs. 1 → 2 → 5 → 7 and the §5.3 validity-region remark).

use impacct::core::example::paper_example;
use impacct::core::{is_power_valid, is_time_valid, slacks};
use impacct::gantt::{render_ascii, render_svg, AsciiOptions, GanttChart, SvgOptions};
use impacct::graph::units::{Power, TimeSpan};
use impacct::sched::{PowerAwareScheduler, ValidityRegion};

#[test]
fn fig2_time_valid_schedule_has_spike_and_gaps() {
    let (mut problem, _) = paper_example();
    let stage1 = PowerAwareScheduler::default()
        .schedule_timing_only(&mut problem)
        .unwrap();
    assert!(is_time_valid(problem.graph(), &stage1.schedule));
    assert!(!stage1.analysis.spikes.is_empty(), "Fig. 2 shows a spike");
    assert!(!stage1.analysis.gaps.is_empty(), "Fig. 2 shows gaps");
    assert!(
        stage1.analysis.peak_power > problem.constraints().p_max(),
        "the spike exceeds the 16 W budget"
    );
}

#[test]
fn fig5_max_power_stage_produces_a_valid_schedule() {
    let (mut problem, _) = paper_example();
    let stage2 = PowerAwareScheduler::default()
        .schedule_power_valid(&mut problem)
        .unwrap();
    assert!(is_power_valid(&problem, &stage2.schedule));
    assert!(stage2.analysis.peak_power <= Power::from_watts(16));
    // Slack analysis still sound after serialization.
    for s in slacks(problem.graph(), &stage2.schedule) {
        assert!(!s.is_negative());
    }
}

#[test]
fn fig7_min_power_stage_improves_utilization_not_validity() {
    let (mut problem, _) = paper_example();
    let stages = PowerAwareScheduler::default()
        .schedule_stages(&mut problem)
        .unwrap();
    assert!(stages.improved.analysis.is_valid());
    assert!(stages.improved.analysis.utilization >= stages.power_valid.analysis.utilization);
    // The improvement must not slow the schedule beyond the valid one.
    assert!(
        stages.improved.analysis.finish_time <= stages.power_valid.analysis.finish_time
            || stages.improved.analysis.utilization > stages.power_valid.analysis.utilization
    );
}

#[test]
fn fig7_validity_region_covers_a_constraint_range() {
    // §5.3: "the same schedule can be directly applied to all cases
    // with P_max ≥ 16, P_min ≤ 14, without recomputing".
    let (mut problem, _) = paper_example();
    let outcome = PowerAwareScheduler::default()
        .schedule(&mut problem)
        .unwrap();
    let region = ValidityRegion::of(
        problem.graph(),
        &outcome.schedule,
        problem.background_power(),
    );
    // Valid at the designed budget and at every larger one.
    assert!(region.admits_p_max(Power::from_watts(16)));
    assert!(region.admits_p_max(Power::from_watts(100)));
    assert!(!region.admits_p_max(region.min_p_max - Power::from_watts_milli(1)));
    // Gap-free below the profile floor.
    assert!(region.gap_free_under(region.gap_free_p_min));
}

#[test]
fn portfolio_reaches_the_certified_optimum() {
    // Exhaustive B&B (pas_sched::optimal) certifies τ* = 30 s for
    // this example; the default heuristic lands on 35 s, and the
    // seeded random-restart portfolio closes the gap.
    let (mut problem, _) = paper_example();
    let outcome = PowerAwareScheduler::default()
        .schedule_portfolio(&mut problem, 16)
        .unwrap();
    assert!(outcome.analysis.is_valid());
    assert_eq!(outcome.analysis.finish_time.as_secs(), 30);
}

#[test]
fn pipeline_is_deterministic_across_runs() {
    let run = || {
        let (mut problem, _) = paper_example();
        PowerAwareScheduler::default()
            .schedule(&mut problem)
            .unwrap()
            .schedule
    };
    assert_eq!(run(), run());
}

#[test]
fn charts_render_for_every_stage() {
    let (mut problem, _) = paper_example();
    let stages = PowerAwareScheduler::default()
        .schedule_stages(&mut problem)
        .unwrap();
    for outcome in [&stages.time_valid, &stages.power_valid, &stages.improved] {
        let chart = GanttChart::from_analysis(&problem, &outcome.schedule, &outcome.analysis);
        let ascii = render_ascii(&chart, &AsciiOptions::default());
        assert!(ascii.contains("== fig1-example =="));
        let svg = render_svg(&chart, &SvgOptions::default());
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>\n"));
    }
}

#[test]
fn every_task_keeps_its_min_max_windows_in_the_final_schedule() {
    let (mut problem, tasks) = paper_example();
    let outcome = PowerAwareScheduler::default()
        .schedule(&mut problem)
        .unwrap();
    let s = &outcome.schedule;
    // Spot-check the windows of Fig. 1 explicitly.
    assert!(s.start(tasks.b) - s.start(tasks.a) >= TimeSpan::from_secs(5));
    assert!(s.start(tasks.c) - s.start(tasks.a) <= TimeSpan::from_secs(40));
    assert!(s.start(tasks.h) - s.start(tasks.a) <= TimeSpan::from_secs(30));
    assert!(s.start(tasks.f) - s.start(tasks.d) <= TimeSpan::from_secs(35));
    assert!(s.start(tasks.i) - s.start(tasks.g) <= TimeSpan::from_secs(40));
}
