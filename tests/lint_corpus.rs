//! Lint corpus: every analyzer rule has a minimal PASDL witness under
//! `tests/lint_corpus/` that must make exactly that rule fire, and
//! the shipped example specs under `assets/` must stay error-clean.

use pas_lint::{lint_problem, LintCode, LintConfig, LintReport, Severity};
use pas_spec::parse_problem_spanned;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// One witness spec per rule. `PAS006` (non-positive delay) has no
/// witness: the PASDL front-end cannot construct such a task — the
/// rule only guards programmatically built problems.
const CORPUS: [(&str, LintCode); 15] = [
    ("pas001_task_over_budget.pasdl", LintCode::TaskOverBudget),
    ("pas002_self_loop.pasdl", LintCode::SelfLoop),
    ("pas003_duplicate_edge.pasdl", LintCode::DuplicateEdge),
    ("pas004_dangling_resource.pasdl", LintCode::DanglingResource),
    (
        "pas005_background_over_budget.pasdl",
        LintCode::BackgroundOverBudget,
    ),
    ("pas010_positive_cycle.pasdl", LintCode::PositiveCycle),
    ("pas011_redundant_edge.pasdl", LintCode::RedundantEdge),
    (
        "pas012_deadline_unreachable.pasdl",
        LintCode::DeadlineUnreachable,
    ),
    (
        "pas020_forced_overlap_power.pasdl",
        LintCode::ForcedOverlapPower,
    ),
    ("pas021_window_overload.pasdl", LintCode::WindowOverload),
    ("pas022_hopeless_pmin.pasdl", LintCode::HopelessUtilization),
    (
        "pas030_forced_resource_overlap.pasdl",
        LintCode::ForcedResourceOverlap,
    ),
    (
        "pas040_energy_window.pasdl",
        LintCode::EnergyInfeasibleWindow,
    ),
    (
        "pas041_demand_over_capacity.pasdl",
        LintCode::DemandOverCapacity,
    ),
    (
        "pas042_tightened_deadline.pasdl",
        LintCode::TightenedDeadlineMiss,
    ),
];

/// Feasible instances one notch away from the deep witnesses above.
/// The deep passes must stay silent on them: their certificates are
/// checker-validated before emission, so a diagnostic here would be a
/// provable false positive.
const NEAR_MISSES: [&str; 3] = [
    "near_miss_pas040.pasdl",
    "near_miss_pas041.pasdl",
    "near_miss_pas042.pasdl",
];

fn lint_file(path: &Path) -> LintReport {
    let source = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let spanned = parse_problem_spanned(&source)
        .unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()));
    lint_problem(&spanned.problem, &spanned.spans, &LintConfig::default())
}

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_corpus")
}

#[test]
fn every_corpus_spec_fires_its_code_with_spans() {
    for (file, code) in CORPUS {
        let report = lint_file(&corpus_dir().join(file));
        let found = report.diagnostics().iter().find(|d| d.code == code);
        let Some(d) = found else {
            panic!(
                "{file}: expected {code} but report was {:?}",
                report
                    .diagnostics()
                    .iter()
                    .map(|d| d.code.as_str())
                    .collect::<Vec<_>>()
            );
        };
        assert_eq!(d.severity, code.severity(), "{file}: severity drifted");
        assert!(
            d.primary_span().is_some(),
            "{file}: {code} carries no source span"
        );
    }
}

#[test]
fn corpus_covers_at_least_eight_distinct_codes() {
    let codes: BTreeSet<&str> = CORPUS.iter().map(|(_, c)| c.as_str()).collect();
    assert!(codes.len() >= 8, "only {} codes covered", codes.len());
}

#[test]
fn error_witnesses_are_error_level_rejects() {
    for (file, code) in CORPUS {
        let report = lint_file(&corpus_dir().join(file));
        if code.severity() == Severity::Error {
            assert!(
                report.has_errors(),
                "{file}: expected an error-level report"
            );
        }
    }
}

#[test]
fn shipped_specs_lint_error_clean() {
    let assets = Path::new(env!("CARGO_MANIFEST_DIR")).join("assets");
    let mut checked = 0;
    for entry in std::fs::read_dir(&assets).expect("assets/ directory") {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "pasdl") {
            let report = lint_file(&path);
            assert_eq!(
                report.error_count(),
                0,
                "{}: shipped spec has lint errors: {:?}",
                path.display(),
                report.diagnostics()
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 4,
        "expected the four shipped specs, saw {checked}"
    );
}

/// Parses a corpus spec and lints it, keeping the problem around for
/// certificate verification.
fn lint_file_with_problem(path: &Path) -> (impacct::core::Problem, LintReport) {
    let source = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let spanned = parse_problem_spanned(&source)
        .unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()));
    let report = lint_problem(&spanned.problem, &spanned.spans, &LintConfig::default());
    (spanned.problem, report)
}

#[test]
fn deep_witnesses_carry_verified_certificates() {
    let deep = [
        LintCode::EnergyInfeasibleWindow,
        LintCode::DemandOverCapacity,
        LintCode::TightenedDeadlineMiss,
    ];
    for (file, code) in CORPUS {
        if !deep.contains(&code) {
            continue;
        }
        let (problem, report) = lint_file_with_problem(&corpus_dir().join(file));
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code == code)
            .unwrap_or_else(|| panic!("{file}: {code} did not fire"));
        let cert = d
            .certificate
            .as_ref()
            .unwrap_or_else(|| panic!("{file}: {code} carries no certificate"));
        pas_lint::verify_certificate(&problem, cert)
            .unwrap_or_else(|e| panic!("{file}: certificate rejected: {e}"));
    }
}

#[test]
fn near_misses_stay_clean_of_deep_diagnostics() {
    for file in NEAR_MISSES {
        let report = lint_file(&corpus_dir().join(file));
        assert_eq!(
            report.error_count(),
            0,
            "{file}: near-miss negative must lint error-clean, got {:?}",
            report
                .diagnostics()
                .iter()
                .map(|d| d.code.as_str())
                .collect::<Vec<_>>()
        );
    }
}
