//! Property tests: scheduler invariants over randomized problems.
//!
//! The validity oracles in `pas-core` are implemented independently of
//! the schedulers (they re-derive everything from the graph and the
//! start times), so these properties are meaningful end-to-end checks.

use impacct::core::{analyze, is_time_valid, slack, slacks, PowerProfile, Schedule};
use impacct::graph::units::{Energy, Power, TimeSpan};
use impacct::graph::NodeId;
use impacct::sched::{
    compact_schedule, schedule_timing, PowerAwareScheduler, SchedulerConfig, SchedulerStats,
};
use impacct::workload::strategies::generator_configs;
use impacct::workload::{generate, GeneratorConfig, Topology};
use proptest::prelude::*;

fn arbitrary_generator_config() -> impl Strategy<Value = GeneratorConfig> {
    // Shared with the bench suites: pas-workload's own strategy.
    generator_configs(24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The timing scheduler's output is always time-valid (including
    /// resource serialization), whatever the topology.
    #[test]
    fn timing_scheduler_output_is_time_valid(cfg in arbitrary_generator_config()) {
        let mut problem = generate(&cfg);
        let mut stats = SchedulerStats::default();
        if let Ok(sigma) =
            schedule_timing(problem.graph_mut(), &SchedulerConfig::default(), &mut stats)
        {
            prop_assert!(is_time_valid(problem.graph(), &sigma));
            // ASAP schedules never have negative slack.
            for s in slacks(problem.graph(), &sigma) {
                prop_assert!(!s.is_negative());
            }
        }
    }

    /// The full pipeline either fails cleanly or returns a schedule
    /// that is time-valid AND within the power budget.
    #[test]
    fn pipeline_output_is_fully_valid(cfg in arbitrary_generator_config()) {
        let mut problem = generate(&cfg);
        if let Ok(outcome) = PowerAwareScheduler::default().schedule(&mut problem) {
            let a = analyze(&problem, &outcome.schedule);
            prop_assert!(a.timing_violations.is_empty(), "{:?}", a.timing_violations);
            prop_assert!(a.spikes.is_empty(), "peak {} budget {}",
                         a.peak_power, problem.constraints().p_max());
        }
    }

    /// Scheduling is a pure function of (problem, config): two runs
    /// agree bit for bit.
    #[test]
    fn pipeline_is_deterministic(cfg in arbitrary_generator_config()) {
        let run = || {
            let mut problem = generate(&cfg);
            PowerAwareScheduler::default()
                .schedule(&mut problem)
                .ok()
                .map(|o| o.schedule)
        };
        prop_assert_eq!(run(), run());
    }

    /// Delaying any task by exactly its slack keeps the schedule
    /// time-valid (the defining property of slack).
    #[test]
    fn delaying_by_slack_preserves_time_validity(cfg in arbitrary_generator_config()) {
        let mut problem = generate(&cfg);
        let mut stats = SchedulerStats::default();
        let Ok(sigma) =
            schedule_timing(problem.graph_mut(), &SchedulerConfig::default(), &mut stats)
        else { return Ok(()); };
        for v in problem.graph().task_ids() {
            let d = slack(problem.graph(), &sigma, v);
            if d.is_positive() && d < TimeSpan::from_secs(1_000_000) {
                let delayed = sigma.with_delayed(v, d);
                prop_assert!(
                    is_time_valid(problem.graph(), &delayed),
                    "task {v} slack {d} broke validity"
                );
            }
        }
    }

    /// Energy bookkeeping: cost above P_min plus capped free energy
    /// equals the total integral, for any profile and any level.
    #[test]
    fn energy_split_identity(cfg in arbitrary_generator_config(), level_mw in 0i64..30_000) {
        let mut problem = generate(&cfg);
        let mut stats = SchedulerStats::default();
        let Ok(sigma) =
            schedule_timing(problem.graph_mut(), &SchedulerConfig::default(), &mut stats)
        else { return Ok(()); };
        let profile = PowerProfile::of_schedule(problem.graph(), &sigma, Power::ZERO);
        let level = Power::from_watts_milli(level_mw);
        prop_assert_eq!(
            profile.energy_above(level) + profile.energy_capped(level),
            profile.total_energy()
        );
        // And the total equals the sum of task energies.
        let task_sum: Energy = problem.graph().tasks().map(|(_, t)| t.energy()).sum();
        prop_assert_eq!(profile.total_energy(), task_sum);
    }

    /// Compaction never invalidates a schedule and never increases
    /// the finish time.
    #[test]
    fn compaction_preserves_validity(cfg in arbitrary_generator_config()) {
        let mut problem = generate(&cfg);
        let Ok(outcome) = PowerAwareScheduler::default().schedule(&mut problem) else {
            return Ok(());
        };
        let before = outcome.schedule.finish_time(problem.graph());
        let compacted = compact_schedule(
            problem.graph(),
            outcome.schedule.clone(),
            problem.constraints().p_max(),
            problem.background_power(),
        );
        prop_assert!(is_time_valid(problem.graph(), &compacted));
        let profile =
            PowerProfile::of_schedule(problem.graph(), &compacted, problem.background_power());
        prop_assert!(profile.spikes(problem.constraints().p_max()).is_empty());
        prop_assert!(compacted.finish_time(problem.graph()) <= before);
    }

    /// Longest-path distances really are schedules: earliest start
    /// times from the anchor satisfy every edge.
    #[test]
    fn longest_paths_give_time_valid_asap(cfg in arbitrary_generator_config()) {
        let problem = generate(&cfg);
        let lp = impacct::graph::longest_path::single_source_longest_paths(
            problem.graph(),
            NodeId::ANCHOR,
        );
        let Ok(lp) = lp else { return Ok(()); };
        let sigma = Schedule::from_longest_paths(problem.graph(), &lp);
        // Edge constraints hold (resource overlap is allowed here —
        // serialization is the scheduler's job).
        let edge_ok = impacct::core::time_violations(problem.graph(), &sigma)
            .into_iter()
            .all(|v| matches!(v, impacct::core::TimingViolation::ResourceOverlap { .. }));
        prop_assert!(edge_ok);
    }
}

/// Non-proptest regression: the pipeline handles a problem where the
/// budget equals the single biggest task exactly (fully serial).
#[test]
fn exact_budget_forces_serial_schedule() {
    let mut problem = generate(&GeneratorConfig {
        seed: 99,
        tasks: 6,
        resources: 6,
        topology: Topology::Random,
        min_edge_probability: 0.0,
        max_window_probability: 0.0,
        p_max_factor: 0.0, // clamped up to the biggest single task
        p_min_fraction: 0.0,
        ..Default::default()
    });
    let outcome = PowerAwareScheduler::default()
        .schedule(&mut problem)
        .unwrap();
    let a = analyze(&problem, &outcome.schedule);
    assert!(a.is_valid());
    // Peak never exceeds the biggest task's power.
    let biggest = problem
        .graph()
        .tasks()
        .map(|(_, t)| t.power())
        .max()
        .unwrap();
    assert!(a.peak_power <= biggest);
}
