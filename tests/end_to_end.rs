//! Integration: PASDL round trips, editing, and runtime repertoire —
//! the workflows a downstream user of the library would assemble.

use impacct::core::{analyze, is_time_valid};
use impacct::gantt::ChartEditor;
use impacct::graph::units::{Power, Time};
use impacct::rover::{build_rover_problem, EnvCase};
use impacct::sched::{PowerAwareScheduler, ScheduleRepertoire};
use impacct::spec::{parse_problem, parse_schedule, print_problem, print_schedule};
use impacct::workload::{generate, GeneratorConfig};

/// Print → parse → schedule → print → parse → validate, starting from
/// a generated problem: the whole text pipeline is lossless enough to
/// schedule identically.
#[test]
fn pasdl_round_trip_preserves_scheduling() {
    let problem = generate(&GeneratorConfig {
        seed: 2024,
        tasks: 14,
        resources: 4,
        ..Default::default()
    });
    let text = print_problem(&problem);
    let mut reparsed = parse_problem(&text).unwrap();
    assert_eq!(reparsed.graph().num_tasks(), problem.graph().num_tasks());

    let mut original = problem.clone();
    let a = PowerAwareScheduler::default().schedule(&mut original);
    let b = PowerAwareScheduler::default().schedule(&mut reparsed);
    match (a, b) {
        (Ok(x), Ok(y)) => {
            // Task order is preserved by the printer, so the
            // schedules must be identical.
            assert_eq!(x.schedule, y.schedule);
            let sched_text = print_schedule("x", &original, &x.schedule);
            let (_, parsed) = parse_schedule(&sched_text, &original).unwrap();
            assert_eq!(parsed, x.schedule);
            assert!(analyze(&original, &parsed).is_valid());
        }
        (Err(_), Err(_)) => {} // consistently unschedulable is fine
        (a, b) => panic!("round trip changed schedulability: {a:?} vs {b:?}"),
    }
}

/// The rover problem survives the text format too (quoted names with
/// `#` in them, thermal resources, background power).
#[test]
fn rover_problem_round_trips_through_pasdl() {
    let rover = build_rover_problem(EnvCase::Typical, 2);
    let text = print_problem(&rover.problem);
    let reparsed = parse_problem(&text).unwrap();
    assert_eq!(reparsed.graph().num_tasks(), 22);
    assert_eq!(reparsed.background_power(), EnvCase::Typical.cpu_power());
    assert!(reparsed.graph().task_by_name("drive2#1").is_some());
}

/// Drag-and-lock editing composes with rescheduling: lock two bins,
/// re-run the scheduler, locked bins stay put and the result is valid.
#[test]
fn edit_lock_then_reschedule() {
    let mut rover = build_rover_problem(EnvCase::Best, 1);
    let outcome = PowerAwareScheduler::default()
        .schedule(&mut rover.problem)
        .unwrap();
    let hazard1 = rover.iterations[0].step1.hazard;
    let drive2 = rover.iterations[0].step2.drive;

    let mut editor = ChartEditor::new(rover.problem, outcome.schedule);
    let pinned_hazard = editor.schedule().start(hazard1);
    let pinned_drive = editor.schedule().start(drive2);
    editor.lock(hazard1);
    editor.lock(drive2);
    let (mut problem, _) = editor.into_parts();

    let re = PowerAwareScheduler::default()
        .schedule(&mut problem)
        .unwrap();
    assert_eq!(re.schedule.start(hazard1), pinned_hazard);
    assert_eq!(re.schedule.start(drive2), pinned_drive);
    assert!(re.analysis.is_valid());
}

/// A drag into an invalid position is rejected without corrupting the
/// session; a drag into a valid position commits.
#[test]
fn editor_guards_validity() {
    let (mut problem, tasks) = impacct::core::example::paper_example();
    let outcome = PowerAwareScheduler::default()
        .schedule(&mut problem)
        .unwrap();
    let mut editor = ChartEditor::new(problem, outcome.schedule);

    // b before its predecessor a: rejected.
    let before = editor.schedule().clone();
    assert!(editor.drag(tasks.b, Time::from_secs(0)).is_err());
    assert_eq!(editor.schedule(), &before);
    assert!(is_time_valid(editor.problem().graph(), editor.schedule()));
}

/// Build the §5.3 repertoire from all three rover cases and select
/// under a sweep of environments.
#[test]
fn repertoire_selects_sensible_schedules() {
    let mut table = ScheduleRepertoire::new();
    for case in EnvCase::ALL {
        let mut rover = build_rover_problem(case, 1);
        let outcome = PowerAwareScheduler::default()
            .schedule(&mut rover.problem)
            .unwrap();
        table.insert(
            case.label(),
            rover.problem.graph(),
            outcome.schedule,
            rover.problem.background_power(),
        );
    }
    assert_eq!(table.len(), 3);

    // Plenty of power: the fast best-case schedule wins.
    let rich = table
        .select(
            Power::from_watts_milli(24_900),
            Power::from_watts_milli(14_900),
        )
        .unwrap();
    assert_eq!(rich.name(), "best");
    assert_eq!(rich.finish_time(), Time::from_secs(50));

    // Note: each entry's profile is computed with its own case's
    // task powers, so under a 19 W budget the (cooler) typical-case
    // schedule still fits; push the budget to the serial peak to
    // force the worst-case schedule.
    let poor = table
        .select(
            Power::from_watts_milli(17_500),
            Power::from_watts_milli(9_000),
        )
        .unwrap();
    assert_eq!(poor.name(), "worst");
    assert_eq!(poor.finish_time(), Time::from_secs(75));

    // Below even the serial peak: nothing fits.
    assert!(table
        .select(Power::from_watts(15), Power::from_watts(9))
        .is_none());
}

/// The committed PASDL assets parse and schedule; the rover asset
/// reproduces its Table 3 row from the text file alone.
#[test]
fn committed_assets_are_valid_and_schedulable() {
    for name in [
        "assets/paper_example.pasdl",
        "assets/rover_best.pasdl",
        "assets/rover_typical.pasdl",
        "assets/rover_worst.pasdl",
    ] {
        let text = std::fs::read_to_string(name).unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut problem = parse_problem(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let outcome = PowerAwareScheduler::default()
            .schedule(&mut problem)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(outcome.analysis.is_valid(), "{name}");
    }

    // The worst-case rover from the text file hits the exact paper
    // numbers, proving the format captures the whole problem.
    let text = std::fs::read_to_string("assets/rover_worst.pasdl").unwrap();
    let mut problem = parse_problem(&text).unwrap();
    let outcome = PowerAwareScheduler::default()
        .schedule(&mut problem)
        .unwrap();
    assert_eq!(outcome.analysis.finish_time.as_secs(), 75);
    assert_eq!(outcome.analysis.energy_cost.as_millijoules(), 388_000);
}

/// The umbrella crate's facade modules are all wired up.
#[test]
fn umbrella_reexports_work() {
    let _ = impacct::graph::ConstraintGraph::new();
    let _ = impacct::core::PowerConstraints::unconstrained();
    let _ = impacct::sched::SchedulerConfig::default();
    let _ = impacct::mission::Scenario::table4();
    let _ = impacct::workload::GeneratorConfig::default();
}
