//! Integration: Table 3 of the paper — JPL baseline (exact targets)
//! vs our power-aware schedules (shape + pinned deterministic values).

use impacct::core::analyze;
use impacct::graph::units::{Energy, Time};
use impacct::rover::{jpl_schedule, power_aware_schedule, table3, EnvCase};
use impacct::sched::SchedulerConfig;

/// Paper Table 3, JPL column — derived exactly from Tables 1–2.
#[test]
fn jpl_column_is_exact() {
    let expect = [
        (EnvCase::Best, 0i64, "60.2%", 75i64),
        (EnvCase::Typical, 55_000, "90.8%", 75),
        (EnvCase::Worst, 388_000, "100%", 75),
    ];
    for (case, ec_mj, rho, tau) in expect {
        let (rover, schedule) = jpl_schedule(case).unwrap();
        let a = analyze(&rover.problem, &schedule);
        assert_eq!(a.energy_cost, Energy::from_millijoules(ec_mj), "{case}");
        assert_eq!(a.utilization.to_string(), rho, "{case}");
        assert_eq!(a.finish_time, Time::from_secs(tau), "{case}");
        assert!(a.is_valid(), "{case}");
    }
}

/// The reproduction contract: the power-aware column's *shape*.
/// Finish times actually land exactly on the paper's 50/60/75 s with
/// the default deterministic seed, so they are pinned here; energy
/// matches the paper exactly in the typical and worst cases.
#[test]
fn power_aware_column_matches_paper_shape() {
    let cfg = SchedulerConfig::default();
    let expect_tau = [
        (EnvCase::Best, 50i64),
        (EnvCase::Typical, 60),
        (EnvCase::Worst, 75),
    ];
    for (case, tau) in expect_tau {
        let (rover, schedule) = power_aware_schedule(case, &cfg).unwrap();
        let a = analyze(&rover.problem, &schedule);
        assert!(a.is_valid(), "{case}");
        assert_eq!(a.finish_time, Time::from_secs(tau), "{case} finish time");
    }

    // Exact energy matches where the paper's model is fully pinned.
    let (r, s) = power_aware_schedule(EnvCase::Typical, &cfg).unwrap();
    assert_eq!(
        analyze(&r.problem, &s).energy_cost,
        Energy::from_joules(147),
        "typical-case energy cost matches the paper exactly"
    );
    let (r, s) = power_aware_schedule(EnvCase::Worst, &cfg).unwrap();
    let a = analyze(&r.problem, &s);
    assert_eq!(a.energy_cost, Energy::from_joules(388));
    assert!(a.utilization.is_one());
}

/// The paper's headline: "speeds up the rover's movement by up to 50%
/// in the best case and 25% in the typical case".
#[test]
fn speedups_match_the_papers_percentages() {
    let cfg = SchedulerConfig::default();
    let speedup = |case| {
        let (jr, js) = jpl_schedule(case).unwrap();
        let (pr, ps) = power_aware_schedule(case, &cfg).unwrap();
        let jt = analyze(&jr.problem, &js).finish_time.as_secs() as f64;
        let pt = analyze(&pr.problem, &ps).finish_time.as_secs() as f64;
        (jt - pt) / pt * 100.0
    };
    assert!(
        (speedup(EnvCase::Best) - 50.0).abs() < 1e-9,
        "75 → 50 s is +50%"
    );
    assert!(
        (speedup(EnvCase::Typical) - 25.0).abs() < 1e-9,
        "75 → 60 s is +25%"
    );
    assert_eq!(speedup(EnvCase::Worst), 0.0);
}

#[test]
fn power_aware_trades_battery_for_speed_in_good_light() {
    // "Our schedules … speed up the rover's movement … while drawing
    // more costly energy from the battery."
    let cfg = SchedulerConfig::default();
    for case in [EnvCase::Best, EnvCase::Typical] {
        let (jr, js) = jpl_schedule(case).unwrap();
        let (pr, ps) = power_aware_schedule(case, &cfg).unwrap();
        let j = analyze(&jr.problem, &js);
        let p = analyze(&pr.problem, &ps);
        assert!(p.finish_time < j.finish_time, "{case}: faster");
        assert!(
            p.energy_cost > j.energy_cost,
            "{case}: costlier per iteration"
        );
        assert!(
            p.utilization > j.utilization,
            "{case}: better free-power use"
        );
    }
}

#[test]
fn table3_rows_are_internally_consistent() {
    let rows = table3(&SchedulerConfig::default()).unwrap();
    assert_eq!(rows.len(), 3);
    for row in &rows {
        assert_eq!(row.jpl.case, row.power_aware.case);
        assert!(row.power_aware.finish_time <= row.jpl.finish_time);
        assert!(row.power_aware.utilization >= row.jpl.utilization);
    }
}
