//! Integration: the runtime dispatcher executing scheduler output.

use impacct::exec::{execute, overrun_tolerance, JitterModel};
use impacct::rover::{build_rover_problem, jpl_schedule, EnvCase};
use impacct::sched::PowerAwareScheduler;

#[test]
fn nominal_execution_reproduces_every_rover_plan() {
    for case in EnvCase::ALL {
        let mut rover = build_rover_problem(case, 1);
        let outcome = PowerAwareScheduler::default()
            .schedule(&mut rover.problem)
            .unwrap();
        let durations = JitterModel::nominal_durations(rover.problem.graph());
        let trace = execute(&rover.problem, &outcome.schedule, &durations);
        assert!(trace.is_clean(), "{case}");
        assert_eq!(trace.finish_time, outcome.analysis.finish_time, "{case}");
        for (t, start) in outcome.schedule.iter() {
            assert_eq!(trace.starts[t.index()], start, "{case}: {t} moved");
        }
    }
}

#[test]
fn schedules_absorb_small_overruns() {
    for case in EnvCase::ALL {
        let mut rover = build_rover_problem(case, 1);
        let outcome = PowerAwareScheduler::default()
            .schedule(&mut rover.problem)
            .unwrap();
        let tolerance = overrun_tolerance(&rover.problem, &outcome.schedule, 100);
        assert!(
            tolerance >= Some(5),
            "{case}: expected at least +5% worst-case overrun margin, got {tolerance:?}"
        );
    }
}

#[test]
fn serial_baseline_is_more_jitter_tolerant_in_good_light() {
    // Nothing overlaps in the serial schedule, so only heater windows
    // can break; with the best case's generous power headroom it
    // absorbs overruns the parallel schedule cannot.
    let mut rover = build_rover_problem(EnvCase::Best, 1);
    let ours = PowerAwareScheduler::default()
        .schedule(&mut rover.problem)
        .unwrap();
    let ours_tol = overrun_tolerance(&rover.problem, &ours.schedule, 100).unwrap_or(0);

    let (jpl_rover, jpl) = jpl_schedule(EnvCase::Best).unwrap();
    let jpl_tol = overrun_tolerance(&jpl_rover.problem, &jpl, 100).unwrap_or(0);
    assert!(
        jpl_tol > ours_tol,
        "serial {jpl_tol}% vs power-aware {ours_tol}%"
    );
}

#[test]
fn sampled_jitter_never_slips_catastrophically() {
    let mut rover = build_rover_problem(EnvCase::Typical, 1);
    let outcome = PowerAwareScheduler::default()
        .schedule(&mut rover.problem)
        .unwrap();
    let planned = outcome.analysis.finish_time;
    for seed in 0..64u64 {
        let durations = JitterModel::symmetric(seed, 10).draw_durations(rover.problem.graph());
        let trace = execute(&rover.problem, &outcome.schedule, &durations);
        // Even when a window or budget faults, the dispatcher keeps
        // making progress and the slip stays bounded by the jitter.
        let slip = trace.slip(planned).as_secs();
        assert!(
            (-7..=7).contains(&slip),
            "seed {seed}: slip {slip}s out of bounds"
        );
    }
}
