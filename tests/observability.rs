//! End-to-end observability guarantees: the recorded event stream is
//! a faithful projection of the pipeline's own statistics, observation
//! never perturbs scheduling, and traces survive a JSONL round trip.

use impacct::core::example::paper_example;
use impacct::exec::{execute, execute_observed, JitterModel};
use impacct::obs::{
    parse_jsonl, CountingObserver, EventCounts, JsonlWriter, NullObserver, RecordingObserver,
    StageKind, Tee, TraceEvent,
};
use impacct::sched::{PowerAwareScheduler, SchedulerStats};

/// The recorded event stream of an observed pipeline run replays to
/// exactly the `SchedulerStats` the pipeline itself reports.
#[test]
fn recorded_stream_replays_to_pipeline_stats() {
    let (mut problem, _) = paper_example();
    let mut rec = RecordingObserver::new();
    let outcome = PowerAwareScheduler::default()
        .schedule_with(&mut problem, &mut rec)
        .expect("paper example schedules");

    let events = rec.into_events();
    assert!(!events.is_empty(), "an observed run must emit events");
    let replayed: SchedulerStats = EventCounts::from_events(&events).into();
    assert_eq!(replayed, outcome.stats);

    // The stream brackets every pipeline stage, guard first, in order.
    let starts: Vec<StageKind> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::StageStarted { stage } => Some(*stage),
            _ => None,
        })
        .collect();
    assert_eq!(
        starts,
        [StageKind::Lint, StageKind::MaxPower, StageKind::MinPower]
    );
}

/// A `NullObserver` run is byte-identical to an observed run — the
/// observer can only watch, never steer.
#[test]
fn null_observer_runs_byte_identical_to_observed_runs() {
    let scheduler = PowerAwareScheduler::default();

    let (mut plain_problem, _) = paper_example();
    let plain = scheduler
        .schedule(&mut plain_problem)
        .expect("plain run schedules");

    let (mut null_problem, _) = paper_example();
    let null = scheduler
        .schedule_with(&mut null_problem, &mut NullObserver)
        .expect("null-observed run schedules");

    let (mut observed_problem, _) = paper_example();
    let mut rec = RecordingObserver::new();
    let observed = scheduler
        .schedule_with(&mut observed_problem, &mut rec)
        .expect("recorded run schedules");

    assert_eq!(format!("{plain:?}"), format!("{null:?}"));
    assert_eq!(format!("{plain:?}"), format!("{observed:?}"));
}

/// Dispatcher observation is equally inert, and its events tally the
/// executed tasks.
#[test]
fn observed_dispatch_matches_plain_execution() {
    let (mut problem, _) = paper_example();
    let outcome = PowerAwareScheduler::default()
        .schedule(&mut problem)
        .expect("paper example schedules");
    let durations = JitterModel::nominal_durations(problem.graph());

    let plain = execute(&problem, &outcome.schedule, &durations);
    let mut rec = RecordingObserver::new();
    let observed = execute_observed(&problem, &outcome.schedule, &durations, &mut rec);
    assert_eq!(plain, observed);

    let counts = EventCounts::from_events(rec.events());
    let n = problem.graph().num_tasks() as u64;
    assert_eq!(counts.tasks_dispatched, n);
    assert_eq!(counts.tasks_completed, n);
    assert_eq!(counts.window_faults, 0);
}

/// Every emitted event serializes to a JSONL line that parses back to
/// the identical event.
#[test]
fn trace_round_trips_through_jsonl() {
    let (mut problem, _) = paper_example();
    let mut rec = RecordingObserver::new();
    let mut jsonl = JsonlWriter::new(Vec::new());
    PowerAwareScheduler::default()
        .schedule_stages_with(&mut problem, &mut Tee(&mut rec, &mut jsonl))
        .expect("paper example schedules");

    let events = rec.into_events();
    let text = String::from_utf8(jsonl.into_inner().expect("no deferred I/O error")).unwrap();
    assert_eq!(text.lines().count(), events.len());
    assert_eq!(parse_jsonl(&text).expect("every line parses"), events);
}

/// Observer that appends a tag to a shared log on every event, for
/// asserting fan-out order.
struct Logging(
    &'static str,
    std::rc::Rc<std::cell::RefCell<Vec<&'static str>>>,
);

impl impacct::obs::Observer for Logging {
    fn on_event(&mut self, _event: &TraceEvent) {
        self.1.borrow_mut().push(self.0);
    }
}

/// `Tee` delivers every event to its first sink before its second, and
/// nested tees preserve left-to-right order.
#[test]
fn tee_fans_out_in_declaration_order() {
    let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let mut tee = Tee(
        Logging("a", log.clone()),
        Tee(Logging("b", log.clone()), Logging("c", log.clone())),
    );

    let (mut problem, _) = paper_example();
    PowerAwareScheduler::default()
        .schedule_with(&mut problem, &mut tee)
        .expect("paper example schedules");

    let log = log.borrow();
    assert!(!log.is_empty(), "an observed run must emit events");
    assert_eq!(log.len() % 3, 0, "every event reaches all three sinks");
    for chunk in log.chunks(3) {
        assert_eq!(chunk, ["a", "b", "c"]);
    }
}

/// A bounded `RecordingObserver` keeps exactly the last `capacity`
/// events of a pipeline run and tallies the evicted remainder.
#[test]
fn bounded_recorder_wraps_and_keeps_the_tail() {
    let (mut full_problem, _) = paper_example();
    let mut full = RecordingObserver::new();
    PowerAwareScheduler::default()
        .schedule_with(&mut full_problem, &mut full)
        .expect("paper example schedules");
    let all = full.into_events();
    assert!(all.len() > 8, "need enough events to overflow the ring");

    let cap = 8;
    let (mut ring_problem, _) = paper_example();
    let mut ring = RecordingObserver::with_capacity(cap);
    PowerAwareScheduler::default()
        .schedule_with(&mut ring_problem, &mut ring)
        .expect("paper example schedules");

    assert_eq!(ring.len(), cap);
    assert_eq!(ring.dropped(), (all.len() - cap) as u64);
    let tail: Vec<TraceEvent> = all[all.len() - cap..].to_vec();
    assert_eq!(ring.into_events(), tail);
}

/// A `CountingObserver` teed beside a recorder tallies exactly as many
/// events as the recorder captures on a full pipeline run.
#[test]
fn counting_observer_total_matches_recorded_event_count() {
    let (mut problem, _) = paper_example();
    let mut rec = RecordingObserver::new();
    let mut counter = CountingObserver::new();
    PowerAwareScheduler::default()
        .schedule_stages_with(&mut problem, &mut Tee(&mut rec, &mut counter))
        .expect("paper example schedules");

    let counts = counter.counts();
    assert_eq!(counts.total, rec.len() as u64);
    assert_eq!(counts, EventCounts::from_events(rec.events()));
}
