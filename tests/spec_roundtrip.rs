//! Printer round-trip over every shipped PASDL spec: parsing a file,
//! printing it, and reparsing must reproduce the same problem —
//! names, tasks, resources, budgets, deadline, corners and
//! user-visible constraint edges.

use pas_core::Problem;
use pas_graph::EdgeKind;
use pas_spec::{parse_problem_full, print_problem_full};
use std::path::Path;

fn user_edges(p: &Problem) -> Vec<(usize, usize, bool, i64)> {
    let mut edges: Vec<_> = p
        .graph()
        .edges()
        .filter(|(_, e)| matches!(e.kind(), EdgeKind::MinSeparation | EdgeKind::MaxSeparation))
        .map(|(_, e)| {
            (
                e.from().index(),
                e.to().index(),
                e.kind() == EdgeKind::MinSeparation,
                e.weight().as_secs(),
            )
        })
        .collect();
    edges.sort();
    edges
}

#[test]
fn every_shipped_spec_round_trips_through_the_printer() {
    let assets = Path::new(env!("CARGO_MANIFEST_DIR")).join("assets");
    let mut checked = 0;
    for entry in std::fs::read_dir(&assets).expect("assets/ directory") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "pasdl") {
            continue;
        }
        let source = std::fs::read_to_string(&path).unwrap();
        let first =
            parse_problem_full(&source).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let printed = print_problem_full(&first.problem, Some(&first.ranges));
        let second = parse_problem_full(&printed)
            .unwrap_or_else(|e| panic!("{}: reparse of printed form: {e}", path.display()));

        let (p, q) = (&first.problem, &second.problem);
        let label = path.display();
        assert_eq!(p.name(), q.name(), "{label}: name");
        assert_eq!(p.constraints(), q.constraints(), "{label}: budgets");
        assert_eq!(
            p.background_power(),
            q.background_power(),
            "{label}: background"
        );
        assert_eq!(p.deadline(), q.deadline(), "{label}: deadline");
        assert_eq!(
            p.graph().num_resources(),
            q.graph().num_resources(),
            "{label}: resources"
        );
        assert_eq!(
            p.graph().num_tasks(),
            q.graph().num_tasks(),
            "{label}: tasks"
        );
        for (id, task) in p.graph().tasks() {
            let other = q.graph().task(id);
            assert_eq!(task.name(), other.name(), "{label}: task name");
            assert_eq!(
                task.delay(),
                other.delay(),
                "{label}: {} delay",
                task.name()
            );
            assert_eq!(
                task.power(),
                other.power(),
                "{label}: {} power",
                task.name()
            );
            assert_eq!(
                p.graph().resource(task.resource()).name(),
                q.graph().resource(other.resource()).name(),
                "{label}: {} resource",
                task.name()
            );
        }
        assert_eq!(user_edges(p), user_edges(q), "{label}: constraint edges");
        assert_eq!(first.ranges, second.ranges, "{label}: power corners");
        checked += 1;
    }
    assert!(
        checked >= 4,
        "expected the four shipped specs, saw {checked}"
    );
}
