//! Golden test: the causal explanations for the paper example's
//! timing-only schedule (Fig. 2) are locked byte-for-byte.
//!
//! Regenerate with `BLESS=1 cargo test --test golden_explain` after an
//! intentional format change, and review the diff like any other code.

use impacct::core::example::paper_example;
use impacct::obs::{RecordingObserver, StageKind};
use impacct::replay::{explain, Replay};
use impacct::sched::PowerAwareScheduler;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/explain_paper_fig2.txt"
);

#[test]
fn paper_fig2_explanations_match_the_golden_file() {
    let (mut problem, _) = paper_example();
    let original = problem.clone();

    let mut rec = RecordingObserver::new();
    PowerAwareScheduler::default()
        .schedule_timing_only_with(&mut problem, &mut rec)
        .expect("paper example schedules");
    let replay = Replay::from_events(rec.into_events());

    let mut actual = String::new();
    for (task, _) in original.graph().tasks() {
        let explanation =
            explain(&original, &replay, task, StageKind::Timing).expect("every task is bound");
        actual.push_str(&explanation.render_human(&original));
        actual.push('\n');
    }

    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN, &actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(GOLDEN).expect("golden file exists");
    assert_eq!(
        actual, expected,
        "explanations drifted from the golden file; \
         run with BLESS=1 to regenerate after an intentional change"
    );
}
