//! Property tests for the static analyzer: lint errors are *proofs*
//! of scheduler failure, and lint never falsely rejects a schedulable
//! problem.
//!
//! Soundness direction: sabotaged instances (known-infeasible by
//! construction) must both carry an error-level lint finding and
//! actually defeat the schedulers when the guard is bypassed.
//! Completeness direction (no false positives): generated instances
//! and every shipped model lint clean at error level, so the
//! default-on guard never rejects anything the pipeline could have
//! scheduled.

use impacct::core::{analyze, example::paper_example};
use impacct::lint::{lint, LintCode};
use impacct::rover::{build_rover_problem, EnvCase};
use impacct::sched::{
    schedule_timing, PowerAwareScheduler, ScheduleError, SchedulerConfig, SchedulerStats,
};
use impacct::workload::strategies::generator_configs;
use impacct::workload::{generate, sabotage, Sabotage};
use proptest::prelude::*;

fn sabotages() -> impl Strategy<Value = Sabotage> {
    prop_oneof![
        Just(Sabotage::OverloadTask),
        Just(Sabotage::ContradictoryWindow),
        Just(Sabotage::ForcedResourceOverlap),
    ]
}

/// [`Sabotage::ForcedResourceOverlap`] needs a same-resource task
/// pair; random configs may map every task to its own resource.
/// Substitute the always-applicable contradictory window then.
fn applicable(kind: Sabotage, problem: &impacct::core::Problem) -> Sabotage {
    let g = problem.graph();
    let has_pair = g
        .task_ids()
        .any(|u| g.task_ids().any(|v| u < v && g.same_resource(u, v)));
    if kind == Sabotage::ForcedResourceOverlap && !has_pair {
        Sabotage::ContradictoryWindow
    } else {
        kind
    }
}

/// A bounded scheduler with the lint guard bypassed, so failures come
/// from the search itself, not the guard under test.
fn unguarded() -> PowerAwareScheduler {
    PowerAwareScheduler::new(SchedulerConfig {
        lint_guard: false,
        max_backtracks: 200,
        ..SchedulerConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Timing-class lint errors (positive cycle, forced resource
    /// overlap) defeat the raw timing scheduler — no guard involved.
    #[test]
    fn timing_lint_errors_defeat_the_timing_scheduler(
        cfg in generator_configs(16),
        timing_kind in prop_oneof![
            Just(Sabotage::ContradictoryWindow),
            Just(Sabotage::ForcedResourceOverlap),
        ],
        seed in 0u64..1_000,
    ) {
        let mut problem = generate(&cfg);
        let timing_kind = applicable(timing_kind, &problem);
        sabotage(&mut problem, timing_kind, seed);
        let report = lint(&problem);
        prop_assert!(report.has_errors(), "{timing_kind:?} left no lint error");
        prop_assert!(
            report.diagnostics().iter().any(|d| d.code.implies_scheduler_failure()),
            "{timing_kind:?} finding does not prove failure"
        );
        let mut stats = SchedulerStats::default();
        let result =
            schedule_timing(problem.graph_mut(), &SchedulerConfig::default(), &mut stats);
        prop_assert!(result.is_err(), "{timing_kind:?}: timing scheduler succeeded");
    }

    /// Every sabotage kind defeats the full (unguarded, bounded)
    /// pipeline, and the guard-on pipeline rejects it *before*
    /// searching.
    #[test]
    fn sabotaged_problems_fail_with_and_without_the_guard(
        cfg in generator_configs(12),
        kind in sabotages(),
        seed in 0u64..1_000,
    ) {
        let mut problem = generate(&cfg);
        let kind = applicable(kind, &problem);
        sabotage(&mut problem, kind, seed);

        let mut unguarded_problem = problem.clone();
        prop_assert!(
            unguarded().schedule(&mut unguarded_problem).is_err(),
            "{kind:?}: unguarded pipeline found a schedule"
        );

        let guarded = PowerAwareScheduler::default().schedule(&mut problem);
        prop_assert!(
            matches!(guarded, Err(ScheduleError::LintRejected { .. })),
            "{kind:?}: guard did not early-reject"
        );
    }

    /// No false positives: generated (unsabotaged) instances never
    /// carry an error-level finding that proves scheduler failure, so
    /// the default-on guard is invisible on them; and whenever the
    /// pipeline succeeds, the independent validity oracle agrees.
    #[test]
    fn lint_clean_schedules_pass_the_oracle(cfg in generator_configs(20)) {
        let mut problem = generate(&cfg);
        let report = lint(&problem);
        prop_assert!(
            !report.diagnostics().iter()
                .any(|d| d.code.implies_scheduler_failure()
                     && d.severity == impacct::lint::Severity::Error),
            "generator produced a provably infeasible instance: {:?}",
            report.diagnostics()
        );
        match PowerAwareScheduler::default().schedule(&mut problem) {
            Ok(outcome) => {
                let a = analyze(&problem, &outcome.schedule);
                prop_assert!(a.timing_violations.is_empty(), "{:?}", a.timing_violations);
                prop_assert!(a.spikes.is_empty(), "peak {}", a.peak_power);
            }
            Err(e) => prop_assert!(
                !matches!(e, ScheduleError::LintRejected { .. }),
                "guard rejected a generated instance: {e}"
            ),
        }
    }
}

/// Deterministic zero-false-positive check over every shipped model:
/// the paper's 9-task example and the three rover cases are all
/// schedulable, so lint must not report a single error on them.
#[test]
fn shipped_models_lint_error_clean() {
    let (example, _) = paper_example();
    let mut models = vec![("paper_example".to_string(), example)];
    for case in EnvCase::ALL {
        models.push((
            format!("rover_{}", case.label()),
            build_rover_problem(case, 1).problem,
        ));
    }
    for (name, problem) in models {
        let report = lint(&problem);
        assert_eq!(
            report.error_count(),
            0,
            "{name}: {:?}",
            report.diagnostics()
        );
        // And the guard therefore schedules them untouched.
        let mut p = problem.clone();
        PowerAwareScheduler::default()
            .schedule(&mut p)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

/// The witness corpus promise, programmatically: every code that
/// claims to prove scheduler failure is error-level.
#[test]
fn failure_proving_codes_are_error_level() {
    for code in LintCode::ALL {
        if code.implies_scheduler_failure() {
            assert_eq!(
                code.severity(),
                impacct::lint::Severity::Error,
                "{code} proves failure but is not an error"
            );
        }
    }
}

/// Deterministic 256-problem sweep of the deep abstract-interpretation
/// passes, both directions at once.
///
/// Zero false positives: each generated instance is scheduled once
/// (unguarded, no deadline) and the achieved finish time becomes the
/// declared deadline — an existence witness, so deep lint must stay
/// error-clean at exactly that deadline.
///
/// Certified rejections: the instance is then re-broken with a
/// deadline-based sabotage (resource packing where applicable, energy
/// starvation otherwise). The deep passes must reject it with a
/// `PAS04x` error whose certificate the independent zero-trust
/// checker accepts; the guard-on pipeline must early-reject; and for
/// the packing kind the unguarded pipeline still "succeeds" — past
/// the deadline — proving the miss is invisible to the scheduler.
#[test]
fn deep_lint_sweep_256_zero_false_positives_with_certified_rejections() {
    use impacct::lint::verify_certificate;
    use impacct::workload::{
        can_energy_starve, can_pack_resource, energy_starved_deadline, packed_resource_deadline,
        GeneratorConfig, Topology,
    };

    let mut scheduled = 0usize;
    let mut certified = 0usize;
    for seed in 0..256u64 {
        let cfg = GeneratorConfig {
            seed: 0xDEE9_1137 ^ seed,
            tasks: 8 + (seed % 9) as usize,
            resources: 2 + (seed % 3) as usize,
            topology: match seed % 3 {
                0 => Topology::Layered {
                    layers: 2 + (seed % 3) as usize,
                },
                1 => Topology::Chains {
                    chains: 2 + (seed % 2) as usize,
                },
                _ => Topology::Random,
            },
            ..GeneratorConfig::default()
        };
        let problem = generate(&cfg);

        // Witness schedule: no deadline, guard irrelevant.
        let mut witness = problem.clone();
        let Ok(outcome) = PowerAwareScheduler::new(SchedulerConfig {
            lint_guard: false,
            ..SchedulerConfig::default()
        })
        .schedule(&mut witness) else {
            continue; // power-tight corner the generator dialed up
        };
        scheduled += 1;
        let finish = outcome.schedule.finish_time(problem.graph());

        // The witness proves the deadline `finish` is feasible, so
        // the deep passes must not reject it.
        let mut at_witness = problem.clone();
        at_witness.set_deadline(Some(finish));
        let report = lint(&at_witness);
        assert_eq!(
            report.error_count(),
            0,
            "seed {seed}: false positive at the witnessed deadline {finish}: {:?}",
            report
                .diagnostics()
                .iter()
                .map(|d| d.code.as_str())
                .collect::<Vec<_>>()
        );

        // Certified-rejection direction, where a deadline sabotage
        // applies.
        let mut broken = problem.clone();
        let packed = if can_pack_resource(&broken) {
            packed_resource_deadline(&mut broken, seed);
            true
        } else if can_energy_starve(&broken) {
            energy_starved_deadline(&mut broken, seed);
            false
        } else {
            continue;
        };
        let report = lint(&broken);
        let deep: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| {
                matches!(
                    d.code,
                    LintCode::EnergyInfeasibleWindow
                        | LintCode::DemandOverCapacity
                        | LintCode::TightenedDeadlineMiss
                )
            })
            .collect();
        assert!(
            !deep.is_empty(),
            "seed {seed}: deadline sabotage escaped the deep passes"
        );
        for d in &deep {
            let cert = d
                .certificate
                .as_ref()
                .unwrap_or_else(|| panic!("seed {seed}: {} without certificate", d.code));
            verify_certificate(&broken, cert)
                .unwrap_or_else(|e| panic!("seed {seed}: {} certificate rejected: {e}", d.code));
        }
        certified += 1;

        // Guard on: early reject, no search.
        let guarded = PowerAwareScheduler::default().schedule(&mut broken.clone());
        assert!(
            matches!(guarded, Err(ScheduleError::LintRejected { .. })),
            "seed {seed}: guard did not early-reject the deadline sabotage"
        );

        // Packing only rewrites the deadline, so the original witness
        // schedule is still constraint-valid — it just lands late.
        // The scheduler (deadline-blind) therefore still succeeds,
        // past the deadline only deep lint enforces.
        if packed {
            let deadline = broken.deadline().expect("sabotage declared one");
            assert!(
                finish > deadline,
                "seed {seed}: witness finish {finish} within sabotaged deadline {deadline}"
            );
        }
    }
    assert!(
        scheduled >= 200,
        "only {scheduled}/256 instances scheduled — sweep lost its teeth"
    );
    assert!(
        certified >= 64,
        "only {certified}/256 instances produced certified deep rejections"
    );
}
