//! Integration: Table 4 of the paper — the 48-step mission under a
//! decaying solar profile.

use impacct::graph::units::{Energy, TimeSpan};
use impacct::mission::{
    improvement_percent, jpl_plan, power_aware_plan, power_aware_plan_standalone, simulate,
    Battery, Scenario,
};
use impacct::rover::EnvCase;
use impacct::sched::SchedulerConfig;

#[test]
fn jpl_row_is_exact() {
    // Paper: 16 steps / 600 s per phase, 1800 s total. Energy 0 /
    // 440 / 3104 J with our exact per-iteration costs (the paper
    // prints 3114 for the last phase; 8 × 388 = 3104 — see
    // EXPERIMENTS.md on the 10 J discrepancy).
    let r = simulate(&Scenario::table4(), &jpl_plan().unwrap());
    assert!(r.completed);
    assert_eq!(r.total_steps, 48);
    assert_eq!(r.total_time, TimeSpan::from_secs(1800));
    assert_eq!(r.phases.len(), 3);
    let costs: Vec<i64> = r
        .phases
        .iter()
        .map(|p| p.battery_cost.as_millijoules())
        .collect();
    assert_eq!(costs, vec![0, 440_000, 3_104_000]);
    for ph in &r.phases {
        assert_eq!(ph.steps, 16);
    }
}

#[test]
fn standalone_power_aware_matches_papers_step_split_exactly() {
    // Without iteration chaining the per-phase timing reproduces the
    // paper's row exactly: 24 / 20 / 4 steps in 600 / 600 / 150 s,
    // 1350 s total (the paper's 33.3% time improvement).
    let plan = power_aware_plan_standalone(&SchedulerConfig::default()).unwrap();
    let r = simulate(&Scenario::table4(), &plan);
    assert!(r.completed);
    let steps: Vec<u32> = r.phases.iter().map(|p| p.steps).collect();
    assert_eq!(steps, vec![24, 20, 4]);
    assert_eq!(r.total_time, TimeSpan::from_secs(1350));
    let jpl = simulate(&Scenario::table4(), &jpl_plan().unwrap());
    let time_improvement = improvement_percent(jpl.total_time.as_secs(), r.total_time.as_secs());
    assert!(
        (time_improvement - 33.333).abs() < 0.01,
        "{time_improvement}"
    );
}

#[test]
fn chained_power_aware_wins_both_metrics() {
    let scenario = Scenario::table4();
    let jpl = simulate(&scenario, &jpl_plan().unwrap());
    let pa = simulate(
        &scenario,
        &power_aware_plan(&SchedulerConfig::default()).unwrap(),
    );
    assert!(pa.completed);
    assert_eq!(pa.total_steps, 48);
    assert!(pa.total_time < jpl.total_time);
    assert!(pa.total_cost < jpl.total_cost);
    // And the chained plan beats the standalone one on energy thanks
    // to the amortized heating.
    let standalone = simulate(
        &scenario,
        &power_aware_plan_standalone(&SchedulerConfig::default()).unwrap(),
    );
    assert!(pa.total_cost < standalone.total_cost);
}

#[test]
fn best_phase_carries_the_most_distance() {
    let pa = simulate(
        &Scenario::table4(),
        &power_aware_plan(&SchedulerConfig::default()).unwrap(),
    );
    assert_eq!(pa.phases[0].case, EnvCase::Best);
    assert!(pa.phases[0].steps >= 24, "paper: 24 of 48 steps in phase 1");
    for ph in &pa.phases[1..] {
        assert!(ph.steps <= pa.phases[0].steps);
    }
}

#[test]
fn tight_battery_strands_the_jpl_rover_first() {
    // With a nearly-empty battery (200 J) the power-aware rover still
    // banks 24 steps during the free-solar phase (its amortized
    // heating costs only ~126 J), while the fixed serial schedule
    // crawls 16 free steps and then strands 3 iterations into the
    // typical phase.
    let mut scenario = Scenario::table4();
    scenario.battery = Battery::new(Energy::from_joules(200));
    let jpl = simulate(&scenario, &jpl_plan().unwrap());
    let pa = simulate(
        &scenario,
        &power_aware_plan(&SchedulerConfig::default()).unwrap(),
    );
    assert!(!jpl.completed);
    assert!(!pa.completed);
    assert!(
        pa.total_steps > jpl.total_steps,
        "front-loading should travel farther: {} vs {}",
        pa.total_steps,
        jpl.total_steps
    );
}

#[test]
fn reports_account_energy_against_the_battery() {
    let mut scenario = Scenario::table4();
    scenario.battery = Battery::new(Energy::from_joules(10_000));
    let r = simulate(&scenario, &jpl_plan().unwrap());
    let phase_sum: i64 = r
        .phases
        .iter()
        .map(|p| p.battery_cost.as_millijoules())
        .sum();
    assert_eq!(phase_sum, r.total_cost.as_millijoules());
    let time_sum: i64 = r.phases.iter().map(|p| p.time_spent.as_secs()).sum();
    assert_eq!(time_sum, r.total_time.as_secs());
}
