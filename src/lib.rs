//! # impacct — power-aware scheduling under timing constraints
//!
//! A from-scratch Rust reproduction of *Power-Aware Scheduling under
//! Timing Constraints for Mission-Critical Embedded Systems* (Liu,
//! Chou, Bagherzadeh, Kurdahi — DAC 2001), the core scheduling tool of
//! the IMPACCT system-level design framework.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`graph`] ([`pas_graph`]) — constraint-graph substrate: tasks,
//!   resources, min/max timing-separation edges, journaled mutation,
//!   longest paths with positive-cycle detection;
//! * [`core`] ([`pas_core`]) — problems, schedules, power profiles,
//!   slack analysis, validity oracles, energy-cost/utilization
//!   metrics, the paper's 9-task running example;
//! * [`sched`] ([`pas_sched`]) — the three scheduling algorithms
//!   (timing, max-power, min-power), compaction, baselines, the
//!   quasi-static runtime repertoire;
//! * [`gantt`] ([`pas_gantt`]) — the power-aware Gantt chart with
//!   ASCII/SVG renderers and drag-and-lock editing;
//! * [`rover`] ([`pas_rover`]) — the NASA/JPL Mars rover model and
//!   the Table 3 analysis;
//! * [`mission`] ([`pas_mission`]) — the Table 4 mission simulator;
//! * [`workload`] ([`pas_workload`]) — synthetic problem generators
//!   and seeded sabotage for known-infeasible instances;
//! * [`lint`] ([`pas_lint`]) — the static constraint-graph analyzer:
//!   span-carrying diagnostics (`PASnnn` codes), rustc-style and JSON
//!   renderers, and the pipeline's early-reject guard;
//! * [`spec`] ([`pas_spec`]) — the PASDL text format and the
//!   `impacct-cli` driver;
//! * [`exec`] ([`pas_exec`]) — runtime dispatch simulation under
//!   execution-time jitter;
//! * [`obs`] ([`pas_obs`]) — structured decision tracing
//!   ([`pas_obs::TraceEvent`]), counting/recording/JSONL observers,
//!   metrics registry with Prometheus/Chrome-trace exporters, and
//!   per-stage wall-clock profiling;
//! * [`replay`] ([`pas_replay`]) — deterministic trace replay with
//!   cross-checking, causal "why this start time" explanations, and
//!   trace diffing.
//!
//! ## Quickstart
//!
//! ```
//! use impacct::core::{Problem, PowerConstraints};
//! use impacct::graph::units::{Power, TimeSpan};
//! use impacct::graph::{ConstraintGraph, Resource, ResourceKind, Task};
//! use impacct::sched::PowerAwareScheduler;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = ConstraintGraph::new();
//! let cpu = g.add_resource(Resource::new("cpu", ResourceKind::Compute));
//! let radio = g.add_resource(Resource::new("radio", ResourceKind::Other));
//! let sense = g.add_task(Task::new("sense", cpu, TimeSpan::from_secs(4),
//!                                  Power::from_watts(3)));
//! let uplink = g.add_task(Task::new("uplink", radio, TimeSpan::from_secs(6),
//!                                   Power::from_watts(5)));
//! g.precedence(sense, uplink);
//!
//! let mut problem = Problem::new("quickstart", g,
//!     PowerConstraints::new(Power::from_watts(7), Power::from_watts(3)));
//! let outcome = PowerAwareScheduler::default().schedule(&mut problem)?;
//! assert!(outcome.analysis.is_valid());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pas_core as core;
pub use pas_exec as exec;
pub use pas_gantt as gantt;
pub use pas_graph as graph;
pub use pas_lint as lint;
pub use pas_mission as mission;
pub use pas_obs as obs;
pub use pas_replay as replay;
pub use pas_rover as rover;
pub use pas_sched as sched;
pub use pas_spec as spec;
pub use pas_workload as workload;
