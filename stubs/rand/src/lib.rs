//! Deterministic, dependency-free stand-in for the subset of the
//! `rand` 0.8 API this workspace uses (`StdRng`, `SeedableRng`,
//! `Rng::gen_range`/`gen_bool`, `SliceRandom::shuffle`).
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `rand` to this stub (see `[patch.crates-io]` in
//! the root manifest and `stubs/README.md`). The generator is
//! SplitMix64: fully deterministic for a given seed, which is all the
//! repo's seeded heuristics and workload generators require. It is
//! NOT a cryptographic or statistically rigorous RNG.

#![forbid(unsafe_code)]

/// Constructs a generator from seed material. Only the `seed_from_u64`
/// entry point the workspace uses is provided.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing random-value methods, generic over the generator.
pub trait Rng {
    /// The core 64-bit output all other methods derive from.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `range` (half-open or inclusive integer and
    /// float ranges). Panics on an empty range, like `rand` does.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(&mut |bound| next_below(self, bound))
    }

    /// `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        to_unit_f64(self.next_u64()) < p
    }
}

fn to_unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Uniform `u64` below `bound` (`bound == 0` means the full domain).
fn next_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    if bound == 0 {
        return rng.next_u64();
    }
    // Multiply-shift bounding; the slight bias is irrelevant for the
    // deterministic heuristics this stub feeds.
    let wide = u128::from(rng.next_u64()) * u128::from(bound);
    (wide >> 64) as u64
}

/// A range a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value; `draw(bound)` returns a uniform `u64` below
    /// `bound` (full domain when `bound == 0`).
    fn sample_from(self, draw: &mut dyn FnMut(u64) -> u64) -> T;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, draw: &mut dyn FnMut(u64) -> u64) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = if span > u128::from(u64::MAX) {
                    u128::from(draw(0))
                } else {
                    u128::from(draw(span as u64))
                };
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, draw: &mut dyn FnMut(u64) -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = if span > u128::from(u64::MAX) {
                    u128::from(draw(0))
                } else {
                    u128::from(draw(span as u64))
                };
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from(self, draw: &mut dyn FnMut(u64) -> u64) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + to_unit_f64(draw(0)) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from(self, draw: &mut dyn FnMut(u64) -> u64) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + to_unit_f64(draw(0)) * (hi - lo)
    }
}

/// Generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator (SplitMix64 here; the
    /// real crate's `StdRng` is ChaCha12 — callers only rely on
    /// determinism for a fixed seed, which both provide).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher–Yates), the only `SliceRandom` method
    /// the workspace uses.
    pub trait SliceRandom {
        /// Uniformly permutes the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let bound = (i + 1) as u64;
                let wide = u128::from(rng.next_u64()) * u128::from(bound);
                let j = (wide >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5i64..=9);
            assert!((-5..=9).contains(&v));
            let u: usize = rng.gen_range(0..3usize);
            assert!(u < 3);
            let f: f64 = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..64 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 32-element shuffle should move something");
    }
}
