//! Smoke-run stand-in for the subset of the `criterion` API this
//! workspace's benches use.
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `criterion` to this stub (see `[patch.crates-io]`
//! in the root manifest and `stubs/README.md`). Instead of statistical
//! sampling it runs each registered routine a handful of times and
//! prints the fastest observed wall time — enough to keep every
//! `[[bench]]` target compiling and runnable as a smoke test. Real
//! performance gating in this repo goes through the `pas-bench` bins
//! (`bench_parallel`, `bench_gate`, …), not criterion.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How many times each routine runs per `bench_function` call.
const SMOKE_ITERS: u32 = 3;

/// Opaque value sink; prevents trivial constant folding of results.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` sizes its batches. Ignored by the stub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup output per iteration.
    PerIteration,
}

/// Drives a single benchmark routine.
pub struct Bencher {
    best: Option<Duration>,
}

impl Bencher {
    fn new() -> Self {
        Bencher { best: None }
    }

    fn record(&mut self, elapsed: Duration) {
        self.best = Some(match self.best {
            Some(best) => best.min(elapsed),
            None => elapsed,
        });
    }

    /// Times `routine` over a few smoke iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..SMOKE_ITERS {
            let start = Instant::now();
            black_box(routine());
            self.record(start.elapsed());
        }
    }

    /// Times `routine` on fresh `setup` output, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..SMOKE_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.record(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs `routine` once through the smoke driver and prints the
    /// fastest observed time.
    pub fn bench_function<N: Into<String>, F>(&mut self, name: N, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut bencher = Bencher::new();
        routine(&mut bencher);
        let best = bencher.best.unwrap_or_default();
        println!("{}/{}: best of {SMOKE_ITERS} = {best:?}", self.name, name);
        self
    }

    /// Ends the group. No-op in the stub.
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    _sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _sample_size: 100 }
    }
}

impl Criterion {
    /// Accepted for source compatibility; the stub always smoke-runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self._sample_size = n;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<N: Into<String>, F>(&mut self, name: N, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut bencher = Bencher::new();
        routine(&mut bencher);
        let best = bencher.best.unwrap_or_default();
        println!("{name}: best of {SMOKE_ITERS} = {best:?}");
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.bench_function("iter", |b| b.iter(|| black_box(2 + 2)));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(10);
        targets = smoke
    }

    #[test]
    fn the_harness_runs() {
        benches();
    }
}
