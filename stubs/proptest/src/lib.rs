//! Deterministic, dependency-free stand-in for the subset of the
//! `proptest` API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `proptest` to this stub (see `[patch.crates-io]`
//! in the root manifest and `stubs/README.md`). Differences from the
//! real crate, by design:
//!
//! * inputs are drawn from a fixed deterministic stream (one SplitMix64
//!   sequence per case index), so every run tests the same cases;
//! * there is **no shrinking** — a failing case panics with the
//!   ordinary assertion message;
//! * only the combinators the workspace uses exist: range strategies,
//!   tuples, `Just`, `prop_map`, `prop_flat_map`, `prop_oneof!`,
//!   `collection::vec`, and `any::<int>()`.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from the deterministic stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds out of it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy yielding a constant.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds the union; panics when `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs an alternative");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = if span > u128::from(u64::MAX) {
                        u128::from(rng.next_u64())
                    } else {
                        u128::from(rng.below(span as u64))
                    };
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = if span > u128::from(u64::MAX) {
                        u128::from(rng.next_u64())
                    } else {
                        u128::from(rng.below(span as u64))
                    };
                    (lo as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! impl_tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategies! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
        (A, B, C, D, E, F, G, H, I)
        (A, B, C, D, E, F, G, H, I, J)
    }
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the workspace draws.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// The strategy `any` returns.
        type Strategy: Strategy<Value = Self>;
        /// The full-domain strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Full-domain integer strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct FullInt<T>(core::marker::PhantomData<T>);

    macro_rules! impl_arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Strategy for FullInt<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = FullInt<$t>;
                fn arbitrary() -> Self::Strategy {
                    FullInt(core::marker::PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Full-domain bool strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> Self::Strategy {
            AnyBool
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive element-count bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy over vectors with element strategy `element` and a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The deterministic case driver behind the `proptest!` macro.

    /// Why one generated case did not pass. The stub panics on the
    /// first failure instead of shrinking, so this mostly exists to
    /// give `return Ok(())` / `Err(...)` in test bodies a type.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case's precondition did not hold (`prop_assume!`).
        Reject(String),
        /// The property itself failed.
        Fail(String),
    }

    /// Per-test configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The deterministic input stream: SplitMix64 seeded per case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Stream for one `(case index)` of a property.
        pub fn for_case(case: u32) -> Self {
            TestRng {
                state: 0xD1B5_4A32_D192_ED03 ^ (u64::from(case) << 17),
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value below `bound` (full domain when 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return self.next_u64();
            }
            let wide = u128::from(self.next_u64()) * u128::from(bound);
            (wide >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines deterministic property tests; see the crate docs for the
/// differences from real proptest (fixed cases, no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    // Real proptest runs bodies inside a Result-returning
                    // fn, so `return Ok(())` must type-check here too.
                    let __outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(err) = __outcome {
                        panic!("property failed on case {case}: {err:?}");
                    }
                }
            }
        )*
    };
}

/// `assert!` under a different name (no shrinking machinery here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a different name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a different name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the remainder of a case when its precondition fails. Real
/// proptest resamples; the stub just moves on to the next case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Uniform choice among alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: Vec<Box<dyn $crate::strategy::Strategy<Value = _>>> =
            vec![$(Box::new($strat)),+];
        $crate::strategy::Union::new(options)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case(0);
        for _ in 0..200 {
            let v = Strategy::generate(&(3usize..7), &mut rng);
            assert!((3..7).contains(&v));
            let f = Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
            let (a, b) = Strategy::generate(&((1i64..4), Just(9u8)), &mut rng);
            assert!((1..4).contains(&a));
            assert_eq!(b, 9);
        }
    }

    #[test]
    fn vec_strategy_honors_size() {
        let mut rng = crate::test_runner::TestRng::for_case(1);
        let v = Strategy::generate(&crate::collection::vec(0u64..5, 4..=4), &mut rng);
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|x| *x < 5));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_wires_arguments(x in 1usize..10, flag in prop_oneof![Just(true), Just(false)]) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(flag || !flag);
        }
    }
}
