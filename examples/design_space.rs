//! Design-space exploration: sweep the power budget `P_max` over the
//! paper's 9-task example and watch the schedule trade finish time
//! against energy cost — the exploration loop the IMPACCT tool was
//! built for (§1.3).
//!
//! ```text
//! cargo run --example design_space
//! ```

use impacct::core::example::paper_example;
use impacct::core::PowerConstraints;
use impacct::graph::units::Power;
use impacct::sched::{PowerAwareScheduler, ScheduleError};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>6} | {:>6} | {:>8} | {:>7} | {:>6}",
        "Pmax", "tau", "Ec", "rho", "peak"
    );
    println!(
        "{:-<6}-+-{:-<6}-+-{:-<8}-+-{:-<7}-+-{:-<6}",
        "", "", "", "", ""
    );

    for pmax_w in [10i64, 12, 14, 16, 18, 20, 24, 30] {
        let (mut problem, _) = paper_example();
        let p_max = Power::from_watts(pmax_w);
        let p_min = problem.constraints().p_min().min(p_max);
        problem.set_constraints(PowerConstraints::new(p_max, p_min));

        match PowerAwareScheduler::default().schedule(&mut problem) {
            Ok(outcome) => {
                let a = &outcome.analysis;
                println!(
                    "{:>6} | {:>6} | {:>8} | {:>7} | {:>6}",
                    p_max.to_string(),
                    a.finish_time.to_string(),
                    a.energy_cost.to_string(),
                    a.utilization.to_string(),
                    a.peak_power.to_string()
                );
            }
            Err(ScheduleError::SpikeUnresolvable { level, .. }) => {
                println!(
                    "{:>6} | unschedulable (a single task already draws {level})",
                    p_max.to_string()
                );
            }
            Err(e) => return Err(e.into()),
        }
    }
    println!();
    println!("Tight budgets serialize everything (slow, but each watt is used);");
    println!("loose budgets parallelize (fast, but spiky draw).");
    Ok(())
}
