//! Quasi-static runtime scheduling (§5.3): precompute a repertoire of
//! schedules offline, then select by the live `(P_max, P_min)` as the
//! environment changes — no rescheduling on board.
//!
//! ```text
//! cargo run --example runtime_adaptation
//! ```

use impacct::graph::units::Power;
use impacct::rover::{build_rover_problem, EnvCase};
use impacct::sched::{PowerAwareScheduler, ScheduleRepertoire, ValidityRegion};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Offline: one schedule per design point.
    let mut table = ScheduleRepertoire::new();
    for case in EnvCase::ALL {
        let mut rover = build_rover_problem(case, 1);
        let outcome = PowerAwareScheduler::default().schedule(&mut rover.problem)?;
        let region = ValidityRegion::of(
            rover.problem.graph(),
            &outcome.schedule,
            rover.problem.background_power(),
        );
        println!("precomputed {:8} schedule: {region}", case.label());
        table.insert(
            case.label(),
            rover.problem.graph(),
            outcome.schedule,
            rover.problem.background_power(),
        );
    }
    println!();

    // Online: the solar level drifts through the day; pick the best
    // valid schedule for each observation.
    for solar_mw in [14_900i64, 13_500, 12_000, 10_000, 9_000] {
        let solar = Power::from_watts_milli(solar_mw);
        let p_max = solar + Power::from_watts(10); // + battery ceiling
        match table.select(p_max, solar) {
            Some(entry) => println!(
                "solar {:>6}: run {:8} (tau={} cost at this light {})",
                solar.to_string(),
                entry.name(),
                entry.finish_time(),
                entry.energy_cost_at(solar)
            ),
            None => println!("solar {:>6}: no valid schedule — hold position", solar),
        }
    }
    Ok(())
}
