//! Corner analysis (§4.1's "(min, typical, max)" power model): check
//! how a schedule computed for one temperature case behaves if the
//! environment turns out hotter or colder than planned.
//!
//! ```text
//! cargo run --example corner_analysis
//! ```

use impacct::core::power_model::analyze_corners;
use impacct::rover::{build_rover_problem, EnvCase};
use impacct::sched::PowerAwareScheduler;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Plan for the typical case…
    let mut rover = build_rover_problem(EnvCase::Typical, 1);
    let outcome = PowerAwareScheduler::default().schedule(&mut rover.problem)?;
    println!(
        "typical-case plan: tau={} peak={} under budget {}",
        outcome.analysis.finish_time,
        outcome.analysis.peak_power,
        rover.problem.constraints().p_max()
    );

    // …then sweep the power corners: min = −40 °C draws, max = −80 °C
    // draws, while keeping the typical-case budget (22 W).
    let ranges = rover.power_ranges();
    let reports = analyze_corners(&rover.problem, &ranges, &outcome.schedule);
    println!();
    for report in &reports {
        let a = &report.analysis;
        println!(
            "corner {:8} peak={:>7} Ec={:>9} spikes={} => {}",
            report.corner.to_string(),
            a.peak_power.to_string(),
            a.energy_cost.to_string(),
            a.spikes.len(),
            if a.is_valid() { "VALID" } else { "INVALID" }
        );
    }
    println!();
    println!("The max corner draws -80 °C power on a schedule shaped for -60 °C:");
    println!("overlaps that fit under 22 W at typical draw now spike — exactly why");
    println!("the flight rover would re-select the worst-case schedule as it cools.");
    Ok(())
}
