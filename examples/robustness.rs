//! Robustness of the static schedules to execution-time jitter: how
//! much may motors and heaters overrun before a hard guarantee (a
//! heater window, the power budget) breaks?
//!
//! ```text
//! cargo run --example robustness
//! ```

use impacct::exec::{jitter_campaign, overrun_tolerance, JitterModel};
use impacct::rover::{build_rover_problem, jpl_schedule, EnvCase};
use impacct::sched::PowerAwareScheduler;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("worst-case overrun tolerance (all tasks stretched uniformly):");
    for case in EnvCase::ALL {
        let mut rover = build_rover_problem(case, 1);
        let outcome = PowerAwareScheduler::default().schedule(&mut rover.problem)?;
        let ours = overrun_tolerance(&rover.problem, &outcome.schedule, 100);

        let (jpl_rover, jpl) = jpl_schedule(case)?;
        let serial = overrun_tolerance(&jpl_rover.problem, &jpl, 100);

        println!(
            "  {:8} power-aware: {:>4}   JPL serial: {:>4}",
            case.label(),
            ours.map(|p| format!("+{p}%"))
                .unwrap_or_else(|| "0%".into()),
            serial
                .map(|p| format!("+{p}%"))
                .unwrap_or_else(|| "0%".into()),
        );
    }
    println!();
    println!("(the serial baseline tolerates more overrun — nothing overlaps, so only");
    println!(" the heater windows can break; the power-aware schedules trade some of");
    println!(" that margin for their speed)");
    println!();

    // A sampled-jitter campaign on the typical case: how often does a
    // ±10 % world stay clean, and what is the worst slip?
    let mut rover = build_rover_problem(EnvCase::Typical, 1);
    let outcome = PowerAwareScheduler::default().schedule(&mut rover.problem)?;
    let stats = jitter_campaign(
        &rover.problem,
        &outcome.schedule,
        JitterModel::symmetric(0, 10),
        200,
    );
    println!(
        "typical case under ±10% sampled jitter: {}/{} runs fault-free, \
         worst finish-time slip {} over the planned {} (worst peak {})",
        stats.clean_runs,
        stats.runs,
        stats.worst_slip,
        outcome.analysis.finish_time,
        stats.worst_peak
    );
    Ok(())
}
