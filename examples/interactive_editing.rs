//! The §4.3 design loop, headless: a designer drags bins in the time
//! view, watches the power view respond, locks what they like, and
//! lets the automated scheduler finish the rest.
//!
//! ```text
//! cargo run --example interactive_editing
//! ```

use impacct::core::example::paper_example;
use impacct::gantt::{render_ascii, AsciiOptions, ChartEditor, GanttChart};
use impacct::graph::units::{Time, TimeSpan};
use impacct::sched::PowerAwareScheduler;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (mut problem, tasks) = paper_example();
    let outcome = PowerAwareScheduler::default().schedule(&mut problem)?;
    println!("automated schedule:");
    let chart = GanttChart::from_analysis(&problem, &outcome.schedule, &outcome.analysis);
    print!("{}", render_ascii(&chart, &AsciiOptions::default()));

    let mut editor = ChartEditor::new(problem, outcome.schedule);

    // The designer wonders: can task f slide 5 s later? Preview first —
    // no commitment, just the would-be power view.
    let target = editor.schedule().start(tasks.f) + TimeSpan::from_secs(5);
    let preview = editor.preview(tasks.f, target);
    println!(
        "preview: moving f to {target} → Ec={} rho={} spikes={}",
        preview.energy_cost,
        preview.utilization,
        preview.spikes.len()
    );

    // Commit it if the tool allows (it refuses anything invalid).
    match editor.drag(tasks.f, target) {
        Ok(()) => println!(
            "drag committed: f now starts at {}",
            editor.schedule().start(tasks.f)
        ),
        Err(e) => println!("drag refused: {e}"),
    }

    // A deliberately bad drag: b before its predecessor a.
    match editor.drag(tasks.b, Time::ZERO) {
        Ok(()) => unreachable!("b cannot start before a completes"),
        Err(e) => println!("bad drag refused as expected: {e}"),
    }

    // Lock the edits the designer cares about and re-run the automated
    // scheduler around them.
    editor.lock(tasks.f);
    let analysis = editor.analysis();
    println!(
        "edited schedule: tau={} Ec={} rho={} (valid: {})",
        analysis.finish_time,
        analysis.energy_cost,
        analysis.utilization,
        analysis.is_valid()
    );

    let (mut problem, _) = editor.into_parts();
    let re = PowerAwareScheduler::default().schedule(&mut problem)?;
    println!(
        "re-scheduled around the lock: tau={} Ec={} rho={} (f pinned at {})",
        re.analysis.finish_time,
        re.analysis.energy_cost,
        re.analysis.utilization,
        re.schedule.start(tasks.f)
    );
    Ok(())
}
