//! A Martian-morning traverse: raw solar telemetry is quantized into
//! operating cases, and the quasi-static plans race the fading light
//! of a whole half-day rather than Table 4's three clean phases.
//!
//! ```text
//! cargo run --example diurnal_mission
//! ```

use impacct::graph::units::{Energy, Power, Time};
use impacct::mission::{
    improvement_percent, jpl_plan, power_aware_plan, simulate, Battery, Scenario, SolarTimeline,
};
use impacct::sched::SchedulerConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Solar output samples over a morning (dawn → noon → afternoon),
    // one every 10 minutes. Watts from a simple irradiance ramp.
    let samples: Vec<(Time, Power)> = [
        9_200, 9_800, 10_900, 12_300, 13_600, 14_900, 14_900, 13_800, 12_400, 11_000, 9_600,
    ]
    .iter()
    .enumerate()
    .map(|(i, &mw)| (Time::from_secs(i as i64 * 600), Power::from_watts_milli(mw)))
    .collect();

    let timeline = SolarTimeline::from_samples(&samples)
        .map_err(|(t, p)| format!("night at {t} ({p}) — rover must sleep"))?;
    println!("quantized phases:");
    for (start, case) in timeline.phases() {
        println!("  from {start:>6}: plan for the {} case", case.label());
    }
    println!();

    let scenario = Scenario {
        timeline,
        target_steps: 120, // ≈ 8.4 m — an ambitious sol
        battery: Battery::new(Energy::from_joules(20_000)),
    };

    let jpl = simulate(&scenario, &jpl_plan()?);
    let ours = simulate(&scenario, &power_aware_plan(&SchedulerConfig::default())?);

    for r in [&jpl, &ours] {
        println!(
            "{:<12} {} steps in {} using {} of battery (completed: {})",
            r.plan_label, r.total_steps, r.total_time, r.total_cost, r.completed
        );
    }
    println!(
        "improvement: {:.1}% time, {:.1}% energy",
        improvement_percent(jpl.total_time.as_secs(), ours.total_time.as_secs()),
        improvement_percent(
            jpl.total_cost.as_millijoules(),
            ours.total_cost.as_millijoules()
        )
    );
    println!();
    println!("Unlike Table 4 (which starts at noon), this sol starts at dawn: the");
    println!("power-aware rover buys its speed in the dim phases with battery energy.");
    println!("Whether that trade is right depends on the mission — exactly the kind");
    println!("of decision the IMPACCT exploration tool exists to expose.");
    Ok(())
}
