//! Measures what the lint guard saves: wall-clock of linting (and
//! rejecting) seeded-infeasible workloads versus letting the full
//! scheduler search and fail.
//!
//! ```text
//! cargo run --release --example lint_early_reject
//! ```
//!
//! Builds a batch of generated instances, sabotages each one with
//! every [`Sabotage`] kind in turn, and times three treatments:
//!
//! * `lint-only` — run the analyzer, observe the error-level verdict;
//! * `guard-on` — the default pipeline, which early-rejects;
//! * `guard-off` — the pipeline with `lint_guard: false`, which must
//!   search (bounded backtracking) before failing.
//!
//! Results feed the "Static analysis" section of EXPERIMENTS.md.

use impacct::lint::lint;
use impacct::sched::{PowerAwareScheduler, ScheduleError, SchedulerConfig};
use impacct::workload::{generate, sabotage, GeneratorConfig, Sabotage, Topology};
use std::time::Instant;

const BATCH: usize = 40;
const TASKS: usize = 48;

fn batch(kind: Sabotage) -> Vec<impacct::core::Problem> {
    (0..BATCH)
        .map(|i| {
            let mut p = generate(&GeneratorConfig {
                seed: 1000 + i as u64,
                tasks: TASKS,
                resources: 6,
                topology: Topology::Layered { layers: 6 },
                ..Default::default()
            });
            sabotage(&mut p, kind, i as u64);
            p
        })
        .collect()
}

fn main() {
    println!("lint early-reject: {BATCH} sabotaged {TASKS}-task instances per kind\n");
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>8}",
        "sabotage", "lint-only", "guard-on", "guard-off", "speedup"
    );
    for kind in Sabotage::ALL {
        // Lint only: prove infeasibility, no scheduling at all.
        let problems = batch(kind);
        let t = Instant::now();
        let mut rejected = 0;
        for p in &problems {
            if lint(p).has_errors() {
                rejected += 1;
            }
        }
        let lint_only = t.elapsed();
        assert_eq!(rejected, BATCH, "{kind:?}: lint missed an instance");

        // Guard on (the default): the pipeline early-rejects.
        let mut problems = batch(kind);
        let t = Instant::now();
        for p in problems.iter_mut() {
            let err = PowerAwareScheduler::default()
                .schedule(p)
                .expect_err("sabotaged instance scheduled");
            assert!(
                matches!(err, ScheduleError::LintRejected { .. }),
                "{kind:?}: expected an early reject, got {err}"
            );
        }
        let guard_on = t.elapsed();

        // Guard off: the scheduler burns search effort to fail.
        let unguarded = PowerAwareScheduler::new(SchedulerConfig {
            lint_guard: false,
            max_backtracks: 500,
            ..SchedulerConfig::default()
        });
        let mut problems = batch(kind);
        let t = Instant::now();
        for p in problems.iter_mut() {
            let err = unguarded
                .schedule(p)
                .expect_err("sabotaged instance scheduled");
            assert!(!matches!(err, ScheduleError::LintRejected { .. }));
        }
        let guard_off = t.elapsed();

        let speedup = guard_off.as_secs_f64() / guard_on.as_secs_f64().max(1e-9);
        println!(
            "{:<24} {:>10.2?} {:>10.2?} {:>10.2?} {:>7.1}x",
            format!("{kind:?}"),
            lint_only,
            guard_on,
            guard_off,
            speedup
        );
    }
    println!("\n(guard-on ≈ lint-only plus pipeline setup; guard-off pays the search)");
}
