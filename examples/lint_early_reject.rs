//! Measures what the lint layer buys end to end, and writes
//! `BENCH_lint.json` for the CI regression gate (`bench_gate`).
//!
//! ```text
//! cargo run --release --example lint_early_reject
//! ```
//!
//! Three experiments:
//!
//! * **Early reject** — a batch of generated instances, sabotaged
//!   with every [`Sabotage`] kind in turn, under three treatments:
//!   `lint-only` (run the analyzer, observe the error-level verdict),
//!   `guard-on` (the default pipeline, which early-rejects), and
//!   `guard-off` (`lint_guard: false`). For the structural kinds the
//!   unguarded scheduler burns bounded backtracking before failing;
//!   for the deadline kinds it *succeeds* — schedulers never read the
//!   deadline — and ships a schedule that sails past it, so the whole
//!   search effort is wasted rather than merely slow.
//! * **Deep-pass overhead** — the interval fixpoint passes
//!   (`PAS02x`/`PAS04x`) only arm once a deadline exists, so linting
//!   the same feasible batch with and without a generous deadline
//!   isolates their cost.
//! * **Bound efficacy** — the exact B&B on a 500-task
//!   [`Topology::Backbone`] model with `use_lint_bounds` off vs on:
//!   byte-identical schedules, strictly fewer nodes.
//!
//! Results feed the "Static analysis" section of EXPERIMENTS.md.

use impacct::core::Problem;
use impacct::lint::lint;
use impacct::sched::optimal::{minimize_finish_time, OptimalConfig};
use impacct::sched::{PowerAwareScheduler, ScheduleError, SchedulerConfig};
use impacct::workload::{
    can_energy_starve, can_pack_resource, generate, sabotage, GeneratorConfig, Sabotage, Topology,
};
use std::time::Instant;

const BATCH: usize = 40;
const TASKS: usize = 48;
const BNB_TASKS: usize = 500;

/// A feasible generated instance. Deadline sabotage needs headroom
/// for the tightened bound to bite, so those kinds get a shallow
/// two-layer graph whose critical path sits far below both the
/// per-resource serial load and the energy floor.
fn base(deadline_kind: bool, i: u64) -> Problem {
    // Deadline kinds also drop max windows: the unguarded pipeline
    // must *succeed* (past the deadline), so the instance has to stay
    // serializable under arbitrary resource stretching.
    let (topology, max_window_probability) = if deadline_kind {
        (Topology::Layered { layers: 2 }, 0.0)
    } else {
        (Topology::Layered { layers: 6 }, 0.3)
    };
    generate(&GeneratorConfig {
        seed: 1000 + i,
        tasks: TASKS,
        resources: 6,
        topology,
        max_window_probability,
        ..Default::default()
    })
}

fn batch(kind: Sabotage) -> Vec<Problem> {
    (0..BATCH)
        .map(|i| {
            let mut p = base(!kind.defeats_scheduler(), i as u64);
            match kind {
                Sabotage::EnergyStarvedDeadline => {
                    assert!(can_energy_starve(&p), "seed {i}: cannot energy-starve")
                }
                Sabotage::PackedResourceDeadline => {
                    assert!(can_pack_resource(&p), "seed {i}: cannot pack a resource")
                }
                _ => {}
            }
            sabotage(&mut p, kind, i as u64);
            p
        })
        .collect()
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let mut rows: Vec<String> = Vec::new();

    println!("lint early-reject: {BATCH} sabotaged {TASKS}-task instances per kind\n");
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>8}",
        "sabotage", "lint-only", "guard-on", "guard-off", "speedup"
    );
    for kind in Sabotage::ALL {
        // Lint only: prove infeasibility, no scheduling at all.
        let problems = batch(kind);
        let t = Instant::now();
        let mut rejected = 0;
        for p in &problems {
            if lint(p).has_errors() {
                rejected += 1;
            }
        }
        let lint_only = t.elapsed();
        assert_eq!(rejected, BATCH, "{kind:?}: lint missed an instance");

        // Guard on (the default): the pipeline early-rejects.
        let mut problems = batch(kind);
        let t = Instant::now();
        for p in problems.iter_mut() {
            let err = PowerAwareScheduler::default()
                .schedule(p)
                .expect_err("sabotaged instance scheduled");
            assert!(
                matches!(err, ScheduleError::LintRejected { .. }),
                "{kind:?}: expected an early reject, got {err}"
            );
        }
        let guard_on = t.elapsed();

        // Guard off: the structural kinds make the scheduler burn
        // search effort to fail (bounded so the bench terminates);
        // the deadline kinds let it "succeed" past the deadline it
        // never reads, so they keep the full backtrack budget.
        let unguarded = if kind.defeats_scheduler() {
            PowerAwareScheduler::new(SchedulerConfig {
                lint_guard: false,
                max_backtracks: 500,
                ..SchedulerConfig::default()
            })
        } else {
            PowerAwareScheduler::new(SchedulerConfig {
                lint_guard: false,
                ..SchedulerConfig::default()
            })
        };
        let mut problems = batch(kind);
        let t = Instant::now();
        for p in problems.iter_mut() {
            if kind.defeats_scheduler() {
                let err = unguarded
                    .schedule(p)
                    .expect_err("sabotaged instance scheduled");
                assert!(!matches!(err, ScheduleError::LintRejected { .. }));
            } else {
                let out = unguarded
                    .schedule(p)
                    .expect("deadline-doomed instance must still timing-schedule");
                let deadline = p.deadline().expect("sabotage set a deadline");
                assert!(
                    out.schedule.finish_time(p.graph()) > deadline,
                    "{kind:?}: unguarded schedule met a deadline lint proved unreachable"
                );
            }
        }
        let guard_off = t.elapsed();

        // Clamped below at 1.0 for the gate: fast-fail kinds (an
        // overloaded task dies in the pipeline's first stage in
        // microseconds) make the raw ratio pure timer noise, and the
        // gate only guards collapse of genuine search burn.
        let speedup = (guard_off.as_secs_f64() / guard_on.as_secs_f64().max(1e-9)).max(1.0);
        println!(
            "{:<24} {:>10.2?} {:>10.2?} {:>10.2?} {:>7.1}x",
            format!("{kind:?}"),
            lint_only,
            guard_on,
            guard_off,
            speedup
        );
        rows.push(format!(
            concat!(
                "    {{\"workload\": \"early_reject_{:?}\", \"tasks\": {}, \"batch\": {}, ",
                "\"lint_only_ms\": {:.3}, \"guard_on_ms\": {:.3}, \"guard_off_ms\": {:.3}, ",
                "\"speedup\": {:.3}}}"
            ),
            kind,
            TASKS,
            BATCH,
            ms(lint_only),
            ms(guard_on),
            ms(guard_off),
            speedup,
        ));
    }
    println!("\n(guard-on ≈ lint-only plus pipeline setup; guard-off pays the search)");

    // -- Deep-pass overhead -------------------------------------------
    // Same feasible batch linted twice: without a deadline the
    // interval fixpoint passes stay dormant; with a generous one
    // (4x the critical finish) they run and must stay quiet.
    let mut shallow_batch: Vec<Problem> = (0..BATCH).map(|i| base(false, i as u64)).collect();
    let t = Instant::now();
    let shallow_errors: usize = shallow_batch.iter().map(|p| lint(p).error_count()).sum();
    let shallow = t.elapsed();
    for p in shallow_batch.iter_mut() {
        let g = p.graph();
        let starts = impacct::graph::longest_path::earliest_start_times(g)
            .expect("generated instances are acyclic");
        let finish = starts
            .iter()
            .map(|&(v, s)| s + g.task(v).delay())
            .max()
            .expect("non-empty graph");
        p.set_deadline(Some(impacct::graph::units::Time::from_secs(
            finish.as_secs() * 4,
        )));
    }
    let t = Instant::now();
    let deep_errors: usize = shallow_batch.iter().map(|p| lint(p).error_count()).sum();
    let deep = t.elapsed();
    assert_eq!(
        deep_errors, shallow_errors,
        "deep passes flagged a feasible instance under a 4x-slack deadline"
    );
    let overhead_ratio = shallow.as_secs_f64() / deep.as_secs_f64().max(1e-9);
    println!(
        "\ndeep-pass overhead: shallow {:.2?} vs deep {:.2?} over {BATCH} instances \
         (shallow/deep = {overhead_ratio:.2})",
        shallow, deep
    );
    rows.push(format!(
        concat!(
            "    {{\"workload\": \"deep_pass_overhead\", \"tasks\": {}, \"batch\": {}, ",
            "\"shallow_ms\": {:.3}, \"deep_ms\": {:.3}, \"speedup\": {:.3}}}"
        ),
        TASKS,
        BATCH,
        ms(shallow),
        ms(deep),
        overhead_ratio,
    ));

    // -- Lint-derived admissible bounds in the exact search -----------
    // A 500-task Backbone model: the spine pins the critical path, so
    // the lint makespan lower bound is met by the very first greedy
    // descent and the bounded search stops there, while the baseline
    // proves optimality the hard way. Node counts are deterministic;
    // the wall-clock ratio rides along as `measured_speedup`.
    let p500 = generate(&GeneratorConfig {
        seed: 0xB0B5,
        tasks: BNB_TASKS,
        resources: 8,
        topology: Topology::Backbone { fringe: 1 },
        ..Default::default()
    });
    let g = p500.graph();
    let (p_max, bg) = (p500.constraints().p_max(), p500.background_power());
    let t = Instant::now();
    let baseline = minimize_finish_time(g, p_max, bg, &OptimalConfig::default())
        .expect("backbone search completes");
    let baseline_wall = t.elapsed();
    let t = Instant::now();
    let bounded = minimize_finish_time(
        g,
        p_max,
        bg,
        &OptimalConfig {
            use_lint_bounds: true,
            ..OptimalConfig::default()
        },
    )
    .expect("bounded backbone search completes");
    let bounded_wall = t.elapsed();
    assert_eq!(
        bounded.schedule, baseline.schedule,
        "lint bounds changed the schedule"
    );
    assert!(
        bounded.nodes_explored < baseline.nodes_explored,
        "bounds must cut nodes: {} vs {}",
        bounded.nodes_explored,
        baseline.nodes_explored
    );
    assert!(bounded.stats.pruned_bound > 0, "{:?}", bounded.stats);
    let node_ratio = baseline.nodes_explored as f64 / bounded.nodes_explored as f64;
    let wall_ratio = baseline_wall.as_secs_f64() / bounded_wall.as_secs_f64().max(1e-9);
    println!(
        "\nB&B lint bounds ({BNB_TASKS}-task backbone): {} nodes / {:.2?} baseline vs \
         {} nodes / {:.2?} bounded ({node_ratio:.0}x fewer nodes, identical schedule)",
        baseline.nodes_explored, baseline_wall, bounded.nodes_explored, bounded_wall
    );
    rows.push(format!(
        concat!(
            "    {{\"workload\": \"bnb_lint_bounds\", \"tasks\": {}, ",
            "\"nodes_baseline\": {}, \"nodes_bounded\": {}, \"bound_prunes\": {}, ",
            "\"baseline_ms\": {:.3}, \"bounded_ms\": {:.3}, ",
            "\"speedup\": {:.3}, \"measured_speedup\": {:.3}}}"
        ),
        BNB_TASKS,
        baseline.nodes_explored,
        bounded.nodes_explored,
        bounded.stats.pruned_bound,
        ms(baseline_wall),
        ms(bounded_wall),
        node_ratio,
        wall_ratio,
    ));

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"lint\",\n  {},\n  \"batch\": {},\n",
            "  \"speedup_model\": \"within-run ratios: guard-off/guard-on wall, ",
            "shallow/deep wall, baseline/bounded search nodes\",\n",
            "  \"results\": [\n{}\n  ]\n}}\n"
        ),
        pas_bench::provenance_json(),
        BATCH,
        rows.join(",\n")
    );
    std::fs::write("BENCH_lint.json", &json).expect("write BENCH_lint.json");
    println!("\nwrote BENCH_lint.json");
}
