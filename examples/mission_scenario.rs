//! The Table 4 case study: a 48-step traverse while the solar output
//! decays 14.9 → 12 → 9 W, comparing the fixed JPL schedule against
//! the quasi-static power-aware plan.
//!
//! ```text
//! cargo run --example mission_scenario
//! ```

use impacct::mission::{
    improvement_percent, jpl_plan, power_aware_plan, simulate, MissionReport, Scenario,
};
use impacct::sched::SchedulerConfig;

fn print_report(report: &MissionReport) {
    println!("{}:", report.plan_label);
    for ph in &report.phases {
        println!(
            "  {:8} {:>3} steps  {:>6} driving  {:>9} from battery",
            ph.case.label(),
            ph.steps,
            ph.time_spent.to_string(),
            ph.battery_cost.to_string()
        );
    }
    println!(
        "  => {} steps in {} costing {} (completed: {})",
        report.total_steps, report.total_time, report.total_cost, report.completed
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::table4();

    let jpl = simulate(&scenario, &jpl_plan()?);
    print_report(&jpl);

    let plan = power_aware_plan(&SchedulerConfig::default())?;
    let ours = simulate(&scenario, &plan);
    print_report(&ours);

    println!(
        "power-aware improvement: {:.1}% time, {:.1}% battery energy",
        improvement_percent(jpl.total_time.as_secs(), ours.total_time.as_secs()),
        improvement_percent(
            jpl.total_cost.as_millijoules(),
            ours.total_cost.as_millijoules()
        )
    );
    Ok(())
}
