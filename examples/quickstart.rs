//! Quickstart: build a small problem, run the three-stage pipeline,
//! and print the power-aware Gantt chart.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use impacct::core::{PowerConstraints, Problem};
use impacct::gantt::{render_ascii, AsciiOptions, GanttChart};
use impacct::graph::units::{Power, TimeSpan};
use impacct::graph::{ConstraintGraph, Resource, ResourceKind, Task};
use impacct::sched::PowerAwareScheduler;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny satellite pass: sense → compress → uplink, with a
    // heater that must warm the antenna gimbal 5–40 s before the
    // uplink, all under a 9 W bus budget of which 6 W is free solar.
    let mut g = ConstraintGraph::new();
    let cpu = g.add_resource(Resource::new("cpu", ResourceKind::Compute));
    let radio = g.add_resource(Resource::new("radio", ResourceKind::Other));
    let heater = g.add_resource(Resource::new("heater", ResourceKind::Thermal));

    let sense = g.add_task(Task::new(
        "sense",
        cpu,
        TimeSpan::from_secs(6),
        Power::from_watts(3),
    ));
    let compress = g.add_task(Task::new(
        "compress",
        cpu,
        TimeSpan::from_secs(4),
        Power::from_watts(4),
    ));
    let uplink = g.add_task(Task::new(
        "uplink",
        radio,
        TimeSpan::from_secs(8),
        Power::from_watts(5),
    ));
    let warm = g.add_task(Task::new(
        "warm",
        heater,
        TimeSpan::from_secs(5),
        Power::from_watts(4),
    ));

    g.precedence(sense, compress);
    g.precedence(compress, uplink);
    g.min_separation(warm, uplink, TimeSpan::from_secs(5));
    g.max_separation(warm, uplink, TimeSpan::from_secs(40));

    let mut problem = Problem::new(
        "satellite-pass",
        g,
        PowerConstraints::new(Power::from_watts(9), Power::from_watts(6)),
    );

    let outcome = PowerAwareScheduler::default().schedule(&mut problem)?;
    println!(
        "schedule found: tau={} Ec={} rho={}",
        outcome.analysis.finish_time, outcome.analysis.energy_cost, outcome.analysis.utilization
    );

    let chart = GanttChart::from_analysis(&problem, &outcome.schedule, &outcome.analysis);
    print!("{}", render_ascii(&chart, &AsciiOptions::default()));

    // Individual start times are available too.
    for task in [sense, compress, uplink, warm] {
        println!(
            "{:>8} starts at {}",
            problem.graph().task(task).name(),
            outcome.schedule.start(task)
        );
    }
    Ok(())
}
