//! PASDL round trip: describe a problem as text, parse it, schedule
//! it, emit the schedule back as text, and re-validate the parsed
//! schedule — the file-based workflow `impacct-cli` automates.
//!
//! ```text
//! cargo run --example pasdl_io
//! ```

use impacct::core::analyze;
use impacct::sched::PowerAwareScheduler;
use impacct::spec::{parse_problem, parse_schedule, print_problem, print_schedule};

const PROBLEM: &str = r#"
# A drill rig: generator budget 11 W, 7 W of it free (wind).
problem "drill-rig" {
  pmax 11W
  pmin 7W
  background 1W
  resource controller compute
  resource drill mechanical
  resource pump mechanical

  task spin_up   on drill      delay 4s  power 6W
  task bore      on drill      delay 10s power 8W
  task prime     on pump       delay 3s  power 4W
  task flush     on pump       delay 6s  power 5W
  task log_data  on controller delay 5s  power 2W

  precedence spin_up -> bore
  precedence prime -> flush
  min prime -> bore 3s      # mud primed before boring
  max spin_up -> bore 20s   # don't let the spindle idle hot
  min bore -> log_data 0s
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut problem = parse_problem(PROBLEM)?;
    println!(
        "parsed problem {:?} with {} tasks",
        problem.name(),
        problem.graph().num_tasks()
    );

    let outcome = PowerAwareScheduler::default().schedule(&mut problem)?;
    println!(
        "scheduled: tau={} Ec={} rho={}",
        outcome.analysis.finish_time, outcome.analysis.energy_cost, outcome.analysis.utilization
    );

    // Emit both documents the way impacct-cli would.
    let schedule_text = print_schedule("drill-rig-final", &problem, &outcome.schedule);
    println!("\n{}", print_problem(&problem));
    println!("{schedule_text}");

    // And prove the text is self-contained: parse it back, validate.
    let (name, parsed) = parse_schedule(&schedule_text, &problem)?;
    let check = analyze(&problem, &parsed);
    println!("re-parsed schedule {name:?} is valid: {}", check.is_valid());
    assert!(check.is_valid());
    Ok(())
}
