//! The paper's motivating example end to end: schedule the Mars rover
//! in all three environment cases and compare against the JPL
//! fully-serialized baseline (Table 3, Figs. 9–11).
//!
//! ```text
//! cargo run --example mars_rover
//! ```

use impacct::core::analyze;
use impacct::gantt::{render_ascii, AsciiOptions, GanttChart};
use impacct::rover::{jpl_schedule, power_aware_schedule, EnvCase};
use impacct::sched::SchedulerConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SchedulerConfig::default();
    for case in EnvCase::ALL {
        println!("==== {case} ====");

        let (jpl_rover, jpl) = jpl_schedule(case)?;
        let ja = analyze(&jpl_rover.problem, &jpl);
        println!(
            "JPL baseline:  tau={} Ec={} rho={}",
            ja.finish_time, ja.energy_cost, ja.utilization
        );

        let (rover, ours) = power_aware_schedule(case, &config)?;
        let oa = analyze(&rover.problem, &ours);
        println!(
            "power-aware:   tau={} Ec={} rho={}",
            oa.finish_time, oa.energy_cost, oa.utilization
        );

        let chart = GanttChart::from_analysis(&rover.problem, &ours, &oa);
        print!(
            "{}",
            render_ascii(
                &chart,
                &AsciiOptions {
                    secs_per_col: 1,
                    ..AsciiOptions::default()
                }
            )
        );
        println!();
    }
    Ok(())
}
